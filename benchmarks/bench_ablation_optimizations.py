"""Optimization ablation (§6.4).

Paper: optimized Achilles finishes the FSP analysis in 1h03 against 2h15
for non-optimized a-posteriori constraint differencing (≈2.1×). Here the
same comparison runs at laptop scale, plus per-optimization variants for
the design choices DESIGN.md calls out (incremental predicate dropping,
the differentFrom matrix, state pruning). All variants must find exactly
the same 80 Trojan classes — the optimizations trade time, not accuracy.
"""

import statistics

import pytest

from repro.bench.experiments import run_ablation
from repro.bench.tables import format_table
from repro.systems.fsp import GroundTruth


@pytest.fixture(scope="module")
def outcomes():
    return run_ablation()


def test_all_variants_find_the_same_trojans(benchmark, outcomes, artifact,
                                            json_artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scores = {label: GroundTruth.score(report.witnesses())
              for label, report in outcomes.items()}
    for label, score in scores.items():
        assert len(score.classes_found) == 80, label
        assert score.false_positives == 0, label

    rows = []
    for label, report in outcomes.items():
        score = scores[label]
        rows.append([label, len(score.classes_found),
                     report.server_paths_pruned,
                     report.solver_queries,
                     f"{report.cache_hit_rate:.1%}",
                     report.frames_reused,
                     f"{report.timings.server_analysis:.2f}s"])
    artifact("ablation_optimizations", format_table(
        ["Variant", "Classes", "Paths pruned", "Solver queries",
         "Cache hits", "Frames reused", "Server analysis"],
        rows, title="Optimization ablation (paper: optimized 1h03 vs "
                    "a-posteriori 2h15, ~2.1x)"))
    json_artifact("fsp_ablation", {
        label: {
            "classes_found": len(scores[label].classes_found),
            "server_paths_pruned": report.server_paths_pruned,
            "solver_queries": report.solver_queries,
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "frames_reused": report.frames_reused,
            "propagation_seconds": round(report.propagation_seconds, 6),
            "server_analysis_seconds": round(
                report.timings.server_analysis, 6),
        }
        for label, report in outcomes.items()
    })


def test_incremental_drop_shrinks_final_queries(benchmark, outcomes,
                                                artifact):
    """The §6.4 headline *mechanism*: incremental predicate dropping
    makes the Trojan queries small.

    The paper credits its 2.1x wall-clock win (1h03 vs 2h15) to exactly
    this: by acceptance time, most client predicates have been dropped,
    so the satisfiability query carries a handful of negations instead
    of all of them. We assert the mechanism directly — the wall-clock
    payoff depends on the SMT solver's superlinear cost in formula
    size, which our substituted solver deliberately does not exhibit
    (see EXPERIMENTS.md for the measured timings and discussion).
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    optimized = outcomes["achilles-optimized"]
    posterior = outcomes["a-posteriori"]

    mean_live_optimized = statistics.mean(
        len(f.live_predicates) for f in optimized.findings)
    mean_live_posterior = statistics.mean(
        len(f.live_predicates) for f in posterior.findings)

    # A-posteriori queries always carry every predicate's negation; the
    # incremental search acceptance queries carry a small residue.
    assert mean_live_posterior == optimized.client_predicate_count == 32
    assert mean_live_optimized <= 4

    artifact("ablation_headline", format_table(
        ["", "Paper", "Here"],
        [["Negations per accept query (optimized)", "few",
          f"{mean_live_optimized:.1f}"],
         ["Negations per accept query (a-posteriori)", "all (thousands)",
          f"{mean_live_posterior:.0f}"],
         ["Optimized wall clock", "1h03",
          f"{optimized.timings.server_analysis:.2f}s"],
         ["A-posteriori wall clock", "2h15",
          f"{posterior.timings.server_analysis:.2f}s"]],
        title="§6.4 ablation: query-size mechanism (see EXPERIMENTS.md "
              "for the wall-clock discussion)"))


def test_pruning_reduces_explored_paths(benchmark, outcomes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_pruning = outcomes["achilles-optimized"]
    without_pruning = outcomes["no-pruning"]
    assert with_pruning.server_paths_pruned > 0
    assert without_pruning.server_paths_pruned == 0
    # Without pruning, valid accepting paths run to completion.
    assert (without_pruning.server_paths_explored
            > with_pruning.server_paths_explored)


def test_query_cache_absorbs_repeated_queries(benchmark, outcomes):
    """The canonical query cache must answer a meaningful share of the
    incremental search's repeated queries (pred re-checks, replays,
    cross-phase reuse) without reaching the solver."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for label, report in outcomes.items():
        if label == "a-posteriori":
            # Vanilla exploration poses each branch query exactly once and
            # differences every accepting path once: nothing repeats.
            continue
        assert report.cache_hits > 0, label
        assert report.cache_hit_rate > 0.0, label
    optimized = outcomes["achilles-optimized"]
    # The incremental search re-poses pathS ∧ pathC_i at every appended
    # constraint; most of those are repeats of earlier prefixes.
    assert optimized.cache_hit_rate > 0.3
