"""Scenario-matrix corpus benchmark: bulk precision/recall at scale.

The corpus generator synthesizes seeded-bug system variants from the
registered templates (two-phase commit, Raft ingress, Bracha reliable
broadcast) and derives an exact ground-truth oracle from the same
parameter draw, so a full Achilles hunt on every variant is scorable
to the digit. The gate: 12 variants of corpus seed 0 — four per
template — must all reach precision == recall == 1.0, reproducibly.

Wall clocks and per-variant scores land in ``BENCH_corpus.json`` for
the CI corpus artifact; the byte-reproducibility of the JSON payload
itself is asserted here by scoring the corpus twice.
"""

import pytest

from repro.bench.experiments import run_corpus
from repro.bench.tables import format_table
from repro.corpus import TEMPLATES, corpus_payload, dump_payload

CORPUS_SEED = 0
VARIANTS = 12


@pytest.fixture(scope="module")
def corpus_outcome():
    return run_corpus(corpus_seed=CORPUS_SEED, variants=VARIANTS)


def test_corpus_scores_perfectly(benchmark, corpus_outcome, artifact):
    outcome = benchmark.pedantic(
        run_corpus, kwargs=dict(corpus_seed=CORPUS_SEED, variants=VARIANTS),
        rounds=1, iterations=1)
    assert len(outcome.results) == VARIANTS
    for result in outcome.results:
        assert result.outcome.false_positives == 0, result.variant.token
        assert result.outcome.precision == 1.0, result.variant.token
        assert result.outcome.recall == 1.0, result.variant.token
    assert outcome.perfect

    rows = [[result.variant.token, ",".join(sorted(result.variant.bugs)),
             f"{result.outcome.classes_found}"
             f"/{result.outcome.classes_total}",
             f"{result.outcome.precision:.2f}",
             f"{result.outcome.recall:.2f}"]
            for result in outcome.results]
    artifact("corpus_accuracy", format_table(
        ["variant", "seeded bugs", "classes", "precision", "recall"],
        rows, title=f"Scenario-matrix corpus (seed {CORPUS_SEED}, "
                    f"{VARIANTS} variants)"))


def test_corpus_covers_every_template(corpus_outcome):
    counts = {}
    for result in corpus_outcome.results:
        counts[result.variant.template] = \
            counts.get(result.variant.template, 0) + 1
    assert set(counts) == set(TEMPLATES)
    assert all(count >= 3 for count in counts.values())


def test_corpus_payload_is_byte_reproducible(corpus_outcome):
    rerun = run_corpus(corpus_seed=CORPUS_SEED, variants=VARIANTS)
    assert dump_payload(corpus_payload(rerun)) == \
        dump_payload(corpus_payload(corpus_outcome))


def test_emit_bench_json(corpus_outcome, json_artifact):
    payload = corpus_payload(corpus_outcome)
    payload["seconds"] = {
        result.variant.token: result.outcome.report.timings.total
        for result in corpus_outcome.results}
    json_artifact("corpus", payload)
