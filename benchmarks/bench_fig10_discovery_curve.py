"""Figure 10 — % of FSP Trojan messages discovered vs analysis time (§6.2).

Paper shape: Achilles produces Trojans *incrementally* while the server
analysis runs — the first one well before the end (paper: ~45% into the
analysis), 100% before the analysis finishes. An interrupted run still
yields useful results.
"""

import pytest

from repro.bench.experiments import run_fsp_accuracy
from repro.bench.tables import format_series


@pytest.fixture(scope="module")
def outcome():
    return run_fsp_accuracy()


def test_fig10_discovery_curve(benchmark, outcome, artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    curve = outcome.report.discovery_fractions()
    assert len(curve) == 80

    # Monotone non-decreasing cumulative curve reaching 100%.
    fractions_found = [y for _, y in curve]
    assert fractions_found == sorted(fractions_found)
    assert fractions_found[-1] == 1.0

    # Decimated series for the artifact (every 8th finding).
    series = curve[::8] + [curve[-1]]
    artifact("fig10_discovery_curve", format_series(
        series, title="Figure 10: fraction of Trojans found vs "
                      "fraction of server-analysis time",
        x_label="time", y_label="found"))


def test_fig10_first_trojan_is_early(benchmark, outcome):
    """Paper: first Trojan after 20 of 43 minutes (~47%); interrupting
    the analysis early still yields findings."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    first_time, _ = outcome.report.discovery_fractions()[0]
    assert first_time < 0.6


def test_fig10_discovery_is_spread_out(benchmark, outcome):
    """Findings arrive throughout the analysis, not in one final burst."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    curve = outcome.report.discovery_fractions()
    at_half_time = sum(1 for t, _ in curve if t <= 0.5)
    assert 0 < at_half_time < 80
