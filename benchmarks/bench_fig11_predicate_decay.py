"""Figure 11 — live client path predicates vs server path length (§6.4).

Paper shape: the number of client path predicates that can still trigger
a server execution path *decays* as the path grows — longer paths are
more specialized, so the Trojan-feasibility queries shrink. (The paper
plots ~5,000 predicates at short paths decaying toward 1 around length
100; our bounded workload starts at 32 and decays the same way.)
"""

import statistics

import pytest

from repro.bench.experiments import run_fsp_accuracy
from repro.bench.tables import format_series


@pytest.fixture(scope="module")
def outcome():
    return run_fsp_accuracy()


def _mean_by_length(samples):
    by_length: dict[int, list[int]] = {}
    for length, live in samples:
        by_length.setdefault(length, []).append(live)
    return {length: statistics.mean(values)
            for length, values in sorted(by_length.items())}


def test_fig11_predicate_decay(benchmark, outcome, artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    samples = outcome.report.predicate_samples
    assert samples, "the observer recorded per-constraint samples"

    means = _mean_by_length(samples)
    lengths = list(means)
    # Decay: the average count over the deepest third is well below the
    # average over the shallowest third.
    third = max(1, len(lengths) // 3)
    shallow = statistics.mean(means[l] for l in lengths[:third])
    deep = statistics.mean(means[l] for l in lengths[-third:])
    assert deep < shallow / 2

    artifact("fig11_predicate_decay", format_series(
        [(float(l), means[l]) for l in lengths],
        title="Figure 11: mean live client predicates vs path length",
        x_label="path len", y_label="predicates"))


def test_fig11_starts_at_full_predicate_set(benchmark, outcome):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    samples = outcome.report.predicate_samples
    assert max(live for _, live in samples) == \
        outcome.report.client_predicate_count


def test_fig11_deep_paths_reach_single_digits(benchmark, outcome):
    """Long paths end up triggerable by only a handful of predicates."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    samples = outcome.report.predicate_samples
    deepest = max(length for length, _ in samples)
    at_deepest = [live for length, live in samples
                  if length >= deepest - 1]
    assert min(at_deepest) <= 8
