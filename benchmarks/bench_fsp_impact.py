"""FSP Trojan impact: the wildcard and mismatched-length bugs (§6.3).

These regenerate the paper's two impact narratives against the concrete
deployment:

* **wildcard** — Achilles (globbing clients) finds wildcard-path Trojans;
  a ``mv f f*`` then makes the file ``f*`` un-deletable without
  collateral damage (``rm f*`` also deletes ``f1``, ``f2``; escaping does
  not exist);
* **mismatched lengths** — a message whose path ends before ``bb_len``
  smuggles an arbitrary hidden payload past validation.
"""

import pytest

from repro.bench.experiments import run_fsp_wildcard
from repro.bench.tables import format_table
from repro.messages.concrete import encode
from repro.net.inject import Injector
from repro.net.network import Network, Node
from repro.systems.fsp import (
    FSP_LAYOUT,
    FspServerNode,
    client_command,
    expand_argument,
    rename_command,
)
from repro.systems.fsp.protocol import COMMANDS, STUBS


class _User(Node):
    def __init__(self):
        super().__init__("user")
        self.replies = []

    def handle(self, source, payload, network):
        self.replies.append(payload)


def _deployment():
    network = Network()
    server = network.attach(FspServerNode("server"))
    network.attach(_User())
    for name in ("f", "f1", "f2", "bank"):
        server.fs.write_file(f"/srv/{name}", name.encode())
    return network, server


def test_wildcard_trojans_found_by_achilles(benchmark, artifact):
    report = benchmark.pedantic(run_fsp_wildcard, rounds=1, iterations=1)
    buf = FSP_LAYOUT.view("buf")
    wildcard = [w for w in report.witnesses()
                if any(b in (ord("*"), ord("?"))
                       for b in w[buf.offset:buf.end])]
    assert wildcard, "globbing clients cannot emit wildcards: Trojan"
    artifact("fsp_wildcard_analysis", format_table(
        ["", "Value"],
        [["Findings (globbing clients)", report.trojan_count],
         ["Wildcard-carrying witnesses", len(wildcard)],
         ["Example witness buf",
          repr(bytes(wildcard[0][buf.offset:buf.end]))]],
        title="Wildcard Trojan discovery (§6.3)"))


def test_wildcard_impact_scenario(benchmark, artifact):
    """The paper's full story: create 'f*', then try to remove it."""

    def scenario():
        network, server = _deployment()
        # Step 1: 'fmv f f*' - destination is never globbed.
        network.send("user", "server", rename_command("f", "f*"))
        network.run()
        created = server.fs.exists("/srv/f*")
        # Step 2: 'frm f*' - the argument globs with no escape.
        targets = expand_argument("f*", server.fs.listdir("/srv"))
        for target in targets:
            network.send("user", "server", client_command("frm", target))
            network.run()
        return created, targets, server.fs.listdir("/srv")

    created, targets, remaining = benchmark.pedantic(scenario, rounds=1,
                                                     iterations=1)
    assert created
    assert set(targets) == {"f*", "f1", "f2"}
    assert remaining == ["bank"]  # innocent f1, f2 destroyed

    artifact("fsp_wildcard_impact", format_table(
        ["Step", "Effect"],
        [["mv f f*", "literal file 'f*' created"],
         ["rm f*", f"deleted {sorted(targets)} (collateral: f1, f2)"],
         ["surviving files", ", ".join(remaining)]],
        title="Wildcard impact: 'f*' cannot be removed safely (§6.3)"))


def test_mismatched_length_impact(benchmark, artifact):
    """A NUL before bb_len smuggles an unvalidated payload (§6.3)."""

    def scenario():
        network, server = _deployment()
        trojan = encode(FSP_LAYOUT, {
            "cmd": COMMANDS["frm"], "sum": STUBS["sum"],
            "bb_key": STUBS["bb_key"], "bb_seq": STUBS["bb_seq"],
            "bb_len": 4, "bb_pos": STUBS["bb_pos"],
            # Path 'f', then two arbitrary hidden bytes, terminator at 4.
            "buf": b"f\x00\xde\xad\x00",
        })
        injector = Injector(network, "server", spoof_source="user",
                            probe=lambda: tuple(server.fs.listdir("/srv")))
        outcome = injector.inject(trojan)
        return server, outcome

    server, outcome = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert server.accepted == 1, "the Trojan passed full validation"
    assert outcome.changed_state, "and the action executed ('f' deleted)"

    artifact("fsp_mismatched_length_impact", format_table(
        ["", "Value"],
        [["bb_len", 4], ["true path", "'f' (length 1)"],
         ["hidden payload", "0xDEAD"],
         ["server verdict", "accepted + executed"]],
        title="Mismatched-length impact: hidden payload accepted (§6.3)"))
