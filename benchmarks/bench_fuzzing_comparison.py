"""Black-box fuzzing comparison (§6.2 text).

Paper arithmetic: a fuzzer running at 75,000 tests/minute against a
Trojan density of 6.6e7/2^64 finds an expected 0.00001 Trojan messages
per hour — while Achilles enumerates all 80 in one analysis. The same
arithmetic on this substrate (measured throughput, exactly counted
Trojan density over the same 8 randomized bytes) reproduces the
orders-of-magnitude gap.
"""

import pytest

from repro.bench.experiments import run_fsp_accuracy, run_fuzzing_comparison
from repro.bench.tables import format_table


@pytest.fixture(scope="module")
def fuzzing():
    return run_fuzzing_comparison(tests=200_000)


def test_fuzzing_comparison(benchmark, fuzzing, artifact):
    outcome = benchmark.pedantic(run_fuzzing_comparison,
                                 kwargs={"tests": 50_000},
                                 rounds=1, iterations=1)
    # The expected yield is vanishingly small: far less than one Trojan
    # per hour of fuzzing (paper: 1e-5).
    assert fuzzing.expected_trojans_in_one_hour < 1.0
    # And the measured campaign found essentially nothing.
    assert fuzzing.result.trojans_found <= 2

    artifact("fuzzing_comparison", format_table(
        ["", "Paper", "Here"],
        [["Tests per minute", f"{fuzzing.paper_tests_per_minute:,.0f}",
          f"{fuzzing.result.tests_per_minute:,.0f}"],
         ["Trojan patterns in space", "66,000,000",
          f"{fuzzing.trojan_messages_in_space:,}"],
         ["Space (bits)", 64, fuzzing.trojan_density_space_bits],
         ["E[Trojans in 1 hour]", f"{fuzzing.paper_expected_per_hour:.1e}",
          f"{fuzzing.expected_trojans_in_one_hour:.1e}"],
         ["Trojans found in campaign", "-", fuzzing.result.trojans_found],
         ["Accepted (all reported)", "-", fuzzing.result.accepted]],
        title="Fuzzing vs Achilles (which finds all 80 in one run)"))


def test_gap_to_achilles_is_orders_of_magnitude(benchmark, fuzzing):
    """Achilles: 80 Trojans per analysis hour; fuzzing: ~0 per hour."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    achilles_outcome = run_fsp_accuracy()
    analysis_hours = max(achilles_outcome.report.timings.total, 1e-6) / 3600
    achilles_rate = achilles_outcome.true_positives / analysis_hours
    fuzz_rate = max(fuzzing.expected_trojans_in_one_hour, 1e-12)
    assert achilles_rate / fuzz_rate > 1e3


def test_fuzzer_false_positive_flood(benchmark, fuzzing):
    """Every accepted non-Trojan message is a false positive the fuzzer
    cannot filter (the paper counts 4.5M/hour)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert fuzzing.result.false_positives >= 0
    assert fuzzing.result.trojans_found <= fuzzing.result.accepted
