"""Observability overhead: tracing must be free when it is off.

Every instrumented hot site (the four solver layers, the service
dispatch, the shard loops) guards on ``repro.obs.trace.active is
None``, so the disabled cost of the whole subsystem is one module
attribute load plus a pointer comparison per call. This benchmark
pins that promise with a deterministic gate:

1. run the FSP end-to-end analysis (4-utility subset) untraced and
   traced, asserting the findings are byte-identical (tracing is
   observational, never behavioral);
2. count how many guarded spans the traced run actually fired (from
   the trace's own summary — individual spans plus aggregate folds);
3. microbenchmark the disabled guard and project ``guarded_calls x
   per_call_cost`` as a fraction of the untraced wall clock.

The projected disabled overhead must stay under 2%. Raw wall clocks
for both runs are recorded in ``BENCH_obs.json`` but not gated — a
loaded CI runner time-slices everything, and the projection is the
property the code actually controls.
"""

import itertools
import time

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK
from repro.obs import trace as obs_trace
from repro.obs.trace import read_trace, summarize
from repro.systems import fsp

#: Maximum projected tracing-off overhead (fraction of untraced wall).
OVERHEAD_GATE = 0.02

_GUARD_ITERATIONS = 200_000


def _run_fsp(trace_dir=None):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            trace_dir=str(trace_dir) if trace_dir else None)
    started = time.perf_counter()
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        report = achilles.search(fsp.fsp_server, predicates)
    return report, time.perf_counter() - started


def _guard_cost_seconds() -> float:
    """Per-call cost of the disabled-path guard, exactly as the hot
    sites spell it: read the module attribute, compare against None."""
    assert obs_trace.active is None
    started = time.perf_counter()
    for _ in range(_GUARD_ITERATIONS):
        tracer = obs_trace.active
        if tracer is not None:  # pragma: no cover - tracing is off
            raise AssertionError
    return (time.perf_counter() - started) / _GUARD_ITERATIONS


def _signature(report):
    return [(f.server_path_id, f.decisions, f.witness)
            for f in report.findings]


def test_tracing_off_overhead_gate(benchmark, json_artifact, tmp_path):
    """Findings parity traced-vs-untraced, plus the <=2% disabled-guard
    overhead projection."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert obs_trace.active is None

    base_report, base_seconds = _run_fsp()
    traced_report, traced_seconds = _run_fsp(tmp_path / "run")
    # The traced run must clean up its global tracer.
    assert obs_trace.active is None

    assert _signature(traced_report) == _signature(base_report), \
        "tracing changed the findings"
    assert traced_report.server_paths_explored == \
        base_report.server_paths_explored

    trace = read_trace(tmp_path / "run" / "trace.jsonl")
    assert not trace.damaged
    summary = summarize(trace.records)
    guarded_calls = sum(stat["count"] for stat in summary["spans"].values())
    assert guarded_calls > 0, "the traced run recorded no spans"

    per_call = _guard_cost_seconds()
    projected_seconds = guarded_calls * per_call
    overhead = projected_seconds / base_seconds
    assert overhead <= OVERHEAD_GATE, (
        f"projected tracing-off overhead {overhead:.4%} exceeds the "
        f"{OVERHEAD_GATE:.0%} gate ({guarded_calls} guarded calls x "
        f"{per_call * 1e9:.1f}ns against {base_seconds:.2f}s untraced)")

    json_artifact("obs", {
        "workload": "FSP 4-utility subset, full pipeline, serial",
        "untraced_seconds": round(base_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "traced_vs_untraced_ratio": round(traced_seconds / base_seconds, 4),
        "guarded_calls": guarded_calls,
        "guard_cost_ns": round(per_call * 1e9, 2),
        "projected_off_overhead_fraction": round(overhead, 6),
        "overhead_gate": OVERHEAD_GATE,
        "trace_records": summary["records"],
        "findings": base_report.trojan_count,
    })
