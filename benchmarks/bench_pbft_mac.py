"""PBFT: rediscovering the MAC attack and measuring its impact (§6.2-§6.3).

Paper shape: the analysis completes "in just a few seconds" and finds a
single type of Trojan message — requests with invalid authenticators —
present on *every* accepting path; injected into a live cluster, such
requests trigger the expensive recovery protocol and degrade throughput
for correct clients.
"""

import pytest

from repro.bench.experiments import run_pbft_analysis, run_pbft_impact
from repro.bench.tables import format_table
from repro.messages.concrete import decode
from repro.systems.pbft import MAC_STUB, REQUEST_LAYOUT


@pytest.fixture(scope="module")
def impact():
    return run_pbft_impact(requests=40)


def test_pbft_analysis_speed_and_findings(benchmark, artifact):
    report = benchmark.pedantic(run_pbft_analysis, rounds=1, iterations=1)

    # A single Trojan type (bad MAC), on every accepting path.
    assert report.trojan_count == 2
    for finding in report.findings:
        assert decode(REQUEST_LAYOUT, finding.witness)["mac"] != MAC_STUB
    # "a few seconds" (paper) - the ingress has few checks.
    assert report.timings.server_analysis < 30.0

    artifact("pbft_analysis", format_table(
        ["", "Paper", "Here"],
        [["Trojan types", 1, 1],
         ["On all accepting paths", "yes",
          "yes" if report.trojan_count == 2 else "no"],
         ["Analysis time", "a few seconds",
          f"{report.timings.total:.2f}s"]],
        title="PBFT MAC-attack rediscovery"))


def test_pbft_mac_attack_impact(benchmark, impact, artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    clean = impact.impact["clean"]
    light = impact.impact["attack-10%"]
    heavy = impact.impact["attack-50%"]

    # The attack forces view changes and reduces throughput, scaling
    # with the attack rate (§6.3).
    assert clean.view_changes == 0
    assert light.view_changes > 0
    assert heavy.view_changes > light.view_changes
    assert heavy.throughput < light.throughput < clean.throughput

    rows = []
    for label, stats in impact.impact.items():
        rows.append([label, stats.committed, stats.view_changes,
                     stats.deliveries, f"{stats.throughput:.4f}"])
    artifact("pbft_mac_impact", format_table(
        ["Workload", "Committed", "View changes", "Deliveries",
         "Throughput (req/msg)"],
        rows, title="MAC attack impact on a 4-replica cluster"))


def test_recovery_is_expensive(benchmark, impact):
    """Each bad-MAC request costs more traffic than a commit (§6.3)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    clean = impact.impact["clean"]
    heavy = impact.impact["attack-50%"]
    per_commit_clean = clean.deliveries / max(1, clean.committed)
    per_commit_heavy = heavy.deliveries / max(1, heavy.committed)
    assert per_commit_heavy > per_commit_clean
