"""Warm-vs-cold repeat analysis through the durable query cache.

The persistent cache's promise: re-analysis of a server should only pay
for what changed. This benchmark runs the FSP end-to-end analysis
(4-utility subset) twice against the same ``--cache-dir`` — a cold first
run that populates the segments, then a warm second run that opens them —
and emits ``BENCH_persist.json`` with both runs' cache hit rates,
``disk_hits``, and the wall-clock delta. The warm run must answer every
query from disk (strictly higher hit rate, zero misses-to-solver beyond
what the cold run already paid) while finding byte-identical Trojans;
the wall clocks are recorded, not gated (a loaded CI runner time-slices
everything, which the JSON shows rather than hides).
"""

import itertools
import time

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK
from repro.bench.tables import format_table
from repro.systems import fsp


def _run_fsp(cache_dir):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            cache_dir=str(cache_dir))
    started = time.perf_counter()
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        report = achilles.search(fsp.fsp_server, predicates)
    return report, time.perf_counter() - started


def test_warm_cache_repeat_analysis(benchmark, artifact, json_artifact,
                                    tmp_path):
    """Second FSP run against the same cache dir: strictly higher hit
    rate, identical findings."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cache_dir = tmp_path / "cache"

    cold_report, cold_seconds = _run_fsp(cache_dir)
    warm_report, warm_seconds = _run_fsp(cache_dir)

    # Identical findings — the cache must never warp an answer.
    assert warm_report.witnesses() == cold_report.witnesses()
    assert warm_report.server_paths_explored == \
        cold_report.server_paths_explored

    # The cold run sees an empty directory; the warm run answers from it.
    assert cold_report.disk_hits == 0
    assert warm_report.disk_hits > 0
    assert warm_report.salvaged_records == 0
    assert warm_report.dropped_records == 0
    assert warm_report.cache_hit_rate > cold_report.cache_hit_rate
    assert warm_report.cache_misses == 0  # everything was persisted

    rows = [
        ["cold (empty cache dir)", f"{cold_seconds:.2f}s",
         f"{cold_report.cache_hit_rate:.3f}", str(cold_report.disk_hits)],
        ["warm (same cache dir)", f"{warm_seconds:.2f}s",
         f"{warm_report.cache_hit_rate:.3f}", str(warm_report.disk_hits)],
    ]
    artifact("persist_warm_cache", format_table(
        ["Run", "Wall clock", "Cache hit rate", "Disk hits"], rows,
        title="Repeat FSP analysis through the durable query cache "
              "(4-utility subset)"))
    json_artifact("persist", {
        "workload": "FSP 4-utility subset, full pipeline",
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_vs_cold_speedup": round(cold_seconds / warm_seconds, 4),
        "cold_hit_rate": round(cold_report.cache_hit_rate, 6),
        "warm_hit_rate": round(warm_report.cache_hit_rate, 6),
        "cold_disk_hits": cold_report.disk_hits,
        "warm_disk_hits": warm_report.disk_hits,
        "warm_cache_misses": warm_report.cache_misses,
        "salvaged_records": warm_report.salvaged_records,
        "dropped_records": warm_report.dropped_records,
        "findings": warm_report.trojan_count,
        "parity": True,
    })
