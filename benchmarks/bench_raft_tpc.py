"""Raft + two-phase-commit accuracy benchmark.

The two consensus/commit workloads added after the paper's own targets:
Achilles must find every seeded Trojan class with no false positives on
both (precision == recall == 1.0), and the findings must be
byte-identical when the exploration is sharded — the same contract the
FSP/PBFT suites pin, re-checked here on protocols with genuinely
different grammar shapes (multi-RPC dispatch, over-approximate local
state on the commit path).

Machine-readable wall clocks and pipeline counters land in
``BENCH_raft_tpc.json`` for the CI bench artifact.
"""

import pytest

from repro.bench.experiments import run_raft_accuracy, run_tpc_accuracy
from repro.bench.tables import format_table


@pytest.fixture(scope="module")
def raft_outcome():
    return run_raft_accuracy()


@pytest.fixture(scope="module")
def tpc_outcome():
    return run_tpc_accuracy()


def _finding_signature(report):
    return [(f.server_path_id, f.decisions, f.witness, f.labels)
            for f in report.findings]


def test_raft_accuracy(benchmark, raft_outcome, artifact):
    outcome = benchmark.pedantic(run_raft_accuracy, rounds=1, iterations=1)
    assert outcome.true_positives == 9
    assert outcome.false_positives == 0
    assert outcome.classes_found == outcome.classes_total == 9
    assert outcome.precision == 1.0 and outcome.recall == 1.0

    artifact("raft_accuracy", format_table(
        ["", "Seeded", "Here"],
        [["True positives", 9, outcome.true_positives],
         ["False positives", 0, outcome.false_positives],
         ["Classes covered", "9/9", f"{outcome.classes_found}/9"]],
        title="Raft follower ingress accuracy"))


def test_tpc_accuracy(benchmark, tpc_outcome, artifact):
    outcome = benchmark.pedantic(run_tpc_accuracy, rounds=1, iterations=1)
    assert outcome.true_positives == 2
    assert outcome.false_positives == 0
    assert outcome.classes_found == outcome.classes_total == 2
    assert outcome.precision == 1.0 and outcome.recall == 1.0

    artifact("tpc_accuracy", format_table(
        ["", "Seeded", "Here"],
        [["True positives", 2, outcome.true_positives],
         ["False positives", 0, outcome.false_positives],
         ["Classes covered", "2/2", f"{outcome.classes_found}/2"]],
        title="Two-phase-commit participant accuracy"))


def test_sharded_runs_stay_byte_identical(raft_outcome, tpc_outcome):
    """Parity smoke at shards=2: the new systems honour the contract the
    FSP/PBFT parity suites pin exhaustively."""
    sharded_raft = run_raft_accuracy(shards=2)
    assert _finding_signature(sharded_raft.report) == \
        _finding_signature(raft_outcome.report)
    sharded_tpc = run_tpc_accuracy(shards=2)
    assert _finding_signature(sharded_tpc.report) == \
        _finding_signature(tpc_outcome.report)


def test_emit_bench_json(raft_outcome, tpc_outcome, json_artifact):
    def counters(outcome):
        report = outcome.report
        return {
            "true_positives": outcome.true_positives,
            "false_positives": outcome.false_positives,
            "classes_found": outcome.classes_found,
            "classes_total": outcome.classes_total,
            "precision": outcome.precision,
            "recall": outcome.recall,
            "total_seconds": report.timings.total,
            "server_paths_explored": report.server_paths_explored,
            "server_paths_pruned": report.server_paths_pruned,
            "solver_queries": report.solver_queries,
            "cache_hit_rate": report.cache_hit_rate,
            "frames_reused": report.frames_reused,
            "propagation_seconds": report.propagation_seconds,
        }

    json_artifact("raft_tpc", {
        "raft": counters(raft_outcome),
        "tpc": counters(tpc_outcome),
    })
