"""Scaling sweep: Achilles cost vs client-predicate count.

Not a paper figure, but the scaling behaviour behind Figures 10/11: both
phases grow with ``|PC|`` — pre-processing quadratically (the
``differentFrom`` matrix is pairwise) and the server search roughly
linearly in the per-path live-predicate load. The sweep varies the number
of FSP utilities analyzed (2 → 4 → 8) and records the phase costs.
"""

import itertools

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK
from repro.bench.tables import format_table
from repro.systems import fsp


def _run(utilities: int):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), utilities))
    achilles = Achilles(AchillesConfig(layout=fsp.FSP_LAYOUT,
                                       mask=FSP_SESSION_MASK))
    predicates = achilles.extract_clients(fsp.literal_clients(commands))
    report = achilles.search(fsp.fsp_server, predicates)
    return predicates, report


@pytest.fixture(scope="module")
def sweep():
    return {n: _run(n) for n in (2, 4, 8)}


def test_scaling_sweep(benchmark, sweep, artifact):
    benchmark.pedantic(_run, args=(4,), rounds=1, iterations=1)
    rows = []
    for utilities, (predicates, report) in sweep.items():
        rows.append([
            utilities, len(predicates),
            report.trojan_count,
            f"{predicates.stats.preprocess_seconds:.2f}s",
            f"{report.timings.server_analysis:.2f}s",
            report.solver_queries,
        ])
    artifact("scaling_sweep", format_table(
        ["Utilities", "|PC|", "Findings", "Preprocess", "Server",
         "Queries"],
        rows, title="Scaling with client-predicate count"))

    # |PC| grows linearly with utilities (4 predicates each).
    assert [len(sweep[n][0]) for n in (2, 4, 8)] == [8, 16, 32]


def test_finding_count_tracks_uncovered_commands(benchmark, sweep):
    """With fewer utilities, *more* messages are Trojan: the uncovered
    commands' accepting paths have no generating client at all."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    findings = {n: sweep[n][1].trojan_count for n in (2, 4, 8)}
    # 8 utilities: 80 (the ground-truth classes). Fewer utilities: the
    # remaining commands' valid paths also become Trojan (14 paths per
    # uncovered command at bound 5: 10 mismatch + 4 valid).
    assert findings[8] == 80
    assert findings[4] == 40 + 4 * 14
    assert findings[2] == 20 + 6 * 14


def test_preprocess_grows_superlinearly(benchmark, sweep):
    """The differentFrom matrix is pairwise: doubling |PC| should far
    more than double pre-processing work (queries, not seconds, to stay
    robust on noisy machines)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = sweep[2][0].different_from.stats.solver_queries
    large = sweep[8][0].different_from.stats.solver_queries
    assert large > 4 * small
