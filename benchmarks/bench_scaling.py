"""Scaling sweeps: Achilles cost vs client-predicate count and vs workers.

Not a paper figure, but the scaling behaviour behind Figures 10/11: both
phases grow with ``|PC|`` — pre-processing quadratically (the
``differentFrom`` matrix is pairwise) and the server search roughly
linearly in the per-path live-predicate load. The sweep varies the number
of FSP utilities analyzed (2 → 4 → 8) and records the phase costs.

The *worker* sweep runs the same FSP end-to-end analysis at 1, 2 and 4
solver-service workers (paper §3.3: the ``differentFrom`` precompute and
the per-path probes are embarrassingly parallel) and asserts the findings
are byte-identical at every worker count. The *shard* sweep does the same
for the exploration layer (decision-prefix sharding of the phase-2 path
tree, :mod:`repro.explore`) at 1, 2 and 4 shards, emitting
``BENCH_explore_scaling.json``. Wall-clock speedup assertions are gated
on the machine actually having the cores — on a single-core box either
pool can only add dispatch overhead, which the emitted JSON records
rather than hides.
"""

import itertools
import os
import time

import pytest

from repro.achilles import Achilles, AchillesConfig
from repro.bench.experiments import FSP_SESSION_MASK, run_fsp_accuracy
from repro.bench.tables import format_table
from repro.solver import ast
from repro.solver.ast import bv_const
from repro.solver.service import SolverService
from repro.systems import fsp


def _run(utilities: int):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), utilities))
    achilles = Achilles(AchillesConfig(layout=fsp.FSP_LAYOUT,
                                       mask=FSP_SESSION_MASK))
    predicates = achilles.extract_clients(fsp.literal_clients(commands))
    report = achilles.search(fsp.fsp_server, predicates)
    return predicates, report


@pytest.fixture(scope="module")
def sweep():
    return {n: _run(n) for n in (2, 4, 8)}


def test_scaling_sweep(benchmark, sweep, artifact):
    benchmark.pedantic(_run, args=(4,), rounds=1, iterations=1)
    rows = []
    for utilities, (predicates, report) in sweep.items():
        rows.append([
            utilities, len(predicates),
            report.trojan_count,
            f"{predicates.stats.preprocess_seconds:.2f}s",
            f"{report.timings.server_analysis:.2f}s",
            report.solver_queries,
        ])
    artifact("scaling_sweep", format_table(
        ["Utilities", "|PC|", "Findings", "Preprocess", "Server",
         "Queries"],
        rows, title="Scaling with client-predicate count"))

    # |PC| grows linearly with utilities (4 predicates each).
    assert [len(sweep[n][0]) for n in (2, 4, 8)] == [8, 16, 32]


def test_finding_count_tracks_uncovered_commands(benchmark, sweep):
    """With fewer utilities, *more* messages are Trojan: the uncovered
    commands' accepting paths have no generating client at all."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    findings = {n: sweep[n][1].trojan_count for n in (2, 4, 8)}
    # 8 utilities: 80 (the ground-truth classes). Fewer utilities: the
    # remaining commands' valid paths also become Trojan (14 paths per
    # uncovered command at bound 5: 10 mismatch + 4 valid).
    assert findings[8] == 80
    assert findings[4] == 40 + 4 * 14
    assert findings[2] == 20 + 6 * 14


def test_preprocess_grows_superlinearly(benchmark, sweep):
    """The differentFrom matrix is pairwise: doubling |PC| should far
    more than double pre-processing work (queries, not seconds, to stay
    robust on noisy machines)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    small = sweep[2][0].different_from.stats.solver_queries
    large = sweep[8][0].different_from.stats.solver_queries
    assert large > 4 * small


# -- worker-pool scaling ------------------------------------------------------

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def worker_sweep():
    """Full FSP end-to-end (Table 1 workload) at each worker count.

    Two runs per count, keeping the faster wall clock — best-of-n is the
    standard defense against scheduler noise on shared CI runners, so the
    speedup gate below compares two minima rather than single samples.
    """
    runs = {}
    for workers in WORKER_COUNTS:
        best_seconds, outcome = None, None
        for _ in range(2):
            started = time.perf_counter()
            outcome = run_fsp_accuracy(workers=workers)
            elapsed = time.perf_counter() - started
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        runs[workers] = (best_seconds, outcome)
    return runs


def test_worker_sweep_end_to_end(benchmark, worker_sweep, artifact,
                                 json_artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    serial_seconds = worker_sweep[1][0]

    rows = []
    payload = {"cpu_count": cores, "workload": "FSP end-to-end (Table 1)",
               "end_to_end": {}}
    for workers in WORKER_COUNTS:
        seconds, outcome = worker_sweep[workers]
        report = outcome.report
        speedup = serial_seconds / seconds
        rows.append([workers, f"{seconds:.2f}s", f"{speedup:.2f}x",
                     report.trojan_count, report.solver_queries,
                     f"{report.cache_hit_rate:.1%}"])
        payload["end_to_end"][str(workers)] = {
            "seconds": round(seconds, 4),
            "speedup_vs_serial": round(speedup, 4),
            "findings": report.trojan_count,
            "solver_queries": report.solver_queries,
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "propagation_seconds": round(report.propagation_seconds, 6),
        }
    artifact("scaling_workers", format_table(
        ["Workers", "Wall clock", "Speedup", "Findings", "Queries",
         "Cache hits"],
        rows, title=f"Worker-pool scaling, FSP end-to-end "
                    f"({cores} core(s) available)"))
    json_artifact("scaling", payload)

    # Parity is unconditional: worker count must never change findings.
    baseline = worker_sweep[1][1].report.witnesses()
    for workers in WORKER_COUNTS[1:]:
        assert worker_sweep[workers][1].report.witnesses() == baseline, (
            f"workers={workers} changed the findings")
    for workers in WORKER_COUNTS:
        assert worker_sweep[workers][1].true_positives == 80
        assert worker_sweep[workers][1].false_positives == 0

    # The wall-clock claim needs the hardware to exist: with fewer cores
    # than workers the pool can only time-slice. The JSON artifact above
    # records the measured numbers either way.
    if cores >= 4:
        speedup4 = serial_seconds / worker_sweep[4][0]
        assert speedup4 >= 1.5, (
            f"4-worker FSP run only {speedup4:.2f}x over serial")


# -- exploration-shard scaling ------------------------------------------------

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def shard_sweep():
    """Full FSP end-to-end (Table 1 workload) at each exploration shard
    count, best-of-two per count (same scheduler-noise defense as the
    worker sweep)."""
    runs = {}
    for shards in SHARD_COUNTS:
        best_seconds, outcome = None, None
        for _ in range(2):
            started = time.perf_counter()
            outcome = run_fsp_accuracy(shards=shards)
            elapsed = time.perf_counter() - started
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        runs[shards] = (best_seconds, outcome)
    return runs


def test_shard_sweep_end_to_end(benchmark, shard_sweep, artifact,
                                json_artifact):
    """Decision-prefix sharding: parity is unconditional, speedup gated.

    Emits ``BENCH_explore_scaling.json``. The >=1.5x wall-clock gate at 4
    shards only runs on machines with >= 4 cores — a smaller box can only
    time-slice the shard processes, which the JSON records rather than
    hides.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cores = os.cpu_count() or 1
    serial_seconds = shard_sweep[1][0]

    rows = []
    payload = {"cpu_count": cores,
               "workload": "FSP end-to-end (Table 1), sharded exploration",
               "end_to_end": {}}
    for shards in SHARD_COUNTS:
        seconds, outcome = shard_sweep[shards]
        report = outcome.report
        speedup = serial_seconds / seconds
        rows.append([shards, f"{seconds:.2f}s", f"{speedup:.2f}x",
                     report.trojan_count, report.server_paths_explored,
                     report.server_paths_pruned])
        payload["end_to_end"][str(shards)] = {
            "seconds": round(seconds, 4),
            "speedup_vs_serial": round(speedup, 4),
            "findings": report.trojan_count,
            "server_paths_explored": report.server_paths_explored,
            "server_paths_pruned": report.server_paths_pruned,
            "solver_queries": report.solver_queries,
        }
    artifact("explore_scaling", format_table(
        ["Shards", "Wall clock", "Speedup", "Findings", "Paths", "Pruned"],
        rows, title=f"Exploration-shard scaling, FSP end-to-end "
                    f"({cores} core(s) available)"))
    json_artifact("explore_scaling", payload)

    # Parity is unconditional: shard count must never change findings.
    baseline = shard_sweep[1][1].report.witnesses()
    for shards in SHARD_COUNTS[1:]:
        assert shard_sweep[shards][1].report.witnesses() == baseline, (
            f"shards={shards} changed the findings")
    for shards in SHARD_COUNTS:
        assert shard_sweep[shards][1].true_positives == 80
        assert shard_sweep[shards][1].false_positives == 0

    if cores < 4:
        pytest.skip("shard speedup gate needs >= 4 cores "
                    "(numbers recorded in BENCH_explore_scaling.json)")
    speedup4 = serial_seconds / shard_sweep[4][0]
    assert speedup4 >= 1.5, (
        f"4-shard FSP run only {speedup4:.2f}x over serial")


def _micro_batch_queries(count: int):
    """Distinct toy-checksum feasibility queries (no cache aliasing)."""
    from repro.messages.symbolic import message_vars
    from repro.systems.toy import TOY_LAYOUT
    from repro.systems.toy.protocol import toy_checksum

    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    queries = []
    for i in range(count):
        queries.append((
            ast.or_(ast.eq(msg[0], bv_const(1 + i % 3, 8)),
                    ast.eq(msg[0], bv_const(4 + i % 5, 8))),
            ast.eq(msg[10], crc),
            ast.eq(msg[1], bv_const(i % 251, 8)),
            ast.ugt(msg[2], bv_const(i % 97, 8)),
        ))
    return queries


def test_batch_dispatch_micro(benchmark, json_artifact):
    """The CI smoke gate: 2 workers must not lose to serial on raw batches.

    256 independent checksum-shaped queries dispatched as one batch —
    pure solver work with no exploration in the way, so two real cores
    should win outright (and a tolerance absorbs runner jitter). On a
    single-core machine the gate is skipped after recording the numbers.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    queries = _micro_batch_queries(256)

    serial = SolverService()
    started = time.perf_counter()
    serial_results = serial.check_batch(queries)
    serial_seconds = time.perf_counter() - started

    with SolverService(workers=2) as pool:
        pool.check_batch(queries[:2])  # absorb pool start-up
        started = time.perf_counter()
        pool_results = pool.check_batch(queries)
        pool_seconds = time.perf_counter() - started

    assert ([r.status for r in pool_results]
            == [r.status for r in serial_results])

    cores = os.cpu_count() or 1
    json_artifact("scaling_micro", {
        "cpu_count": cores,
        "queries": len(queries),
        "serial_seconds": round(serial_seconds, 4),
        "workers2_seconds": round(pool_seconds, 4),
        "speedup": round(serial_seconds / pool_seconds, 4),
    })
    if cores < 2:
        pytest.skip("batch-dispatch smoke gate needs >= 2 cores")
    assert pool_seconds <= serial_seconds * 1.10, (
        f"2-worker batch dispatch slower than serial: "
        f"{pool_seconds:.3f}s vs {serial_seconds:.3f}s")
