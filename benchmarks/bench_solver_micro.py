"""Microbenchmarks of the solver on Achilles-shaped queries.

Not a paper figure — this measures the substituted substrate itself, so
regressions in the solver (the repo's hot path) show up in benchmark
history. Rounds > 1 give pytest-benchmark real statistics, unlike the
experiment benches which run once.

The repeated-query benchmarks at the bottom exercise the two reuse
layers below canonicalization: the canonical query cache
(:mod:`repro.solver.cache`) on literally-repeated queries, and the
incremental assertion stack (:mod:`repro.solver.incremental`) on
extend-by-one / push-pop sequences that share prefixes without repeating.
Both report measured speedups against a from-scratch ``Solver.check`` and
persist machine-readable ``BENCH_*.json`` artifacts; the incremental
speedup assertion is the CI perf smoke gate.
"""

import time

import pytest

from repro.messages.symbolic import message_vars, wire_equalities
from repro.solver import ast
from repro.solver.ast import bv_const, bv_var
from repro.solver.cache import QueryCache
from repro.solver.incremental import IncrementalSolver
from repro.solver.solver import Solver
from repro.symex.engine import Engine, EngineConfig
from repro.systems.fsp import FSP_LAYOUT
from repro.systems.toy import TOY_LAYOUT
from repro.systems.toy.protocol import toy_checksum


def test_feasibility_query_toy_crc(benchmark):
    """A toy-server path condition with the real additive checksum."""
    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    constraints = [
        ast.or_(ast.eq(msg[0], bv_const(1, 8)), ast.eq(msg[0], bv_const(2, 8))),
        ast.eq(msg[10], crc),
        ast.eq(msg[1], bv_const(1, 8)),
    ]

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_combination_query_fsp(benchmark):
    """A pathS ∧ pathC combination: equalities + range constraints."""
    server = message_vars(FSP_LAYOUT, "s")
    value = bv_var("arg", 8)
    client = tuple(
        [bv_const(0x41, 8), bv_const(0x5A, 8)]
        + [bv_const(0, 8)] * 10 + [value]
        + [bv_const(0, 8)] * (FSP_LAYOUT.total_size - 13))
    constraints = (
        wire_equalities(server, client)
        + [ast.uge(value, bv_const(33, 8)), ast.ule(value, bv_const(126, 8))]
        + [ast.eq(server[0], bv_const(0x41, 8))])

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_negation_disjunction_query(benchmark):
    """A Trojan query shape: path condition + many negation disjuncts."""
    msg = message_vars(FSP_LAYOUT, "m")
    negations = []
    for index in range(16):
        fresh = bv_var(f"~{index}", 8)
        negations.append(ast.or_(
            ast.ne(msg[0], bv_const(0x41 + index % 8, 8)),
            ast.and_(ast.eq(msg[12], fresh),
                     ast.not_(ast.ult(fresh, bv_const(100, 8))))))
    constraints = [ast.eq(msg[0], bv_const(0x41, 8))] + negations

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_wide_variable_byte_split(benchmark):
    """32-bit signed bounds + equality: exercises byte splitting."""
    x = bv_var("x", 32)
    constraints = [x.slt(0), ast.eq(ast.extract(x, 7, 0), bv_const(5, 8))]

    def solve():
        result = Solver().check(constraints)
        return result.is_sat and result.value(x) >= 1 << 31

    assert benchmark(solve)


def test_unsat_proof(benchmark):
    """Unsat answers are complete proofs over the finite domains."""
    msg = message_vars(TOY_LAYOUT)
    constraints = [msg[2] < 10, msg[2] > 20]

    def solve():
        return not Solver().check(constraints).is_sat

    assert benchmark(solve)


# -- repeated-query workloads (the Achilles hot path) -------------------------


def _incremental_queries():
    """The §3.2 query shape: every prefix of a growing path condition,
    combined with a rotating set of client predicates — the same queries
    recur across predicates, replays and syntactic variants."""
    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    path = [
        ast.or_(ast.eq(msg[0], bv_const(1, 8)), ast.eq(msg[0], bv_const(2, 8))),
        ast.eq(msg[10], crc),
        ast.eq(msg[1], bv_const(1, 8)),
        msg[2] < 100,
        msg[3] >= 7,
    ]
    predicates = [
        (ast.eq(msg[1], bv_const(1, 8)),),
        (msg[2] < 100, msg[3] >= 7),
        # Syntactic variants of the two above: commuted equality operands
        # and negation-flipped comparisons canonicalize onto the same keys.
        (ast.eq(bv_const(1, 8), msg[1]),),
        (ast.not_(msg[2] >= 100), ast.not_(msg[3] < 7)),
    ]
    queries = []
    for hi in range(1, len(path) + 1):
        prefix = tuple(path[:hi])
        for pred in predicates:
            queries.append(prefix + pred)
    return queries


def test_repeated_queries_with_cache(benchmark):
    """The cached hot path: every round after the first is pure lookups."""
    queries = _incremental_queries()
    engine = Engine(EngineConfig())

    def run():
        return [engine.is_feasible(q) for q in queries]

    results = benchmark(run)
    assert any(results)
    stats = engine.query_cache.stats
    assert stats.hits > 0, "repeated workload must produce cache hits"
    assert stats.hit_rate > 0.5


def test_cache_speedup_on_repeated_queries(json_artifact):
    """Acceptance gate: ≥1.5× on repeated-query workloads, nonzero hit rate.

    Compares one engine answering the workload ``rounds`` times against a
    cache-less baseline (a fresh Solver per query, the pre-cache behavior
    of the module-level ``check``).
    """
    queries = _incremental_queries()
    rounds = 20

    started = time.perf_counter()
    for _ in range(rounds):
        for q in queries:
            Solver().check(q)
    uncached = time.perf_counter() - started

    engine = Engine(EngineConfig())
    started = time.perf_counter()
    for _ in range(rounds):
        for q in queries:
            engine.is_feasible(q)
    cached = time.perf_counter() - started

    stats = engine.query_cache.stats
    speedup = uncached / cached if cached else float("inf")
    print(f"\nrepeated-query workload: uncached {uncached:.3f}s, "
          f"cached {cached:.3f}s, speedup {speedup:.1f}x, "
          f"hit rate {stats.hit_rate:.1%}")
    json_artifact("solver_cache", {
        "workload": "repeated canonical queries",
        "queries_per_round": len(queries),
        "rounds": rounds,
        "uncached_seconds": round(uncached, 6),
        "cached_seconds": round(cached, 6),
        "speedup": round(speedup, 2),
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
    })
    assert stats.hit_rate > 0.5
    assert speedup >= 1.5


# -- incremental push/pop workloads (prefix-sharing, not repeating) ------------


def _extend_by_one_workload():
    """Extend-by-one PC growth with per-prefix probes — the exploration
    hot path: every branch appends one conjunct, and the Trojan search
    poses ``pc + probe`` push/pop patterns against each prefix. No query
    repeats exactly (the canonical cache cannot help); consecutive
    queries share long prefixes (the frame stack can)."""
    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    path = [
        ast.or_(ast.eq(msg[0], bv_const(1, 8)), ast.eq(msg[0], bv_const(2, 8))),
        ast.eq(msg[10], crc),
        ast.eq(msg[1], bv_const(1, 8)),
        msg[2] < 100,
        msg[3] >= 7,
        ast.ne(msg[4], bv_const(0, 8)),
        msg[5] <= 9,
        msg[6] > 1,
        ast.eq(msg[7], msg[8]),
        msg[9] < 200,
    ]
    probes = [
        (ast.eq(msg[2], bv_const(5, 8)),),
        (msg[3] < 50, ast.ne(msg[1], bv_const(0, 8))),
        (msg[2] > 150,),  # conflicts with the prefix: an unsat probe
    ]
    queries = []
    for hi in range(1, len(path) + 1):
        prefix = tuple(path[:hi])
        queries.append(prefix)
        for probe in probes:
            queries.append(prefix + probe)
    return queries


def test_incremental_answers_match_scratch():
    """Every extend-by-one query: frame-stack answer == from-scratch answer."""
    queries = _extend_by_one_workload()
    incremental = IncrementalSolver()
    for query in queries:
        assert (incremental.check(query).status
                == Solver().check(query).status)


def test_incremental_speedup_on_extend_by_one(json_artifact):
    """Acceptance gate (CI perf smoke): the push/pop assertion stack must
    beat from-scratch ``Solver.check`` by ≥2× on extend-by-one sequences.

    Measures the same query list both ways; the incremental side aligns
    its frame stack per query (pop the dead suffix, push the new
    conjuncts), so prefix propagation is paid once per prefix instead of
    once per query.
    """
    queries = _extend_by_one_workload()
    rounds = 5
    # Warm the global canonicalization/interning memos so neither side
    # pays first-touch rewriting inside the measured region.
    Solver().check(queries[-1])

    started = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            Solver().check(query)
    scratch = time.perf_counter() - started

    incremental = IncrementalSolver()
    started = time.perf_counter()
    for _ in range(rounds):
        for query in queries:
            incremental.check(query)
    stacked = time.perf_counter() - started

    stats = incremental.solver.stats
    speedup = scratch / stacked if stacked else float("inf")
    quick_rate = (stats.quick_sats + stats.quick_unsats) / stats.queries
    print(f"\nextend-by-one workload: from-scratch {scratch:.3f}s, "
          f"incremental {stacked:.3f}s, speedup {speedup:.1f}x, "
          f"frames reused {stats.frames_reused}, "
          f"quick-answer rate {quick_rate:.1%}")
    json_artifact("solver_incremental", {
        "workload": "extend-by-one push/pop sequence",
        "queries_per_round": len(queries),
        "rounds": rounds,
        "scratch_seconds": round(scratch, 6),
        "incremental_seconds": round(stacked, 6),
        "speedup": round(speedup, 2),
        "frames_pushed": stats.frames_pushed,
        "frames_reused": stats.frames_reused,
        "quick_sats": stats.quick_sats,
        "quick_unsats": stats.quick_unsats,
        "incremental_fallbacks": stats.incremental_fallbacks,
        "propagation_seconds": round(stats.propagation_seconds, 6),
    })
    assert speedup >= 2.0
    assert stats.frames_reused > stats.frames_pushed


def test_trail_pop_is_cheaper_than_repropagation(benchmark):
    """pop() must be O(changes): popping and re-pushing one probe conjunct
    at the end of a deep stack, timed."""
    queries = _extend_by_one_workload()
    deep = queries[-2]  # longest prefix plus a probe
    incremental = IncrementalSolver()
    incremental.check(deep)
    probe = deep[-1]

    def pop_push():
        incremental.pop()
        incremental.push(probe)
        return incremental.check_current().status

    assert benchmark(pop_push) == "sat"


def test_cross_engine_cache_reuse(benchmark):
    """Two engines sharing one QueryCache (the two Achilles phases)."""
    queries = _incremental_queries()
    shared = QueryCache()
    warm = Engine(EngineConfig(), query_cache=shared)
    for q in queries:
        warm.is_feasible(q)

    def second_phase():
        engine = Engine(EngineConfig(), query_cache=shared)
        for q in queries:
            engine.is_feasible(q)
        return engine.solver.stats.queries

    solver_calls = benchmark(second_phase)
    assert solver_calls == 0  # everything answered by the shared cache
