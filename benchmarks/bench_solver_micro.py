"""Microbenchmarks of the solver on Achilles-shaped queries.

Not a paper figure — this measures the substituted substrate itself, so
regressions in the solver (the repo's hot path) show up in benchmark
history. Rounds > 1 give pytest-benchmark real statistics, unlike the
experiment benches which run once.

The repeated-query benchmarks at the bottom exercise the canonical query
cache (:mod:`repro.solver.cache`): they re-pose incremental constraint
prefixes the way the Trojan search does and report the measured hit rate
and the cached-vs-uncached speedup.
"""

import time

import pytest

from repro.messages.symbolic import message_vars, wire_equalities
from repro.solver import ast
from repro.solver.ast import bv_const, bv_var
from repro.solver.cache import QueryCache
from repro.solver.solver import Solver
from repro.symex.engine import Engine, EngineConfig
from repro.systems.fsp import FSP_LAYOUT
from repro.systems.toy import TOY_LAYOUT
from repro.systems.toy.protocol import toy_checksum


def test_feasibility_query_toy_crc(benchmark):
    """A toy-server path condition with the real additive checksum."""
    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    constraints = [
        ast.or_(ast.eq(msg[0], bv_const(1, 8)), ast.eq(msg[0], bv_const(2, 8))),
        ast.eq(msg[10], crc),
        ast.eq(msg[1], bv_const(1, 8)),
    ]

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_combination_query_fsp(benchmark):
    """A pathS ∧ pathC combination: equalities + range constraints."""
    server = message_vars(FSP_LAYOUT, "s")
    value = bv_var("arg", 8)
    client = tuple(
        [bv_const(0x41, 8), bv_const(0x5A, 8)]
        + [bv_const(0, 8)] * 10 + [value]
        + [bv_const(0, 8)] * (FSP_LAYOUT.total_size - 13))
    constraints = (
        wire_equalities(server, client)
        + [ast.uge(value, bv_const(33, 8)), ast.ule(value, bv_const(126, 8))]
        + [ast.eq(server[0], bv_const(0x41, 8))])

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_negation_disjunction_query(benchmark):
    """A Trojan query shape: path condition + many negation disjuncts."""
    msg = message_vars(FSP_LAYOUT, "m")
    negations = []
    for index in range(16):
        fresh = bv_var(f"~{index}", 8)
        negations.append(ast.or_(
            ast.ne(msg[0], bv_const(0x41 + index % 8, 8)),
            ast.and_(ast.eq(msg[12], fresh),
                     ast.not_(ast.ult(fresh, bv_const(100, 8))))))
    constraints = [ast.eq(msg[0], bv_const(0x41, 8))] + negations

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_wide_variable_byte_split(benchmark):
    """32-bit signed bounds + equality: exercises byte splitting."""
    x = bv_var("x", 32)
    constraints = [x.slt(0), ast.eq(ast.extract(x, 7, 0), bv_const(5, 8))]

    def solve():
        result = Solver().check(constraints)
        return result.is_sat and result.value(x) >= 1 << 31

    assert benchmark(solve)


def test_unsat_proof(benchmark):
    """Unsat answers are complete proofs over the finite domains."""
    msg = message_vars(TOY_LAYOUT)
    constraints = [msg[2] < 10, msg[2] > 20]

    def solve():
        return not Solver().check(constraints).is_sat

    assert benchmark(solve)


# -- repeated-query workloads (the Achilles hot path) -------------------------


def _incremental_queries():
    """The §3.2 query shape: every prefix of a growing path condition,
    combined with a rotating set of client predicates — the same queries
    recur across predicates, replays and syntactic variants."""
    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    path = [
        ast.or_(ast.eq(msg[0], bv_const(1, 8)), ast.eq(msg[0], bv_const(2, 8))),
        ast.eq(msg[10], crc),
        ast.eq(msg[1], bv_const(1, 8)),
        msg[2] < 100,
        msg[3] >= 7,
    ]
    predicates = [
        (ast.eq(msg[1], bv_const(1, 8)),),
        (msg[2] < 100, msg[3] >= 7),
        # Syntactic variants of the two above: commuted equality operands
        # and negation-flipped comparisons canonicalize onto the same keys.
        (ast.eq(bv_const(1, 8), msg[1]),),
        (ast.not_(msg[2] >= 100), ast.not_(msg[3] < 7)),
    ]
    queries = []
    for hi in range(1, len(path) + 1):
        prefix = tuple(path[:hi])
        for pred in predicates:
            queries.append(prefix + pred)
    return queries


def test_repeated_queries_with_cache(benchmark):
    """The cached hot path: every round after the first is pure lookups."""
    queries = _incremental_queries()
    engine = Engine(EngineConfig())

    def run():
        return [engine.is_feasible(q) for q in queries]

    results = benchmark(run)
    assert any(results)
    stats = engine.query_cache.stats
    assert stats.hits > 0, "repeated workload must produce cache hits"
    assert stats.hit_rate > 0.5


def test_cache_speedup_on_repeated_queries():
    """Acceptance gate: ≥1.5× on repeated-query workloads, nonzero hit rate.

    Compares one engine answering the workload ``rounds`` times against a
    cache-less baseline (a fresh Solver per query, the pre-cache behavior
    of the module-level ``check``).
    """
    queries = _incremental_queries()
    rounds = 20

    started = time.perf_counter()
    for _ in range(rounds):
        for q in queries:
            Solver().check(q)
    uncached = time.perf_counter() - started

    engine = Engine(EngineConfig())
    started = time.perf_counter()
    for _ in range(rounds):
        for q in queries:
            engine.is_feasible(q)
    cached = time.perf_counter() - started

    stats = engine.query_cache.stats
    speedup = uncached / cached if cached else float("inf")
    print(f"\nrepeated-query workload: uncached {uncached:.3f}s, "
          f"cached {cached:.3f}s, speedup {speedup:.1f}x, "
          f"hit rate {stats.hit_rate:.1%}")
    assert stats.hit_rate > 0.5
    assert speedup >= 1.5


def test_cross_engine_cache_reuse(benchmark):
    """Two engines sharing one QueryCache (the two Achilles phases)."""
    queries = _incremental_queries()
    shared = QueryCache()
    warm = Engine(EngineConfig(), query_cache=shared)
    for q in queries:
        warm.is_feasible(q)

    def second_phase():
        engine = Engine(EngineConfig(), query_cache=shared)
        for q in queries:
            engine.is_feasible(q)
        return engine.solver.stats.queries

    solver_calls = benchmark(second_phase)
    assert solver_calls == 0  # everything answered by the shared cache
