"""Microbenchmarks of the solver on Achilles-shaped queries.

Not a paper figure — this measures the substituted substrate itself, so
regressions in the solver (the repo's hot path) show up in benchmark
history. Rounds > 1 give pytest-benchmark real statistics, unlike the
experiment benches which run once.
"""

import pytest

from repro.messages.symbolic import message_vars, wire_equalities
from repro.solver import ast
from repro.solver.ast import bv_const, bv_var
from repro.solver.solver import Solver
from repro.systems.fsp import FSP_LAYOUT
from repro.systems.toy import TOY_LAYOUT
from repro.systems.toy.protocol import toy_checksum


def test_feasibility_query_toy_crc(benchmark):
    """A toy-server path condition with the real additive checksum."""
    msg = message_vars(TOY_LAYOUT)
    crc = toy_checksum(list(msg[:10]))
    constraints = [
        ast.or_(ast.eq(msg[0], bv_const(1, 8)), ast.eq(msg[0], bv_const(2, 8))),
        ast.eq(msg[10], crc),
        ast.eq(msg[1], bv_const(1, 8)),
    ]

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_combination_query_fsp(benchmark):
    """A pathS ∧ pathC combination: equalities + range constraints."""
    server = message_vars(FSP_LAYOUT, "s")
    value = bv_var("arg", 8)
    client = tuple(
        [bv_const(0x41, 8), bv_const(0x5A, 8)]
        + [bv_const(0, 8)] * 10 + [value]
        + [bv_const(0, 8)] * (FSP_LAYOUT.total_size - 13))
    constraints = (
        wire_equalities(server, client)
        + [ast.uge(value, bv_const(33, 8)), ast.ule(value, bv_const(126, 8))]
        + [ast.eq(server[0], bv_const(0x41, 8))])

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_negation_disjunction_query(benchmark):
    """A Trojan query shape: path condition + many negation disjuncts."""
    msg = message_vars(FSP_LAYOUT, "m")
    negations = []
    for index in range(16):
        fresh = bv_var(f"~{index}", 8)
        negations.append(ast.or_(
            ast.ne(msg[0], bv_const(0x41 + index % 8, 8)),
            ast.and_(ast.eq(msg[12], fresh),
                     ast.not_(ast.ult(fresh, bv_const(100, 8))))))
    constraints = [ast.eq(msg[0], bv_const(0x41, 8))] + negations

    def solve():
        return Solver().check(constraints).is_sat

    assert benchmark(solve)


def test_wide_variable_byte_split(benchmark):
    """32-bit signed bounds + equality: exercises byte splitting."""
    x = bv_var("x", 32)
    constraints = [x.slt(0), ast.eq(ast.extract(x, 7, 0), bv_const(5, 8))]

    def solve():
        result = Solver().check(constraints)
        return result.is_sat and result.value(x) >= 1 << 31

    assert benchmark(solve)


def test_unsat_proof(benchmark):
    """Unsat answers are complete proofs over the finite domains."""
    msg = message_vars(TOY_LAYOUT)
    constraints = [msg[2] < 10, msg[2] > 20]

    def solve():
        return not Solver().check(constraints).is_sat

    assert benchmark(solve)
