"""Table 1 — Achilles vs classic symbolic execution on FSP (§6.2).

Paper row:  Achilles TP=80 FP=0; classic symex TP=80 FP=7,520.
Shape here: Achilles finds all 80 classes with zero false positives;
classic symbolic execution also covers all 80 classes but reports them
inside an undifferentiated bag of accepted messages dominated by
non-Trojan (false positive) entries.
"""

import pytest

from repro.bench.experiments import run_classic_baseline, run_fsp_accuracy
from repro.bench.tables import format_table


@pytest.fixture(scope="module")
def achilles_outcome():
    return run_fsp_accuracy()


@pytest.fixture(scope="module")
def classic_outcome():
    return run_classic_baseline(per_path_limit=512)


def test_table1_achilles_column(benchmark, achilles_outcome, artifact):
    outcome = benchmark.pedantic(run_fsp_accuracy, rounds=1, iterations=1)
    assert outcome.true_positives == 80
    assert outcome.false_positives == 0
    assert outcome.classes_found == outcome.classes_total == 80

    table = format_table(
        ["", "Achilles (paper)", "Achilles (here)"],
        [["True positives", 80, outcome.true_positives],
         ["False positives", 0, outcome.false_positives],
         ["Classes covered", "80/80", f"{outcome.classes_found}/80"]],
        title="Table 1 (Achilles column)")
    artifact("table1_achilles", table)


def test_table1_classic_column(benchmark, classic_outcome, artifact):
    result, score = classic_outcome
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Classic symex finds every Trojan class...
    assert len(score.classes_found) == 80
    # ...but buried: most reported messages are not Trojans, and nothing
    # in its output distinguishes the two (§6.2).
    assert score.false_positives > score.true_positives or \
        score.false_positives > 80
    assert result.accepting_paths == 112  # 80 Trojan + 32 valid paths

    table = format_table(
        ["", "Classic (paper)", "Classic (here)"],
        [["True positives", 80, f"{len(score.classes_found)} classes "
                                f"({score.true_positives} msgs)"],
         ["False positives", 7520, score.false_positives],
         ["Accepting paths", "-", result.accepting_paths]],
        title="Table 1 (classic symbolic execution column)")
    artifact("table1_classic", table)


def test_signal_to_noise_gap(benchmark, achilles_outcome, classic_outcome,
                             artifact):
    """The qualitative Table 1 claim: Achilles' output is pure signal,
    classic symex output is mostly noise."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, score = classic_outcome
    achilles_noise = achilles_outcome.false_positives / max(
        1, achilles_outcome.true_positives)
    classic_noise = score.false_positives / max(1, score.true_positives)
    assert achilles_noise == 0.0
    assert classic_noise > 0.0

    artifact("table1_signal_to_noise", format_table(
        ["Tool", "FP per TP (paper)", "FP per TP (here)"],
        [["Achilles", "0", f"{achilles_noise:.2f}"],
         ["Classic symex", f"{7520 / 80:.0f}", f"{classic_noise:.2f}"]],
        title="Signal-to-noise comparison"))
