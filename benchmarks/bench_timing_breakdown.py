"""Phase timing split of the FSP analysis (§6.2 text).

Paper wall-clock: client predicate 3 min / preprocessing 15 min / server
analysis 45 min (≈5% / 24% / 71% of the hour). Absolute times differ on
this substrate; the reproduced shape is the *ordering*: extracting the
client predicate is by far the cheapest phase ("clients are usually less
complex than servers", §3.2), and the analysis spends the bulk of its
time on predicate pre-processing plus server search.
"""

import pytest

from repro.bench.experiments import run_fsp_accuracy
from repro.bench.tables import format_table

PAPER_SPLIT = {"client_extraction": 3 / 63, "preprocessing": 15 / 63,
               "server_analysis": 45 / 63}


@pytest.fixture(scope="module")
def outcome():
    return run_fsp_accuracy()


def test_timing_breakdown(benchmark, outcome, artifact, json_artifact):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    report = outcome.report
    timings = report.timings
    fractions = timings.fractions()

    rows = []
    for phase, paper_fraction in PAPER_SPLIT.items():
        rows.append([phase, f"{paper_fraction:.0%}",
                     f"{fractions[phase]:.0%}",
                     f"{getattr(timings, phase):.2f}s"])
    artifact("timing_breakdown", format_table(
        ["Phase", "Paper share", "Here share", "Here seconds"], rows,
        title="Analysis wall-clock split (paper: 3min/15min/45min)"))
    json_artifact("fsp_timing_breakdown", {
        "workload": "FSP end-to-end (Table 1 accuracy run)",
        "client_extraction_seconds": round(timings.client_extraction, 6),
        "preprocessing_seconds": round(timings.preprocessing, 6),
        "server_analysis_seconds": round(timings.server_analysis, 6),
        "total_seconds": round(timings.total, 6),
        "findings": report.trojan_count,
        "solver_queries": report.solver_queries,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "cache_hit_rate": round(report.cache_hit_rate, 4),
        "frames_reused": report.frames_reused,
        "propagation_seconds": round(report.propagation_seconds, 6),
    })

    # The orderings the paper's split implies.
    assert timings.client_extraction < timings.preprocessing
    assert timings.client_extraction < timings.server_analysis
    # Client extraction is a small sliver of the total (paper: ~5%).
    assert fractions["client_extraction"] < 0.15


def test_total_time_is_dominated_by_solver_phases(benchmark, outcome):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    fractions = outcome.report.timings.fractions()
    solver_heavy = fractions["preprocessing"] + fractions["server_analysis"]
    assert solver_heavy > 0.8
