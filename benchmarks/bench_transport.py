"""Transport overhead: local vs TCP shard dispatch on the FSP workload.

The pluggable transport's promise is *byte-identical findings* on either
wire plus a dispatch overhead small enough that multi-host fan-out pays
off as soon as real cores exist on the far side. This benchmark runs the
FSP end-to-end analysis (4-utility subset, shards=2) three ways — serial
baseline, local multiprocessing transport, TCP against two localhost
``repro worker`` daemons — and emits ``BENCH_transport.json`` with the
wall clocks and the shipped-cache effect. Parity is asserted
unconditionally; the overhead numbers are recorded, not gated (a 1-core
runner time-slices everything, which the JSON shows rather than hides).

The cache-snapshot satellite is measured here too: shard workers that
absorb the coordinator's phase-1 feasibility answers pose measurably
fewer solver queries than cold-cache workers on the same run.
"""

import itertools
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.achilles import Achilles, AchillesConfig
from repro.achilles.server_analysis import _shard_setup
from repro.bench.experiments import FSP_SESSION_MASK
from repro.bench.tables import format_table
from repro.explore import ShardScheduler
from repro.systems import fsp

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _spawn_daemons(count: int):
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)
    daemons, hosts = [], []
    for _ in range(count):
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--listen", "127.0.0.1:0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        daemons.append(daemon)
        ready, host, port = daemon.stdout.readline().split()
        assert ready == "READY"
        hosts.append(f"{host}:{port}")
    return daemons, tuple(hosts)


def _run_fsp(shards: int, transport="local", hosts=(),
             on_worker_loss: str = "fail"):
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            shards=shards, transport=transport,
                            hosts=tuple(hosts),
                            on_worker_loss=on_worker_loss)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        started = time.perf_counter()
        report = achilles.search(fsp.fsp_server, predicates)
        seconds = time.perf_counter() - started
    return report, seconds


def test_transport_overhead(benchmark, artifact, json_artifact):
    """Local vs TCP dispatch on identical work; parity unconditional."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    cores = os.cpu_count() or 1

    serial_report, serial_seconds = _run_fsp(1)
    local_report, local_seconds = _run_fsp(2)
    daemons, hosts = _spawn_daemons(2)
    try:
        # Warm-up run absorbs daemon fork/connect cold start, then the
        # measured run — mirroring the pool warm-up in bench_scaling.
        _run_fsp(2, transport="tcp", hosts=hosts)
        tcp_report, tcp_seconds = _run_fsp(2, transport="tcp", hosts=hosts)
    finally:
        for daemon in daemons:
            daemon.terminate()
        for daemon in daemons:
            daemon.wait(timeout=10)

    # Parity: the whole point of the transport abstraction.
    assert local_report.witnesses() == serial_report.witnesses()
    assert tcp_report.witnesses() == serial_report.witnesses()
    assert tcp_report.server_paths_explored == \
        serial_report.server_paths_explored

    rows = [
        ["serial (shards=1)", f"{serial_seconds:.2f}s", "-"],
        ["local transport (shards=2)", f"{local_seconds:.2f}s",
         f"{local_seconds / serial_seconds:.2f}x"],
        ["tcp transport (shards=2, 2 daemons)", f"{tcp_seconds:.2f}s",
         f"{tcp_seconds / serial_seconds:.2f}x"],
    ]
    artifact("transport_overhead", format_table(
        ["Configuration", "Server search", "vs serial"], rows,
        title=f"Transport dispatch overhead, FSP 4-utility subset "
              f"({cores} core(s) available)"))
    json_artifact("transport", {
        "cpu_count": cores,
        "workload": "FSP 4-utility subset, server search",
        "serial_seconds": round(serial_seconds, 4),
        "local_shards2_seconds": round(local_seconds, 4),
        "tcp_shards2_seconds": round(tcp_seconds, 4),
        "tcp_vs_local_overhead": round(tcp_seconds / local_seconds, 4),
        "findings": local_report.trojan_count,
        "parity": True,
    })


def test_cache_snapshot_cuts_duplicate_queries(benchmark, json_artifact):
    """Shipping the coordinator's feasibility snapshot at fan-out must
    cut the shard workers' solver queries vs cold caches — the ~1.6x
    duplicate-query overhead the sharding PR measured at 2 shards."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    commands = dict(itertools.islice(fsp.COMMANDS.items(), 4))

    def sharded_queries(ship_cache: bool):
        achilles = Achilles(AchillesConfig(layout=fsp.FSP_LAYOUT,
                                           mask=FSP_SESSION_MASK))
        predicates = achilles.extract_clients(fsp.literal_clients(commands))
        scheduler = ShardScheduler(
            _shard_setup,
            (fsp.fsp_server, predicates, achilles.server_msg, None, "msg",
             True),
            shards=2, engine_config=achilles.config.server_engine,
            ship_cache=ship_cache)
        # Warm the coordinator cache exactly as search_server would: the
        # phase-1 answers are already in achilles.query_cache.
        scheduler.engine.query_cache.absorb(achilles.query_cache.snapshot())
        sharded = scheduler.run()
        worker_queries = sharded.worker_solver_stats.queries
        return worker_queries, sharded

    cold_queries, cold = sharded_queries(ship_cache=False)
    warm_queries, warm = sharded_queries(ship_cache=True)

    assert warm.cache_entries_shipped > 0
    assert cold.cache_entries_shipped == 0
    # Identical findings either way — the snapshot is an accelerator,
    # never an input.
    assert [f.witness for f in warm.observer.findings] == \
        [f.witness for f in cold.observer.findings]
    assert warm_queries < cold_queries, (
        f"snapshot shipping did not reduce worker queries: "
        f"{warm_queries} vs {cold_queries}")

    json_artifact("transport_cache_snapshot", {
        "workload": "FSP 4-utility subset, shards=2",
        "worker_queries_cold": cold_queries,
        "worker_queries_with_snapshot": warm_queries,
        "reduction_factor": round(cold_queries / max(1, warm_queries), 4),
        "cache_entries_shipped": warm.cache_entries_shipped,
    })


def test_recovery_overhead(benchmark, artifact, json_artifact):
    """What a mid-run worker loss costs under ``on_worker_loss="recover"``.

    The same FSP run three ways — fault-free, one worker killed before
    its first result (plus one refused respawn, exercising the retry
    budget), and the same fault plan over TCP daemons. Findings must be
    byte-identical in every configuration (the robustness criterion);
    the JSON records the recovery wall clock the faults cost.
    """
    from repro.explore import (FaultPlan, FaultyTransport, KillWorker,
                               LocalTransport, RefuseRespawn)
    from repro.explore.tcp import TcpTransport

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    def chaos_plan():
        return FaultPlan(KillWorker(0, after_results=0),
                         RefuseRespawn(0, times=1))

    baseline_report, baseline_seconds = _run_fsp(1)
    clean_report, clean_seconds = _run_fsp(2, on_worker_loss="recover")

    local_faulty = FaultyTransport(LocalTransport(), chaos_plan())
    local_report, local_seconds = _run_fsp(2, transport=local_faulty,
                                           on_worker_loss="recover")

    daemons, hosts = _spawn_daemons(2)
    try:
        tcp_faulty = FaultyTransport(TcpTransport(hosts), chaos_plan())
        tcp_report, tcp_seconds = _run_fsp(2, transport=tcp_faulty,
                                           on_worker_loss="recover")
    finally:
        for daemon in daemons:
            daemon.terminate()
        for daemon in daemons:
            daemon.wait(timeout=10)

    # Byte-identical findings with and without injected faults.
    assert clean_report.witnesses() == baseline_report.witnesses()
    assert local_report.witnesses() == baseline_report.witnesses()
    assert tcp_report.witnesses() == baseline_report.witnesses()
    # The faults must actually have fired, and been accounted for.
    assert local_faulty.injected_kills == 1
    assert tcp_faulty.injected_kills == 1
    assert local_report.worker_failures == 1
    assert tcp_report.worker_failures == 1
    assert clean_report.worker_failures == 0

    rows = [
        ["fault-free (shards=2, local)", f"{clean_seconds:.2f}s", "-", "-"],
        ["1 kill + 1 refused respawn (local)", f"{local_seconds:.2f}s",
         f"{local_report.prefixes_reassigned}",
         f"{local_report.recovery_seconds:.3f}s"],
        ["1 kill + 1 refused respawn (tcp)", f"{tcp_seconds:.2f}s",
         f"{tcp_report.prefixes_reassigned}",
         f"{tcp_report.recovery_seconds:.3f}s"],
    ]
    artifact("recovery_overhead", format_table(
        ["Configuration", "Server search", "Prefixes moved", "Recovery"],
        rows, title="Worker-loss recovery overhead, FSP 4-utility subset"))
    json_artifact("recovery", {
        "workload": "FSP 4-utility subset, shards=2, "
                    "KillWorker(0)+RefuseRespawn(0)",
        "serial_seconds": round(baseline_seconds, 4),
        "fault_free_seconds": round(clean_seconds, 4),
        "local_faulted_seconds": round(local_seconds, 4),
        "tcp_faulted_seconds": round(tcp_seconds, 4),
        "local_recovery_seconds": round(local_report.recovery_seconds, 4),
        "tcp_recovery_seconds": round(tcp_report.recovery_seconds, 4),
        "local_prefixes_reassigned": local_report.prefixes_reassigned,
        "tcp_prefixes_reassigned": tcp_report.prefixes_reassigned,
        "worker_failures": local_report.worker_failures,
        "parity": True,
    })
