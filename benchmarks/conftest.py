"""Shared fixtures for the evaluation benchmarks.

Every benchmark renders its paper-shaped table/series through the
``artifact`` fixture, which both prints it (visible with ``pytest -s``)
and writes it under ``benchmarks/results/`` so the regenerated rows can
be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def artifact():
    """Persist a rendered experiment output: ``artifact(name, text)``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return save
