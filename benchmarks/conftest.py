"""Shared fixtures for the evaluation benchmarks.

Every benchmark renders its paper-shaped table/series through the
``artifact`` fixture, which both prints it (visible with ``pytest -s``)
and writes it under ``benchmarks/results/`` so the regenerated rows can
be diffed against EXPERIMENTS.md.

``json_artifact`` is the machine-readable sibling: benchmarks dump their
wall clocks and counters (query/cache/frame-reuse) as
``benchmarks/results/BENCH_<name>.json``, so the perf trajectory can be
tracked across PRs and uploaded as a CI artifact.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def artifact():
    """Persist a rendered experiment output: ``artifact(name, text)``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return save


@pytest.fixture
def json_artifact():
    """Persist machine-readable results: ``json_artifact(name, payload)``.

    ``payload`` must be JSON-serializable (wall clocks, counters, ratios).
    Written as ``BENCH_<name>.json`` with sorted keys so diffs across PRs
    stay stable.
    """
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, payload: dict) -> pathlib.Path:
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"\n[bench json saved to {path}]")
        return path

    return save
