#!/usr/bin/env python3
"""The §6.2 FSP accuracy experiment, end to end.

Runs Achilles over the eight FSP client utilities and the FSP server with
file paths bounded below length 5, then scores the findings against the
mathematically known 80 Trojan classes — reproducing Table 1's Achilles
column (80 true positives, 0 false positives) and the Figure 10 curve.

Run::

    python examples/fsp_trojan_hunt.py
    python examples/fsp_trojan_hunt.py --workers 4   # parallel solver service
    python examples/fsp_trojan_hunt.py --shards 4    # sharded exploration

    # multi-host: start a worker daemon per analysis machine first
    #   (hostA) python -m repro worker --listen 0.0.0.0:9100
    #   (hostB) python -m repro worker --listen 0.0.0.0:9100
    python examples/fsp_trojan_hunt.py --shards 4 \
        --hosts hostA:9100,hostB:9100

``--workers N`` shards the embarrassingly parallel solver batches (the
``differentFrom`` matrix, negation probes, per-path predicate re-checks)
across N worker processes; ``--shards N`` partitions the server's path
tree itself by decision prefixes across N exploration processes with
work-stealing. ``--hosts`` lifts those shards off local processes and
onto TCP worker daemons (shards round-robin across the listed hosts).
All knobs compose, and the findings are byte-identical to the serial
run either way. ``--search-order`` and ``--max-paths`` override the
exploration policy.

Watch it live with ``--progress`` (one fleet-status line per second on
stderr), or record a full trace with ``--trace-dir DIR`` and inspect it
afterwards::

    python examples/fsp_trojan_hunt.py --shards 4 --trace-dir run
    python -m repro trace summarize run
    python -m repro trace export run -o fsp.chrome.json  # open in Perfetto
"""

import argparse
from collections import Counter

from repro.bench.experiments import run_fsp_accuracy
from repro.bench.tables import format_series, format_table
from repro.systems.fsp import FSP_LAYOUT, classify_message


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="solver-service worker processes (default: 1, "
                             "fully serial)")
    parser.add_argument("--shards", type=int, default=1,
                        help="exploration shard processes for the server "
                             "search (default: 1, one in-process walk)")
    parser.add_argument("--search-order", choices=["dfs", "bfs"], default=None,
                        help="exploration worklist order (default: dfs)")
    parser.add_argument("--max-paths", type=int, default=None,
                        help="cap on completed paths per exploration")
    parser.add_argument("--hosts", default=None,
                        help="comma-separated host:port worker daemons; "
                             "runs the shards over TCP instead of local "
                             "processes (start each daemon with "
                             "`python -m repro worker --listen HOST:PORT`)")
    parser.add_argument("--on-worker-loss", choices=["fail", "recover"],
                        default="fail",
                        help="recover reassigns a dead worker's prefixes "
                             "instead of aborting the run; findings are "
                             "byte-identical either way")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="record structured spans for the whole hunt "
                             "and write DIR/trace.jsonl (inspect with "
                             "`python -m repro trace summarize DIR`)")
    parser.add_argument("--progress", action="store_true",
                        help="print a live one-line fleet status to "
                             "stderr while the hunt runs")
    args = parser.parse_args()
    hosts = tuple(h.strip() for h in (args.hosts or "").split(",") if h.strip())
    transport = "tcp" if hosts else "local"
    where = f"hosts={','.join(hosts)}" if hosts else "local processes"
    print(f"Running Achilles on FSP (8 utilities, path bound 5, "
          f"workers={args.workers}, shards={args.shards}, {where})...")
    outcome = run_fsp_accuracy(workers=args.workers, shards=args.shards,
                               search_order=args.search_order,
                               max_paths=args.max_paths,
                               transport=transport, hosts=hosts,
                               on_worker_loss=args.on_worker_loss,
                               trace_dir=args.trace_dir,
                               progress=args.progress)
    report = outcome.report

    print(format_table(
        ["", "Paper", "This run"],
        [["True positives", 80, outcome.true_positives],
         ["False positives", 0, outcome.false_positives],
         ["Class coverage", "80/80",
          f"{outcome.classes_found}/{outcome.classes_total}"],
         ["Server paths pruned", "-", report.server_paths_pruned],
         ["Total time", "1h03",
          f"{report.timings.total:.1f}s"]],
        title="Table 1 — Achilles on FSP"))

    print("\nFindings per utility:")
    by_utility = Counter(
        classify_message(w).utility for w in report.witnesses())
    for utility, count in sorted(by_utility.items()):
        print(f"  {utility}: {count} Trojan classes")

    print("\n" + format_series(
        report.discovery_fractions()[::8] + [report.discovery_fractions()[-1]],
        title="Figure 10 — discovery over analysis time",
        x_label="time", y_label="found"))

    example = report.findings[0]
    fields = example.witness_fields(FSP_LAYOUT)
    trojan_class = classify_message(example.witness)
    print(f"\nExample Trojan: {trojan_class}")
    print(f"  wire bytes: {example.witness.hex()}")
    print(f"  bb_len says {fields['bb_len']}, but the path ends at "
          f"{trojan_class.true_length} - the unvalidated gap is a "
          f"hidden payload channel.")


if __name__ == "__main__":
    main()
