#!/usr/bin/env python3
"""The FSP wildcard bug, from discovery to impact (§6.3).

Part 1 runs Achilles with *globbing* clients: because FSP clients always
expand ``*``/``?`` before sending (and no escape syntax exists), no
correct client can put a wildcard on the wire — while the server happily
accepts any printable character. Wildcard paths are Trojans.

Part 2 replays the paper's impact narrative on a concrete deployment:
``mv f f*`` creates a literal file ``f*`` (rename destinations are never
globbed), after which every attempt to delete it safely fails —
``rm f*`` destroys the innocent ``f1`` and ``f2`` too, and ``rm f\\*``
matches nothing at all.

Run::

    python examples/fsp_wildcard_bug.py
"""

from repro.bench.experiments import run_fsp_wildcard
from repro.net.network import Network, Node
from repro.systems.fsp import (
    FSP_LAYOUT,
    FspServerNode,
    client_command,
    expand_argument,
    rename_command,
)


class User(Node):
    def __init__(self):
        super().__init__("user")
        self.replies = []

    def handle(self, source, payload, network):
        self.replies.append(payload)


def discovery() -> None:
    print("=== Part 1: discovery ===")
    print("Achilles with globbing clients (wildcards expanded client-side)")
    report = run_fsp_wildcard(listing=("f1", "f2", "doc"))
    buf = FSP_LAYOUT.view("buf")
    wildcard = [w for w in report.witnesses()
                if any(b in (ord("*"), ord("?"))
                       for b in w[buf.offset:buf.end])]
    print(f"findings: {report.trojan_count}; "
          f"wildcard-carrying witnesses: {len(wildcard)}")
    example = wildcard[0]
    path = bytes(example[buf.offset:buf.end]).split(b"\x00")[0]
    print(f"example Trojan path on the wire: {path!r}\n")


def impact() -> None:
    print("=== Part 2: impact on a live deployment ===")
    network = Network()
    server = network.attach(FspServerNode("server"))
    network.attach(User())
    for name in ("f", "f1", "f2", "bank"):
        server.fs.write_file(f"/srv/{name}", name.encode())
    print(f"initial files: {server.fs.listdir('/srv')}")

    # mv f f* : the rename destination is never globbed.
    network.send("user", "server", rename_command("f", "f*"))
    network.run()
    print(f"after 'fmv f f*': {server.fs.listdir('/srv')}")

    # rm f\* : no escape character exists; matches nothing.
    escaped = expand_argument(r"f\*", server.fs.listdir("/srv"))
    print(f"'frm f\\*' expands to {escaped} - the file survives")

    # rm f* : globs to everything f-prefixed, including innocents.
    targets = expand_argument("f*", server.fs.listdir("/srv"))
    print(f"'frm f*' expands to {targets}")
    for target in targets:
        network.send("user", "server", client_command("frm", target))
        network.run()
    print(f"after 'frm f*': {server.fs.listdir('/srv')} "
          f"- f1 and f2 are collateral damage")


def main() -> None:
    discovery()
    impact()


if __name__ == "__main__":
    main()
