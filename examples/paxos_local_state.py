#!/usr/bin/env python3
"""The three Achilles local-state modes on a Paxos acceptor (§3.4).

An acceptor's accept predicate depends on its promised ballot, so "is
this message Trojan?" depends on state. This example runs the same
analysis three ways:

* **Concrete** — acceptor promised ballot 3, proposer proposes value 7:
  ACCEPT with any other (ballot, value) is Trojan;
* **Constructed symbolic** — the proposer's value is symbolic: the value
  Trojans disappear (some correct proposer could send any value), the
  ballot Trojans remain — one run replaces re-running per value;
* **Over-approximate symbolic** — the acceptor's promise is a constrained
  symbolic value: one run covers promises 0..10.

Run::

    python examples/paxos_local_state.py
"""

from repro.achilles import Achilles, AchillesConfig
from repro.systems.paxos import (
    PAXOS_LAYOUT,
    acceptor_program,
    overapprox_acceptor,
    phase2_proposer,
    symbolic_value_proposer,
)


def achilles() -> Achilles:
    return Achilles(AchillesConfig(layout=PAXOS_LAYOUT,
                                   destination="acceptor"))


def show(title: str, report) -> None:
    print(f"--- {title} ---")
    for finding in report.findings:
        fields = finding.witness_fields(PAXOS_LAYOUT)
        print(f"  {finding.labels[0]}: kind={fields['kind']} "
              f"ballot={fields['ballot']} value={fields['value']}")
    print()


def main() -> None:
    # Concrete Local State: promised=3, proposing value 7.
    tool = achilles()
    concrete_pc = tool.extract_clients(
        {"proposer": phase2_proposer(ballot=3, value=7)})
    show("Concrete local state (promised=3, proposer sends ACCEPT(3,7))",
         tool.search(acceptor_program(promised=3), concrete_pc))

    # Constructed Symbolic Local State: the value is symbolic.
    symbolic_pc = tool.extract_clients(
        {"proposer": symbolic_value_proposer(ballot=3)})
    show("Constructed symbolic state (value symbolic: value-Trojans gone)",
         tool.search(acceptor_program(promised=3), symbolic_pc))

    # Over-approximate Symbolic Local State: promise in [0, 10].
    show("Over-approximate state (symbolic promise 0..10, one run)",
         tool.search(overapprox_acceptor(max_promise=10), concrete_pc))


if __name__ == "__main__":
    main()
