#!/usr/bin/env python3
"""Rediscovering and weaponizing the PBFT MAC attack (§6.2-§6.3).

Part 1 runs Achilles over the PBFT client and replica ingress: the
replica validates tag, sizes, digest, client id and request freshness —
but never the authenticator. A request with corrupt MAC bytes is the
single Trojan type, present on every accepting path.

Part 2 measures the attack on a concrete 4-replica cluster: corrupt-MAC
requests sail through the primary, fail verification at the backups, and
trigger view changes whose cost scales with the attack rate.

Run::

    python examples/pbft_mac_attack.py
"""

from repro.bench.experiments import run_pbft_impact
from repro.bench.tables import format_table
from repro.messages.concrete import decode
from repro.systems.pbft import MAC_STUB, REQUEST_LAYOUT


def main() -> None:
    print("Running Achilles on the PBFT replica ingress...")
    outcome = run_pbft_impact(requests=40)
    report = outcome.report

    print(f"findings: {report.trojan_count} "
          f"(one per accepting path: read-only and pre-prepare)")
    for finding in report.findings:
        mac = decode(REQUEST_LAYOUT, finding.witness)["mac"]
        print(f"  {finding.labels[0]}: witness MAC={mac.hex()} "
              f"(correct clients always write {MAC_STUB.hex()})")
    print(f"analysis time: {report.timings.total:.2f}s "
          f"(paper: 'a few seconds')\n")

    rows = []
    for label, stats in outcome.impact.items():
        rows.append([label, stats.committed, stats.view_changes,
                     stats.deliveries, f"{stats.throughput:.4f}"])
    print(format_table(
        ["Workload", "Committed", "View changes", "Deliveries",
         "Throughput"],
        rows, title="MAC attack impact (40 requests, 4 replicas)"))
    clean = outcome.impact["clean"].throughput
    heavy = outcome.impact["attack-50%"].throughput
    print(f"\nThroughput degradation at 50% attack traffic: "
          f"{clean / heavy:.1f}x")


if __name__ == "__main__":
    main()
