#!/usr/bin/env python3
"""Quickstart: find the Trojan message in the paper's working example.

The system under test is §2.1 of the paper: a server handling READ/WRITE
requests that checks ``address < DATASIZE`` but forgets ``address >= 0``
on the READ path. Correct clients validate both bounds, so a READ with a
negative address is a Trojan message — accepted by the server, producible
by no correct client.

Run::

    python examples/quickstart.py
"""

from repro.achilles import Achilles, AchillesConfig
from repro.net.inject import Injector
from repro.net.network import Network, Node
from repro.systems.toy import (
    PEERS,
    READ,
    TOY_LAYOUT,
    ToyServerNode,
    toy_client,
    toy_server,
)


def signed32(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value


def main() -> None:
    # 1. Configure Achilles with the wire layout both sides share.
    achilles = Achilles(AchillesConfig(layout=TOY_LAYOUT))

    # 2. Phase one: symbolically execute the client, extract PC.
    predicates = achilles.extract_clients({"toy-client": toy_client})
    print(f"Client predicate PC: {len(predicates)} path predicates")
    for pred in predicates.predicates:
        fields = [d.field for d in predicates.negations[pred.index].disjuncts]
        print(f"  path {pred.source_path_id}: request="
              f"{pred.field_value('request').value}, negatable fields: "
              f"{', '.join(fields)}")

    # 3. Phase two: explore the server, searching for PS ∧ ¬PC. Both
    # phases share one canonical query cache (achilles.query_cache), so
    # repeated and syntactically-variant satisfiability queries are
    # answered without re-running the solver.
    report = achilles.search(toy_server, predicates)
    print(f"\nTrojan findings: {report.trojan_count} "
          f"(server paths explored: {report.server_paths_explored}, "
          f"pruned: {report.server_paths_pruned})")
    print(f"Solver queries: {report.solver_queries}, query cache: "
          f"{report.cache_hits} hits / {report.cache_misses} misses "
          f"({report.cache_hit_rate:.0%} hit rate)")
    for finding in report.findings:
        fields = finding.witness_fields(TOY_LAYOUT)
        print(f"  witness: request={fields['request']} "
              f"address={signed32(fields['address'])} "
              f"value={fields['value']} (sender={fields['sender']}, "
              f"valid crc={fields['crc']})")

    # 4. Inject the concrete witness into a live deployment (§4.1).
    network = Network()
    server = network.attach(ToyServerNode("server"))
    replies = []

    class User(Node):
        def handle(self, source, payload, network):
            replies.append(payload)

    network.attach(User("client"))
    injector = Injector(network, "server", spoof_source="client")
    outcome = injector.inject(report.findings[0].witness)
    print(f"\nInjected the witness: server delivered {outcome.delivered} "
          f"message(s), replied: {bool(replies)}, crashed: {server.crashed}")

    # A targeted small negative offset leaks adjacent memory instead of
    # crashing: craft READ(address=-1) with a valid checksum.
    from repro.messages.concrete import encode
    from repro.systems.toy import toy_checksum
    from repro.systems.toy.protocol import CHECKSUM_SPAN

    fresh = Network()
    leak_server = fresh.attach(ToyServerNode("server"))
    fresh.attach(User("client"))
    body = {"sender": PEERS[0], "request": READ,
            "address": (1 << 32) - 1, "value": 0}
    partial = encode(TOY_LAYOUT, {**body, "crc": 0})
    crafted = encode(TOY_LAYOUT, {
        **body, "crc": toy_checksum(list(partial[:CHECKSUM_SPAN]))})
    replies.clear()
    Injector(fresh, "server", "client").inject(crafted)
    if replies:
        print(f"READ(address=-1) leaked the byte below the data array: "
              f"0x{replies[-1][1]:02x} — the last entry of the peer list "
              f"{PEERS}")


if __name__ == "__main__":
    main()
