#!/usr/bin/env python3
"""The Raft consensus workload, end to end.

Runs Achilles over the correct Raft peers (the current-term leader and a
campaigning candidate) and one follower's RPC ingress, scores the
findings against the 9 seeded Trojan classes, then *detonates* one of
them: a single stale-term AppendEntries delivered to a live concrete
follower erases its committed log entries.

Run::

    python examples/raft_trojan_hunt.py
    python examples/raft_trojan_hunt.py --workers 4   # parallel solver service
    python examples/raft_trojan_hunt.py --shards 4    # sharded exploration
    python examples/raft_trojan_hunt.py --shards 4 \
        --hosts hostA:9100,hostB:9100    # shards over TCP worker daemons

``--workers N`` shards the embarrassingly parallel solver batches across
N worker processes; ``--shards N`` partitions the follower's path tree
by decision prefixes across N exploration processes. ``--hosts`` lifts
those shards onto ``python -m repro worker`` daemons over TCP. All knobs
compose, and the findings are byte-identical to the serial run either
way.
"""

import argparse

from repro.bench.experiments import run_raft_accuracy
from repro.bench.tables import format_table
from repro.systems.raft import (
    classify_message,
    run_truncation_attack,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="solver-service worker processes (default: 1, "
                             "fully serial)")
    parser.add_argument("--shards", type=int, default=1,
                        help="exploration shard processes for the follower "
                             "search (default: 1, one in-process walk)")
    parser.add_argument("--search-order", choices=["dfs", "bfs"], default=None,
                        help="exploration worklist order (default: dfs)")
    parser.add_argument("--max-paths", type=int, default=None,
                        help="cap on completed paths per exploration")
    parser.add_argument("--hosts", default=None,
                        help="comma-separated host:port worker daemons; "
                             "runs the shards over TCP instead of local "
                             "processes (start each daemon with "
                             "`python -m repro worker --listen HOST:PORT`)")
    parser.add_argument("--on-worker-loss", choices=["fail", "recover"],
                        default="fail",
                        help="recover reassigns a dead worker's prefixes "
                             "instead of aborting the run; findings are "
                             "byte-identical either way")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="record structured spans for the whole hunt "
                             "and write DIR/trace.jsonl (inspect with "
                             "`python -m repro trace summarize DIR`)")
    parser.add_argument("--progress", action="store_true",
                        help="print a live one-line fleet status to "
                             "stderr while the hunt runs")
    args = parser.parse_args()
    hosts = tuple(h.strip() for h in (args.hosts or "").split(",") if h.strip())
    transport = "tcp" if hosts else "local"
    where = f"hosts={','.join(hosts)}" if hosts else "local processes"
    print(f"Running Achilles on the Raft follower (workers={args.workers}, "
          f"shards={args.shards}, {where})...")
    outcome = run_raft_accuracy(workers=args.workers, shards=args.shards,
                                search_order=args.search_order,
                                max_paths=args.max_paths,
                                transport=transport, hosts=hosts,
                                on_worker_loss=args.on_worker_loss,
                                trace_dir=args.trace_dir,
                                progress=args.progress)
    report = outcome.report

    print(format_table(
        ["", "Seeded", "This run"],
        [["True positives", 9, outcome.true_positives],
         ["False positives", 0, outcome.false_positives],
         ["Class coverage", "9/9",
          f"{outcome.classes_found}/{outcome.classes_total}"],
         ["Precision / recall", "1.00 / 1.00",
          f"{outcome.precision:.2f} / {outcome.recall:.2f}"],
         ["Total time", "-", f"{report.timings.total:.1f}s"]],
        title="Raft follower ingress vs seeded ground truth"))

    print("\nFindings:")
    for finding in report.findings:
        marker = (" [erases committed entries]"
                  if "truncates-committed" in finding.labels else "")
        print(f"  {classify_message(finding.witness)}  "
              f"wire={finding.witness.hex()}{marker}")

    print("\nDetonating one stale-term AppendEntries on a live follower:")
    attack = run_truncation_attack()
    print(f"  log terms before: {attack.log_terms_before} "
          f"(committed through index 2)")
    print(f"  log terms after:  {attack.log_terms_after}")
    print(f"  committed entries erased: {attack.committed_lost}; "
          f"follower acked the Trojan: {attack.acked}")


if __name__ == "__main__":
    main()
