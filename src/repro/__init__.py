"""Achilles reproduction: finding Trojan message vulnerabilities.

A complete Python reproduction of Banabic, Candea, Guerraoui — "Finding
Trojan Message Vulnerabilities in Distributed Systems" (ASPLOS 2014).

Most users want :class:`repro.achilles.Achilles`::

    from repro.achilles import Achilles, AchillesConfig

The package layout mirrors the system inventory in ``DESIGN.md``:

* ``repro.solver`` — bitvector constraint solver (Z3/STP stand-in);
* ``repro.symex`` — symbolic execution engine (S2E stand-in);
* ``repro.messages`` / ``repro.crypto`` / ``repro.fsys`` / ``repro.net``
  — protocol and deployment substrates;
* ``repro.achilles`` — the paper's contribution;
* ``repro.baselines`` — classic symbolic execution and fuzzing;
* ``repro.systems`` — toy (§2.1), FSP, PBFT, Paxos under test;
* ``repro.bench`` — the evaluation experiment drivers.
"""

__version__ = "1.0.0"
