"""Command-line entry point: run the reproduction experiments.

Usage::

    python -m repro toy            # §2.1 working example
    python -m repro fsp            # Table 1 accuracy run on FSP
    python -m repro fsp-wildcard   # §6.3 wildcard experiment
    python -m repro pbft           # MAC-attack analysis + cluster impact
    python -m repro raft           # Raft follower ingress (9 seeded classes)
    python -m repro tpc            # two-phase commit (ack-without-WAL)
    python -m repro broadcast      # Bracha broadcast (7 seeded classes)
    python -m repro list           # show available experiments

    python -m repro worker --listen 0.0.0.0:9100   # shard worker daemon
    python -m repro cache stats --cache-dir CACHE  # inspect a disk cache
    python -m repro trace summarize RUN/trace.jsonl  # inspect a trace
    python -m repro corpus run --variants 12       # scenario-matrix corpus

Every experiment accepts ``--workers/--shards`` (parallel throughput
knobs; findings are byte-identical at any count) and
``--search-order/--max-paths`` (exploration policy overrides).

Crash safety: ``--cache-dir DIR`` persists the canonical query cache
across runs (a warm re-analysis only re-solves what changed; corrupted
cache files degrade to a colder cache, never an error). With ``--shards
N --run-dir DIR`` the sharded search journals its progress, and
``--resume DIR`` continues a killed run from its last checkpoint —
findings are byte-identical to an uninterrupted run. The ``cache``
subcommand inspects, verifies, compacts, or clears a cache directory.

Multi-host analysis: start a ``worker`` daemon on each host, then point
any experiment at them with ``--transport tcp --hosts
hostA:9100,hostB:9100``. The coordinator connects one shard session per
``--shards`` slot, round-robin over the hosts, and the deterministic
merge keeps findings byte-identical to the local run. With
``--on-worker-loss recover`` a killed daemon session (or local worker)
no longer aborts the run: its prefixes are reassigned and the findings
stay byte-identical.

Observability: ``--trace-dir DIR`` records structured spans across the
coordinator, the shard workers and every solver layer, writing the
merged trace to ``DIR/trace.jsonl`` (``trace summarize`` prints span
statistics, ``trace export`` converts to Chrome trace-event JSON for
Perfetto). ``--progress`` prints a live one-line fleet status to stderr
while the search runs. ``--verbose``/``--quiet`` move the ``repro``
logger's threshold (recovery notices, cache salvage warnings). All of
it is observational: findings are byte-identical with everything on or
off.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.tables import format_table


def _run_toy(workers: int = 1, shards: int = 1,
             search_order: str | None = None,
             max_paths: int | None = None,
             transport: str = "local", hosts: tuple = (),
             on_worker_loss: str = "fail",
             cache_dir: str | None = None,
             run_dir: str | None = None,
             checkpoint_interval: int = 1,
             resume: bool = False,
             trace_dir: str | None = None,
             progress: bool = False) -> int:
    from repro.achilles import Achilles, AchillesConfig
    from repro.bench.experiments import make_engine_config
    from repro.systems.toy import TOY_LAYOUT, toy_client, toy_server

    with Achilles(AchillesConfig(layout=TOY_LAYOUT,
                                 client_engine=make_engine_config(
                                     search_order, max_paths),
                                 server_engine=make_engine_config(
                                     search_order, max_paths),
                                 workers=workers,
                                 shards=shards,
                                 transport=transport,
                                 hosts=tuple(hosts),
                                 on_worker_loss=on_worker_loss,
                                 cache_dir=cache_dir,
                                 run_dir=run_dir,
                                 checkpoint_interval=checkpoint_interval,
                                 resume=resume,
                                 trace_dir=trace_dir,
                                 progress=progress)) as achilles:
        predicates = achilles.extract_clients({"toy": toy_client})
        report = achilles.search(toy_server, predicates)
    rows = [[f.server_path_id, f.witness.hex(),
             str(f.witness_fields(TOY_LAYOUT))] for f in report.findings]
    print(format_table(["path", "witness", "fields"], rows,
                       title=f"{report.trojan_count} Trojan finding(s) "
                             f"in {report.timings.total:.2f}s"))
    _report_health(report)
    return 0


def _run_fsp(workers: int = 1, shards: int = 1,
             search_order: str | None = None,
             max_paths: int | None = None,
             transport: str = "local", hosts: tuple = (),
             on_worker_loss: str = "fail",
             cache_dir: str | None = None,
             run_dir: str | None = None,
             checkpoint_interval: int = 1,
             resume: bool = False,
             trace_dir: str | None = None,
             progress: bool = False) -> int:
    from repro.bench.experiments import run_fsp_accuracy

    outcome = run_fsp_accuracy(workers=workers, shards=shards,
                               search_order=search_order,
                               max_paths=max_paths,
                               transport=transport, hosts=hosts,
                               on_worker_loss=on_worker_loss,
                               cache_dir=cache_dir, run_dir=run_dir,
                               checkpoint_interval=checkpoint_interval,
                               resume=resume, trace_dir=trace_dir,
                               progress=progress)
    print(format_table(
        ["metric", "paper", "here"],
        [["true positives", 80, outcome.true_positives],
         ["false positives", 0, outcome.false_positives],
         ["classes", "80/80",
          f"{outcome.classes_found}/{outcome.classes_total}"],
         ["time", "1h03", f"{outcome.report.timings.total:.1f}s"]],
        title="FSP accuracy (Table 1, Achilles column)"))
    _report_health(outcome.report)
    return 0 if outcome.false_positives == 0 else 1


def _run_fsp_wildcard(workers: int = 1, shards: int = 1,
                      search_order: str | None = None,
                      max_paths: int | None = None,
                      transport: str = "local", hosts: tuple = (),
                      on_worker_loss: str = "fail",
                      cache_dir: str | None = None,
                      run_dir: str | None = None,
                      checkpoint_interval: int = 1,
                      resume: bool = False,
             trace_dir: str | None = None,
             progress: bool = False) -> int:
    from repro.bench.experiments import run_fsp_wildcard
    from repro.systems.fsp import FSP_LAYOUT

    report = run_fsp_wildcard(workers=workers, shards=shards,
                              search_order=search_order, max_paths=max_paths,
                              transport=transport, hosts=hosts,
                              on_worker_loss=on_worker_loss,
                              cache_dir=cache_dir, run_dir=run_dir,
                              checkpoint_interval=checkpoint_interval,
                              resume=resume, trace_dir=trace_dir,
                              progress=progress)
    buf = FSP_LAYOUT.view("buf")
    wildcard = [w for w in report.witnesses()
                if any(b in (42, 63) for b in w[buf.offset:buf.end])]
    print(f"findings: {report.trojan_count}; wildcard witnesses: "
          f"{len(wildcard)}")
    for witness in wildcard[:5]:
        path = bytes(witness[buf.offset:buf.end]).split(b"\x00")[0]
        print(f"  Trojan path: {path!r}")
    _report_health(report)
    return 0 if wildcard else 1


def _run_pbft(workers: int = 1, shards: int = 1,
              search_order: str | None = None,
              max_paths: int | None = None,
              transport: str = "local", hosts: tuple = (),
              on_worker_loss: str = "fail",
              cache_dir: str | None = None,
              run_dir: str | None = None,
              checkpoint_interval: int = 1,
              resume: bool = False,
             trace_dir: str | None = None,
             progress: bool = False) -> int:
    from repro.bench.experiments import run_pbft_impact

    outcome = run_pbft_impact(workers=workers, shards=shards,
                              search_order=search_order, max_paths=max_paths,
                              transport=transport, hosts=hosts,
                              on_worker_loss=on_worker_loss,
                              cache_dir=cache_dir, run_dir=run_dir,
                              checkpoint_interval=checkpoint_interval,
                              resume=resume, trace_dir=trace_dir,
                              progress=progress)
    print(f"findings: {outcome.report.trojan_count} "
          f"(MAC != {outcome.mac_stub.hex()}) in "
          f"{outcome.report.timings.total:.2f}s")
    rows = [[label, stats.committed, stats.view_changes,
             f"{stats.throughput:.4f}"]
            for label, stats in outcome.impact.items()]
    print(format_table(["workload", "committed", "view changes",
                        "throughput"], rows, title="MAC attack impact"))
    _report_health(outcome.report)
    return 0


def _accuracy_table(title: str, outcome, classes_total: int) -> None:
    print(format_table(
        ["metric", "seeded", "here"],
        [["true positives", f">= {classes_total}", outcome.true_positives],
         ["false positives", 0, outcome.false_positives],
         ["classes", f"{classes_total}/{classes_total}",
          f"{outcome.classes_found}/{outcome.classes_total}"],
         ["precision", "1.00", f"{outcome.precision:.2f}"],
         ["recall", "1.00", f"{outcome.recall:.2f}"],
         ["time", "-", f"{outcome.report.timings.total:.1f}s"]],
        title=title))


def _run_raft(workers: int = 1, shards: int = 1,
              search_order: str | None = None,
              max_paths: int | None = None,
              transport: str = "local", hosts: tuple = (),
              on_worker_loss: str = "fail",
              cache_dir: str | None = None,
              run_dir: str | None = None,
              checkpoint_interval: int = 1,
              resume: bool = False,
             trace_dir: str | None = None,
             progress: bool = False) -> int:
    from repro.bench.experiments import run_raft_accuracy
    from repro.systems.raft import all_trojan_classes, classify_message

    outcome = run_raft_accuracy(workers=workers, shards=shards,
                                search_order=search_order,
                                max_paths=max_paths,
                                transport=transport, hosts=hosts,
                                on_worker_loss=on_worker_loss,
                                cache_dir=cache_dir, run_dir=run_dir,
                                checkpoint_interval=checkpoint_interval,
                                resume=resume, trace_dir=trace_dir,
                                progress=progress)
    _accuracy_table("Raft follower ingress vs seeded ground truth",
                    outcome, len(all_trojan_classes()))
    _report_health(outcome.report)
    for finding in outcome.report.findings:
        print(f"  {classify_message(finding.witness)}  "
              f"wire={finding.witness.hex()}")
    return 0 if outcome.precision == 1.0 and outcome.recall == 1.0 else 1


def _run_tpc(workers: int = 1, shards: int = 1,
             search_order: str | None = None,
             max_paths: int | None = None,
             transport: str = "local", hosts: tuple = (),
             on_worker_loss: str = "fail",
             cache_dir: str | None = None,
             run_dir: str | None = None,
             checkpoint_interval: int = 1,
             resume: bool = False,
             trace_dir: str | None = None,
             progress: bool = False) -> int:
    from repro.bench.experiments import run_tpc_accuracy
    from repro.systems.tpc import all_trojan_classes, classify_message

    outcome = run_tpc_accuracy(workers=workers, shards=shards,
                               search_order=search_order,
                               max_paths=max_paths,
                               transport=transport, hosts=hosts,
                               on_worker_loss=on_worker_loss,
                               cache_dir=cache_dir, run_dir=run_dir,
                               checkpoint_interval=checkpoint_interval,
                               resume=resume, trace_dir=trace_dir,
                               progress=progress)
    _accuracy_table("Two-phase-commit participant vs seeded ground truth",
                    outcome, len(all_trojan_classes()))
    _report_health(outcome.report)
    for finding in outcome.report.findings:
        print(f"  {classify_message(finding.witness)}  "
              f"wire={finding.witness.hex()}")
    return 0 if outcome.precision == 1.0 and outcome.recall == 1.0 else 1


def _run_broadcast(workers: int = 1, shards: int = 1,
                   search_order: str | None = None,
                   max_paths: int | None = None,
                   transport: str = "local", hosts: tuple = (),
                   on_worker_loss: str = "fail",
                   cache_dir: str | None = None,
                   run_dir: str | None = None,
                   checkpoint_interval: int = 1,
                   resume: bool = False,
                   trace_dir: str | None = None,
                   progress: bool = False) -> int:
    from repro.bench.experiments import run_broadcast_accuracy
    from repro.systems.broadcast import (
        all_trojan_classes,
        classify_message,
        run_forged_delivery_demo,
    )

    outcome = run_broadcast_accuracy(workers=workers, shards=shards,
                                     search_order=search_order,
                                     max_paths=max_paths,
                                     transport=transport, hosts=hosts,
                                     on_worker_loss=on_worker_loss,
                                     cache_dir=cache_dir, run_dir=run_dir,
                                     checkpoint_interval=checkpoint_interval,
                                     resume=resume, trace_dir=trace_dir,
                                     progress=progress)
    _accuracy_table("Bracha broadcast node vs seeded ground truth",
                    outcome, len(all_trojan_classes()))
    _report_health(outcome.report)
    for finding in outcome.report.findings:
        print(f"  {classify_message(finding.witness)}  "
              f"wire={finding.witness.hex()}")
    demo = run_forged_delivery_demo()
    print(f"concrete impact: buggy node delivered "
          f"{demo.delivered:#04x} from a forged slot; strict control "
          f"node delivered {demo.control_delivered}")
    return 0 if outcome.precision == 1.0 and outcome.recall == 1.0 else 1


def _report_health(report) -> None:
    """Robustness/observability counters after the experiment tables.

    Surfaces what the run survived (worker deaths, reclaimed prefixes,
    salvaged cache records) and what it leaned on (disk cache, journal
    checkpoints) in one scannable block.
    """
    queries = report.cache_hits + report.cache_misses
    hit_rate = f"{report.cache_hits / queries:.1%}" if queries else "n/a"
    rows = [("solver queries", report.solver_queries),
            ("cache hit rate", hit_rate),
            ("disk cache hits", report.disk_hits),
            ("salvaged records", report.salvaged_records),
            ("worker failures", report.worker_failures),
            ("prefixes reassigned", report.prefixes_reassigned),
            ("recovery seconds", f"{report.recovery_seconds:.2f}"),
            ("journal checkpoints", report.checkpoints_written),
            ("resumed regions", report.resumed_regions)]
    print("run health:")
    for name, value in rows:
        print(f"  {name:20} {value}")


_EXPERIMENTS = {
    "toy": (_run_toy, "the §2.1 working example"),
    "fsp": (_run_fsp, "Table 1 accuracy run on FSP"),
    "fsp-wildcard": (_run_fsp_wildcard, "§6.3 wildcard experiment"),
    "pbft": (_run_pbft, "MAC-attack analysis + cluster impact"),
    "raft": (_run_raft, "Raft follower ingress vs 9 seeded Trojan classes"),
    "tpc": (_run_tpc, "two-phase commit: ack-without-WAL + empty-op prepare"),
    "broadcast": (_run_broadcast,
                  "Bracha broadcast: forged-sender SEND + thin-quorum READY"),
}


def _run_worker(argv: list[str]) -> int:
    """The ``worker`` subcommand: a shard worker daemon for TCP transport."""
    parser = argparse.ArgumentParser(
        prog="python -m repro worker",
        description="Run a shard worker daemon that serves TCP-transport "
                    "exploration sessions. Point a coordinator at it with "
                    "--transport tcp --hosts HOST:PORT[,...]. Prints "
                    "'READY <host> <port>' once listening (port 0 picks "
                    "an ephemeral port).")
    parser.add_argument("--listen", required=True, metavar="HOST:PORT",
                        help="address to listen on, e.g. 0.0.0.0:9100 "
                             "or 127.0.0.1:0")
    parser.add_argument("--max-sessions", type=int, default=None,
                        help="exit after serving this many sessions "
                             "(default: serve forever)")
    args = parser.parse_args(argv)
    from repro.explore.tcp import serve_worker

    serve_worker(args.listen, max_sessions=args.max_sessions,
                 ready_stream=sys.stdout)
    return 0


def _run_cache(argv: list[str]) -> int:
    """The ``cache`` subcommand: inspect/maintain a disk query cache."""
    parser = argparse.ArgumentParser(
        prog="python -m repro cache",
        description="Inspect or maintain a persistent query-cache "
                    "directory (the --cache-dir of analysis runs). "
                    "'stats' prints segment/record counts, 'verify' "
                    "replays every segment and reports salvage/drop "
                    "counts (exit 1 when records were lost), 'compact' "
                    "rewrites the segments into one (model records "
                    "subsume their feasibility records), 'clear' deletes "
                    "all segments.")
    parser.add_argument("action",
                        choices=["stats", "verify", "compact", "clear"],
                        help="what to do with the cache directory")
    parser.add_argument("--cache-dir", required=True, metavar="DIR",
                        help="the cache directory analysis runs wrote "
                             "with --cache-dir")
    args = parser.parse_args(argv)
    from repro.solver.diskcache import DiskCacheStore

    store = DiskCacheStore(args.cache_dir)
    if args.action == "stats":
        for name, value in store.stats().items():
            print(f"{name:18} {value}")
        return 0
    if args.action == "verify":
        report = store.verify()
        print(f"segments scanned   {report.segments_scanned}")
        print(f"segments damaged   {report.segments_damaged}")
        print(f"records loaded     {report.loaded_records}")
        print(f"records salvaged   {report.salvaged_records}")
        print(f"records dropped    {report.dropped_records}")
        if report.truncated:
            print("load truncated at the in-memory entry bound")
        for warning in report.warnings:
            print(f"warning: {warning}")
        return 1 if report.dropped_records else 0
    if args.action == "compact":
        segments, kept = store.compact()
        print(f"compacted {segments} segment(s) into "
              f"{len(store.segment_paths())}; {kept} record(s) kept")
        return 0
    removed = store.clear()
    print(f"removed {removed} segment(s)")
    return 0


def _run_trace(argv: list[str]) -> int:
    """The ``trace`` subcommand: inspect/convert a recorded trace."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Inspect a trace recorded with --trace-dir. "
                    "'summarize' prints per-span statistics and the "
                    "metrics trailer; 'export' converts the trace to "
                    "Chrome trace-event JSON (open in Perfetto or "
                    "chrome://tracing). A damaged trace file salvages "
                    "its valid prefix, like a damaged cache segment.")
    parser.add_argument("action", choices=["summarize", "export"],
                        help="print span statistics, or convert to "
                             "Chrome trace-event JSON")
    parser.add_argument("path", metavar="TRACE",
                        help="the trace.jsonl a run wrote under "
                             "--trace-dir (the directory itself also "
                             "works)")
    parser.add_argument("-o", "--output", default=None, metavar="FILE",
                        help="output file for 'export' (default: the "
                             "trace path with a .chrome.json suffix)")
    args = parser.parse_args(argv)
    import json
    from pathlib import Path

    from repro.obs.trace import (
        TRACE_FILE_NAME,
        format_summary,
        read_trace,
        summarize,
        to_chrome_trace,
    )

    path = Path(args.path)
    if path.is_dir():
        path = path / TRACE_FILE_NAME
    try:
        trace = read_trace(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {path}: {exc}", file=sys.stderr)
        return 1
    if args.action == "summarize":
        print(format_summary(summarize(trace.records),
                             damaged=trace.damaged, reason=trace.reason))
        return 0
    if trace.damaged:
        # A torn tail (crashed run, interrupted copy) still leaves a
        # usable prefix; export it rather than fail, but say so.
        print(f"warning: trace {path} is damaged ({trace.reason}); "
              f"exporting the salvaged prefix of "
              f"{len(trace.records)} record(s)", file=sys.stderr)
    chrome = to_chrome_trace(trace.records)
    out = Path(args.output) if args.output else path.with_suffix(
        ".chrome.json")
    out.write_text(json.dumps(chrome))
    print(f"wrote {len(chrome['traceEvents'])} event(s) to {out}")
    return 0


def _run_corpus(argv: list[str]) -> int:
    """The ``corpus`` subcommand: scenario-matrix generation + scoring."""
    parser = argparse.ArgumentParser(
        prog="python -m repro corpus",
        description="Generate a corpus of randomized seeded-bug system "
                    "variants from the registered templates and score a "
                    "full Achilles hunt on each against the variant's "
                    "derived ground truth. 'run' generates and scores "
                    "(exit 0 only when every variant reaches precision "
                    "== recall == 1.0); 'report' re-renders a JSON file "
                    "a previous run wrote with --out. Every variant is "
                    "reproducible from its printed TEMPLATE:SEED token "
                    "alone via --variant.")
    parser.add_argument("action", choices=["run", "report"],
                        help="run a corpus, or re-render a saved report")
    parser.add_argument("path", nargs="?", metavar="REPORT",
                        help="for 'report': the JSON file a run wrote "
                             "with --out")
    parser.add_argument("--variants", type=int, default=12, metavar="N",
                        help="how many systems to generate (default: 12, "
                             "round-robin across the templates)")
    parser.add_argument("--corpus-seed", type=int, default=0, metavar="S",
                        help="run-level seed every variant derives from "
                             "(default: 0); recorded in the report so "
                             "any row reproduces from print-out alone")
    parser.add_argument("--templates", default="", metavar="NAME[,...]",
                        help="template subset to draw from (default: "
                             "all registered templates)")
    parser.add_argument("--variant", action="append", default=[],
                        metavar="TEMPLATE:SEED",
                        help="skip generation and score exactly this "
                             "variant token (repeatable) — the "
                             "reproduce-one-failing-row path")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="also write the deterministic JSON report "
                             "here (byte-identical across runs of the "
                             "same seed)")
    parser.add_argument("--workers", type=int, default=1,
                        help="solver-service worker processes per hunt")
    parser.add_argument("--shards", type=int, default=1,
                        help="exploration shard processes per hunt")
    parser.add_argument("--transport", choices=["local", "tcp"],
                        default="local",
                        help="where shard workers live")
    parser.add_argument("--hosts", default="", metavar="HOST:PORT[,...]",
                        help="worker daemon addresses for --transport tcp")
    parser.add_argument("--on-worker-loss", choices=["fail", "recover"],
                        default="fail",
                        help="policy when a shard worker dies mid-run")
    parser.add_argument("--search-order", choices=["dfs", "bfs"],
                        default=None, help="exploration worklist order")
    parser.add_argument("--max-paths", type=int, default=None,
                        help="cap on completed paths per exploration")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent query cache shared by all the "
                             "corpus hunts")
    parser.add_argument("--progress", action="store_true",
                        help="live fleet status on stderr per hunt")
    args = parser.parse_args(argv)
    import json
    from pathlib import Path

    from repro.corpus import corpus_payload, dump_payload, render_payload

    if args.action == "report":
        if not args.path:
            parser.error("'report' needs the JSON file a corpus run "
                         "wrote with --out")
        try:
            payload = json.loads(Path(args.path).read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot read corpus report {args.path}: {exc}",
                  file=sys.stderr)
            return 1
        print(render_payload(payload))
        return 0 if payload.get("all_perfect") else 1

    from repro.bench.experiments import run_corpus
    from repro.errors import ReproError

    templates = tuple(t.strip() for t in args.templates.split(",")
                      if t.strip())
    hosts = tuple(h.strip() for h in args.hosts.split(",") if h.strip())
    try:
        outcome = run_corpus(
            corpus_seed=args.corpus_seed, variants=args.variants,
            templates=templates or None, only=tuple(args.variant),
            workers=args.workers, shards=args.shards,
            search_order=args.search_order, max_paths=args.max_paths,
            transport=args.transport, hosts=hosts,
            on_worker_loss=args.on_worker_loss,
            cache_dir=args.cache_dir, progress=args.progress)
    except ReproError as exc:
        print(f"corpus error: {exc}", file=sys.stderr)
        return 2
    payload = corpus_payload(outcome)
    seconds = {result.variant.token: result.outcome.report.timings.total
               for result in outcome.results}
    print(render_payload(payload, seconds))
    if args.out:
        Path(args.out).write_text(dump_payload(payload))
        print(f"wrote corpus report to {args.out}")
    return 0 if outcome.perfect else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # The worker daemon has its own flag set (and runs forever), so it
    # branches off before the experiment parser.
    if argv[:1] == ["worker"]:
        return _run_worker(argv[1:])
    if argv[:1] == ["cache"]:
        return _run_cache(argv[1:])
    if argv[:1] == ["trace"]:
        return _run_trace(argv[1:])
    if argv[:1] == ["corpus"]:
        return _run_corpus(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run Achilles reproduction experiments "
                    "('python -m repro worker --help' for the shard "
                    "worker daemon, 'python -m repro cache --help' for "
                    "the disk-cache maintenance tool, 'python -m repro "
                    "trace --help' for the trace inspector, 'python -m "
                    "repro corpus --help' for the scenario-matrix "
                    "corpus).")
    parser.add_argument("experiment",
                        choices=sorted(_EXPERIMENTS) + ["list", "worker",
                                                        "cache", "trace",
                                                        "corpus"],
                        help="experiment to run, 'list', 'worker' (shard "
                             "worker daemon), 'cache' (disk-cache "
                             "maintenance), 'trace' (trace inspector), "
                             "or 'corpus' (scenario-matrix corpus)")
    parser.add_argument("--workers", type=int, default=1,
                        help="solver-service worker processes (default: 1, "
                             "fully serial; findings are identical at any "
                             "worker count)")
    parser.add_argument("--shards", type=int, default=1,
                        help="exploration shard processes for the server "
                             "search (default: 1, one in-process walk; "
                             "findings are identical at any shard count)")
    parser.add_argument("--transport", choices=["local", "tcp"],
                        default="local",
                        help="where shard workers live (default: local "
                             "processes; tcp drives `repro worker` daemons "
                             "named by --hosts)")
    parser.add_argument("--hosts", default="", metavar="HOST:PORT[,...]",
                        help="comma-separated worker daemon addresses for "
                             "--transport tcp; shards round-robin over them")
    parser.add_argument("--on-worker-loss", choices=["fail", "recover"],
                        default="fail",
                        help="policy when a shard worker dies silently "
                             "mid-run (default: fail loudly naming the "
                             "lost assignment; recover reassigns it to a "
                             "respawned or surviving worker — findings "
                             "are identical either way)")
    parser.add_argument("--search-order", choices=["dfs", "bfs"],
                        default=None,
                        help="exploration worklist order (default: the "
                             "engine default, dfs)")
    parser.add_argument("--max-paths", type=int, default=None,
                        help="cap on completed paths per exploration "
                             "(default: the engine default)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist the canonical query cache to this "
                             "directory and pre-load it on start; a warm "
                             "re-run only re-solves what changed, and "
                             "corrupted cache files degrade to a colder "
                             "cache, never an error")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="journal sharded-search progress to "
                             "DIR/journal.wal (needs --shards >= 2) so a "
                             "killed run can be continued with --resume")
    parser.add_argument("--checkpoint-interval", type=int, default=1,
                        metavar="N",
                        help="completed shard assignments per durable "
                             "(fsync'd) journal checkpoint (default: 1)")
    parser.add_argument("--resume", default=None, metavar="RUN_DIR",
                        help="continue the interrupted run journaled in "
                             "RUN_DIR from its last checkpoint; findings "
                             "are byte-identical to an uninterrupted run")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="record structured spans (coordinator, "
                             "workers, every solver layer) and write the "
                             "merged trace to DIR/trace.jsonl; inspect "
                             "with 'python -m repro trace'")
    parser.add_argument("--progress", action="store_true",
                        help="print a live one-line fleet status to "
                             "stderr while the search runs")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise repro logger verbosity (repeatable: "
                             "-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only log errors (hides recovery and cache "
                             "salvage warnings)")
    args = parser.parse_args(argv)
    from repro.obs.log import configure

    configure(verbosity=-1 if args.quiet else args.verbose)
    if args.experiment == "list":
        for name, (_, description) in sorted(_EXPERIMENTS.items()):
            print(f"{name:14} {description}")
        print("worker         shard worker daemon "
              "(python -m repro worker --help)")
        print("cache          disk-cache maintenance "
              "(python -m repro cache --help)")
        print("trace          trace inspector/exporter "
              "(python -m repro trace --help)")
        print("corpus         scenario-matrix corpus runner "
              "(python -m repro corpus --help)")
        return 0
    run_dir = args.run_dir
    resume = False
    if args.resume is not None:
        if run_dir is not None and run_dir != args.resume:
            parser.error("--resume RUN_DIR already names the run "
                         "directory; drop the conflicting --run-dir")
        run_dir = args.resume
        resume = True
    hosts = tuple(h.strip() for h in args.hosts.split(",") if h.strip())
    runner, _ = _EXPERIMENTS[args.experiment]
    return runner(workers=args.workers, shards=args.shards,
                  search_order=args.search_order, max_paths=args.max_paths,
                  transport=args.transport, hosts=hosts,
                  on_worker_loss=args.on_worker_loss,
                  cache_dir=args.cache_dir, run_dir=run_dir,
                  checkpoint_interval=args.checkpoint_interval,
                  resume=resume, trace_dir=args.trace_dir,
                  progress=args.progress)


if __name__ == "__main__":
    sys.exit(main())
