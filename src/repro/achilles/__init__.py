"""Achilles: find Trojan messages in distributed system implementations.

Trojan messages are messages a correct *server* accepts that no correct
*client* can generate (Banabic, Candea, Guerraoui — ASPLOS 2014). This
package implements the paper's two-phase analysis:

1. :mod:`~repro.achilles.client_analysis` symbolically executes the
   clients and extracts the client predicate ``PC``;
2. :mod:`~repro.achilles.server_analysis` symbolically executes the
   server while incrementally searching for messages satisfying
   ``PS ∧ ¬PC``, using the under-approximate
   :mod:`~repro.achilles.negate` operator and the
   :mod:`~repro.achilles.difference` matrix to keep solver queries small.

:class:`Achilles` in :mod:`~repro.achilles.core` ties the phases together.
"""

from repro.achilles.client_analysis import (
    ClientAnalysisStats,
    ClientPredicateSet,
    extract_client_predicates,
    preprocess,
)
from repro.achilles.core import Achilles, AchillesConfig
from repro.achilles.difference import DifferentFrom
from repro.achilles.localstate import (
    capture_sent_message,
    replay_into,
    with_concrete_state,
)
from repro.achilles.mask import FieldMask
from repro.achilles.negate import (
    NegationDisjunct,
    PredicateNegation,
    negate_field,
    negate_predicate,
)
from repro.achilles.predicates import ClientPathPredicate
from repro.achilles.refine import (
    RefinementOutcome,
    refine_findings,
    witness_is_generable,
)
from repro.achilles.report import AchillesReport, PhaseTimings, TrojanFinding
from repro.achilles.server_analysis import (
    OptimizationFlags,
    TrojanSearchObserver,
    a_posteriori_search,
    search_server,
)

__all__ = [
    "Achilles",
    "AchillesConfig",
    "AchillesReport",
    "ClientAnalysisStats",
    "ClientPathPredicate",
    "ClientPredicateSet",
    "DifferentFrom",
    "FieldMask",
    "NegationDisjunct",
    "OptimizationFlags",
    "PhaseTimings",
    "PredicateNegation",
    "RefinementOutcome",
    "TrojanFinding",
    "TrojanSearchObserver",
    "a_posteriori_search",
    "capture_sent_message",
    "extract_client_predicates",
    "negate_field",
    "negate_predicate",
    "preprocess",
    "refine_findings",
    "replay_into",
    "search_server",
    "with_concrete_state",
    "witness_is_generable",
]
