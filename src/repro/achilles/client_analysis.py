"""Phase 1: extract the client predicate ``PC`` (§3.1).

Clients run in a symbolic environment — every local input they read is
replaced by symbolic data — and every message they put on the wire is
captured together with the path constraints under which it was sent. Each
captured ``(payload, constraints)`` pair becomes one
:class:`~repro.achilles.predicates.ClientPathPredicate`.

The pre-processing step (§3) then de-duplicates structurally identical
predicates, precomputes the per-predicate negations, and builds the
``differentFrom`` matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.achilles.difference import DifferentFrom
from repro.achilles.mask import FieldMask
from repro.achilles.negate import PredicateNegation, negate_predicate
from repro.achilles.predicates import ClientPathPredicate
from repro.errors import AchillesError
from repro.messages.layout import MessageLayout
from repro.solver.ast import Expr
from repro.solver.cache import QueryCache
from repro.solver.service import SolverService
from repro.solver.solver import Solver
from repro.symex.engine import Engine, EngineConfig, NodeProgram, client_verdict


@dataclass
class ClientAnalysisStats:
    """Counters for the PC extraction + pre-processing phases."""

    clients_analyzed: int = 0
    paths_explored: int = 0
    messages_captured: int = 0
    duplicates_removed: int = 0
    extraction_seconds: float = 0.0
    preprocess_seconds: float = 0.0


@dataclass
class ClientPredicateSet:
    """``PC`` plus everything precomputed about it.

    Attributes:
        layout: shared wire layout.
        predicates: de-duplicated client path predicates; indices are
            contiguous and match ``predicates[i].index == i``.
        negations: ``negate(pathC_i)`` per predicate (§3.2), precomputed.
        different_from: the §3.3 matrix.
        stats: extraction/pre-processing counters.
    """

    layout: MessageLayout
    predicates: list[ClientPathPredicate]
    negations: list[PredicateNegation]
    different_from: DifferentFrom
    stats: ClientAnalysisStats = field(default_factory=ClientAnalysisStats)

    def __len__(self) -> int:
        return len(self.predicates)


def extract_client_predicates(
        clients: dict[str, NodeProgram] | list[NodeProgram],
        layout: MessageLayout,
        engine_config: EngineConfig | None = None,
        destination: str | None = None,
        query_cache: QueryCache | None = None,
        ) -> tuple[list[ClientPathPredicate], ClientAnalysisStats]:
    """Symbolically execute every client and capture its sent messages.

    Args:
        clients: client node programs, optionally labeled by name.
        layout: wire layout; captured messages must match its size.
        engine_config: exploration limits (defaults are fine for the
            bounded evaluation workloads).
        destination: when given, only messages sent to this node name are
            captured (clients may also talk to other peers).
        query_cache: shared canonical query cache; every per-client engine
            uses it, and the orchestrator passes the same instance to the
            phase-2 server search so answers carry across phases.

    Returns:
        De-duplicated predicates with contiguous indices, plus stats.
    """
    if isinstance(clients, list):
        clients = {f"client{i}": p for i, p in enumerate(clients)}
    config = replace(engine_config or EngineConfig(),
                     default_verdict=client_verdict)
    query_cache = QueryCache() if query_cache is None else query_cache
    stats = ClientAnalysisStats()
    started = time.perf_counter()

    raw: list[ClientPathPredicate] = []
    for name, program in clients.items():
        engine = Engine(config, query_cache=query_cache)
        result = engine.explore(program)
        stats.clients_analyzed += 1
        stats.paths_explored += len(result.paths)
        for path in result.paths:
            for sent in path.sends:
                if destination is not None and sent.destination != destination:
                    continue
                if len(sent.payload) != layout.total_size:
                    raise AchillesError(
                        f"client {name!r} sent a {len(sent.payload)}-byte "
                        f"message but layout {layout.name!r} is "
                        f"{layout.total_size} bytes")
                stats.messages_captured += 1
                raw.append(ClientPathPredicate(
                    index=len(raw), client=name,
                    source_path_id=path.path_id, layout=layout,
                    payload=sent.payload,
                    constraints=path.constraints))

    unique = _dedupe(raw)
    stats.duplicates_removed = len(raw) - len(unique)
    stats.extraction_seconds = time.perf_counter() - started
    return unique, stats


def preprocess(predicates: list[ClientPathPredicate],
               layout: MessageLayout,
               server_msg: tuple[Expr, ...],
               mask: FieldMask | None = None,
               solver: Solver | None = None,
               stats: ClientAnalysisStats | None = None,
               build_difference: bool = True,
               service: SolverService | None = None) -> ClientPredicateSet:
    """Pre-compute negations and the ``differentFrom`` matrix (§3, §3.3).

    All pre-processing probes flow through one
    :class:`~repro.solver.service.SolverService`: the per-field negation
    overlap checks and the pairwise matrix entries are independent
    queries, batched per predicate. On the default serial backend both
    families share the service's single incremental frame stack (the
    ``pred.combined(server_msg)`` prefix propagates once per predicate,
    whichever family probes it first); with ``workers > 1`` the batches
    shard across the pool.

    The surviving per-field negation expressions computed for
    ``negations`` are handed to :class:`DifferentFrom` directly, so the
    matrix no longer re-runs (and re-verifies) the negate operator.
    """
    mask = mask or FieldMask.none()
    mask.validate(layout)
    solver = solver or Solver()
    service = service or SolverService(solver=solver)
    stats = stats or ClientAnalysisStats()
    started = time.perf_counter()

    negations = [negate_predicate(p, server_msg, mask, solver,
                                  service=service)
                 for p in predicates]
    if build_difference:
        field_negations: dict[tuple[int, str], Expr | None] = {
            (pred.index, field): None
            for pred in predicates for field in mask.visible_fields(layout)}
        for negation in negations:
            for disjunct in negation.disjuncts:
                field_negations[(negation.pred_index, disjunct.field)] = (
                    disjunct.expr)
        different = DifferentFrom(predicates, server_msg, mask, solver,
                                  service=service,
                                  field_negations=field_negations)
    else:
        different = DifferentFrom([], server_msg, mask, solver,
                                  service=service)
    stats.preprocess_seconds = time.perf_counter() - started
    return ClientPredicateSet(layout, predicates, negations, different, stats)


def _dedupe(predicates: list[ClientPathPredicate]) -> list[ClientPathPredicate]:
    """Drop structurally identical predicates, reindexing the survivors."""
    seen: set[tuple] = set()
    unique: list[ClientPathPredicate] = []
    for pred in predicates:
        key = pred.signature()
        if key in seen:
            continue
        seen.add(key)
        unique.append(ClientPathPredicate(
            index=len(unique), client=pred.client,
            source_path_id=pred.source_path_id, layout=pred.layout,
            payload=pred.payload, constraints=pred.constraints))
    return unique
