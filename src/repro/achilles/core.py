"""The Achilles orchestrator: two phases plus pre-processing (§3).

Usage::

    config = AchillesConfig(layout=FSP_LAYOUT,
                            mask=FieldMask.hide("sum", "bb_key"))
    achilles = Achilles(config)
    report = achilles.run(clients={"fget": fget_client, ...},
                          server=fsp_server)
    for finding in report.findings:
        print(finding.witness_fields(FSP_LAYOUT))

``run`` executes phase 1 (client predicate extraction), the pre-processing
step (de-duplication, negations, ``differentFrom``), and phase 2 (server
exploration with incremental Trojan search), reporting the wall-clock
split the paper quotes in §6.2.

Both phases share one canonical :class:`~repro.solver.cache.QueryCache`
(held on the :class:`Achilles` instance as ``query_cache``): feasibility
answers computed while exploring the clients are reused verbatim during
the server search whenever the canonicalized constraint sets coincide.
The cache's hit/miss counters are surfaced on the resulting
:class:`~repro.achilles.report.AchillesReport` (``cache_hits``,
``cache_misses``, ``cache_hit_rate``).

Under the cache, each phase's engine answers misses through an
incremental assertion stack
(:class:`~repro.solver.incremental.IncrementalSolver`): the full solver
pipeline is canonicalize → shared query cache (identical queries) →
per-engine frame stack (prefix-sharing queries reuse interval-propagation
fixpoints; ``frames_reused`` / ``propagation_seconds`` on the report) →
from-scratch search for whatever remains.

With ``AchillesConfig.workers > 1`` the run also holds one
:class:`~repro.solver.service.SolverService` worker pool (shared across
pre-processing and the server search), and the embarrassingly parallel
query batches — the ``differentFrom`` matrix, the negation overlap
probes and the per-path predicate re-checks — shard across it. Findings
are byte-identical at any worker count; use the instance as a context
manager (or call :meth:`Achilles.close`) to shut the pool down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.achilles.client_analysis import (
    ClientPredicateSet,
    extract_client_predicates,
    preprocess,
)
from repro.achilles.mask import FieldMask
from repro.achilles.report import AchillesReport
from repro.achilles.server_analysis import (
    OptimizationFlags,
    ServerProgram,
    search_server,
)
from repro.errors import AchillesError
from repro.messages.layout import MessageLayout
from repro.messages.symbolic import message_vars
from repro.solver.cache import QueryCache
from repro.solver.service import SolverService
from repro.solver.solver import Solver
from repro.symex.engine import EngineConfig, NodeProgram


@dataclass
class AchillesConfig:
    """Configuration of one Achilles run.

    Attributes:
        layout: wire layout shared by client and server.
        mask: fields hidden from the Trojan check (§5.2).
        client_engine / server_engine: exploration limits per phase.
        optimizations: the §3.3 switches (all on by default).
        destination: when set, only client messages sent to this node
            name enter ``PC``.
        msg_name: base name of the server's symbolic message variables.
        workers: solver-service worker count. 1 (the default) keeps every
            query in-process — exactly the classic serial pipeline; >1
            dispatches the embarrassingly parallel batches (the
            ``differentFrom`` matrix, the negation overlap probes and the
            per-path predicate re-checks) across a ``multiprocessing``
            pool. Findings are byte-identical at any worker count.
        shards: phase-2 exploration shard count. 1 (the default) walks
            the server's path tree in one process; >1 partitions the
            tree by decision prefixes across that many worker processes
            (:mod:`repro.explore`) with coordinator-brokered stealing.
            Findings are byte-identical at any shard count. ``workers``
            and ``shards`` compose: the former parallelizes solver
            *batches* (pre-processing, and the seed phase's probes), the
            latter the *walk* itself.
        transport: where the shard workers live — ``"local"`` (the
            default: ``multiprocessing`` processes on this machine) or
            ``"tcp"`` (``python -m repro worker`` daemons reached over
            sockets; requires ``hosts``). Findings are byte-identical
            on either transport.
        hosts: ``"host:port"`` addresses of running ``repro worker``
            daemons, one shard session per address round-robin (so 4
            shards against 2 hosts run 2 sessions on each). Extra
            addresses beyond the shard count serve as spares: with
            ``on_worker_loss="recover"`` a lost session respawns against
            the next listed host.
        on_worker_loss: what a sharded search does when a worker dies
            silently mid-run (SIGKILL, lost host). ``"fail"`` (the
            default) raises an error naming the dead worker and the
            decision prefixes it held; ``"recover"`` discards the dead
            worker's partial results, reclaims its prefixes, and re-runs
            them on a respawned replacement or the surviving workers —
            findings stay byte-identical, the fault costs only wall
            clock (reported as ``AchillesReport.recovery_seconds``).
        max_worker_retries: with ``on_worker_loss="recover"``, respawn
            attempts per worker slot before that slot is written off and
            its work spread over the survivors.
    """

    layout: MessageLayout
    mask: FieldMask = field(default_factory=FieldMask.none)
    client_engine: EngineConfig = field(default_factory=EngineConfig)
    server_engine: EngineConfig = field(default_factory=EngineConfig)
    optimizations: OptimizationFlags = field(default_factory=OptimizationFlags)
    destination: str | None = None
    msg_name: str = "msg"
    workers: int = 1
    shards: int = 1
    transport: object = "local"
    hosts: tuple[str, ...] = ()
    on_worker_loss: str = "fail"
    max_worker_retries: int = 2

    def __post_init__(self) -> None:
        # Validate here, not at pool start: a bad count otherwise
        # surfaces deep inside multiprocessing as a confusing failure.
        from repro.explore.transport import Transport

        if self.workers < 1:
            raise AchillesError(
                f"AchillesConfig.workers must be >= 1, got {self.workers} "
                "(1 = serial; N > 1 = N solver worker processes)")
        if self.shards < 1:
            raise AchillesError(
                f"AchillesConfig.shards must be >= 1, got {self.shards} "
                "(1 = in-process exploration; N > 1 = N exploration "
                "shard processes)")
        self.hosts = tuple(self.hosts)
        if isinstance(self.transport, Transport):
            if self.hosts:
                raise AchillesError(
                    "a Transport instance carries its own hosts; "
                    "AchillesConfig.hosts must stay empty with one")
        elif self.transport not in ("local", "tcp"):
            raise AchillesError(
                f"AchillesConfig.transport must be 'local', 'tcp', or a "
                f"Transport instance, got {self.transport!r}")
        elif self.transport == "tcp" and not self.hosts:
            raise AchillesError(
                "AchillesConfig.transport='tcp' needs hosts: 'host:port' "
                "addresses of running `python -m repro worker` daemons")
        elif self.transport == "local" and self.hosts:
            raise AchillesError(
                "AchillesConfig.hosts is only meaningful with "
                "transport='tcp'")
        if self.on_worker_loss not in ("fail", "recover"):
            raise AchillesError(
                f"AchillesConfig.on_worker_loss must be 'fail' or "
                f"'recover', got {self.on_worker_loss!r}")
        if self.max_worker_retries < 0:
            raise AchillesError(
                f"AchillesConfig.max_worker_retries must be >= 0, got "
                f"{self.max_worker_retries}")


class Achilles:
    """Finds Trojan messages: accepted by the server, ungenerable by clients."""

    def __init__(self, config: AchillesConfig):
        config.mask.validate(config.layout)
        self.config = config
        self.server_msg = message_vars(config.layout, config.msg_name)
        # One canonical query cache for the whole run: phase 1 engines and
        # the phase 2 search all consult (and fill) the same instance.
        self.query_cache = QueryCache()
        self._service: SolverService | None = None

    # -- solver service -----------------------------------------------------------

    @property
    def service(self) -> SolverService:
        """The run's shared solver service (lazily started).

        One instance spans pre-processing and the server search, so with
        ``workers > 1`` the pool is started once and its per-worker caches
        and frame stacks stay warm across phases.
        """
        if self._service is None:
            self._service = SolverService(workers=self.config.workers)
        return self._service

    def close(self) -> None:
        """Shut the worker pool down (no-op for serial runs)."""
        if self._service is not None:
            self._service.close()
            self._service = None

    def __enter__(self) -> "Achilles":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- individual phases --------------------------------------------------------

    def extract_clients(self,
                        clients: dict[str, NodeProgram] | list[NodeProgram],
                        ) -> ClientPredicateSet:
        """Phase 1 + pre-processing: build ``PC`` ready for the search."""
        predicates, stats = extract_client_predicates(
            clients, self.config.layout, self.config.client_engine,
            self.config.destination, query_cache=self.query_cache)
        if not predicates:
            raise AchillesError(
                "no client messages captured; check the destination filter "
                "and that the clients reach ctx.send()")
        return preprocess(
            predicates, self.config.layout, self.server_msg,
            self.config.mask, Solver(), stats,
            build_difference=self.config.optimizations.use_different_from,
            service=self.service)

    def search(self, server: ServerProgram,
               clients: ClientPredicateSet) -> AchillesReport:
        """Phase 2: incremental Trojan search over the server."""
        report, _ = search_server(
            server, clients, self.server_msg, self.config.server_engine,
            self.config.optimizations, self.config.msg_name,
            query_cache=self.query_cache, service=self.service,
            shards=self.config.shards, transport=self.config.transport,
            hosts=self.config.hosts,
            on_worker_loss=self.config.on_worker_loss,
            max_worker_retries=self.config.max_worker_retries)
        report.workers = self.config.workers
        report.timings.client_extraction = clients.stats.extraction_seconds
        report.timings.preprocessing = clients.stats.preprocess_seconds
        return report

    # -- one-call entry point --------------------------------------------------------

    def run(self, clients: dict[str, NodeProgram] | list[NodeProgram],
            server: ServerProgram) -> AchillesReport:
        """Full pipeline: extract ``PC``, preprocess, search the server."""
        predicate_set = self.extract_clients(clients)
        return self.search(server, predicate_set)
