"""The Achilles orchestrator: two phases plus pre-processing (§3).

Usage::

    config = AchillesConfig(layout=FSP_LAYOUT,
                            mask=FieldMask.hide("sum", "bb_key"))
    achilles = Achilles(config)
    report = achilles.run(clients={"fget": fget_client, ...},
                          server=fsp_server)
    for finding in report.findings:
        print(finding.witness_fields(FSP_LAYOUT))

``run`` executes phase 1 (client predicate extraction), the pre-processing
step (de-duplication, negations, ``differentFrom``), and phase 2 (server
exploration with incremental Trojan search), reporting the wall-clock
split the paper quotes in §6.2.

Both phases share one canonical :class:`~repro.solver.cache.QueryCache`
(held on the :class:`Achilles` instance as ``query_cache``): feasibility
answers computed while exploring the clients are reused verbatim during
the server search whenever the canonicalized constraint sets coincide.
The cache's hit/miss counters are surfaced on the resulting
:class:`~repro.achilles.report.AchillesReport` (``cache_hits``,
``cache_misses``, ``cache_hit_rate``).

Under the cache, each phase's engine answers misses through an
incremental assertion stack
(:class:`~repro.solver.incremental.IncrementalSolver`): the full solver
pipeline is canonicalize → shared query cache (identical queries) →
per-engine frame stack (prefix-sharing queries reuse interval-propagation
fixpoints; ``frames_reused`` / ``propagation_seconds`` on the report) →
from-scratch search for whatever remains.

With ``AchillesConfig.workers > 1`` the run also holds one
:class:`~repro.solver.service.SolverService` worker pool (shared across
pre-processing and the server search), and the embarrassingly parallel
query batches — the ``differentFrom`` matrix, the negation overlap
probes and the per-path predicate re-checks — shard across it. Findings
are byte-identical at any worker count; use the instance as a context
manager (or call :meth:`Achilles.close`) to shut the pool down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.achilles.client_analysis import (
    ClientPredicateSet,
    extract_client_predicates,
    preprocess,
)
from repro.achilles.mask import FieldMask
from repro.achilles.report import AchillesReport
from repro.achilles.server_analysis import (
    OptimizationFlags,
    ServerProgram,
    search_server,
)
from repro.errors import AchillesError
from repro.messages.layout import MessageLayout
from repro.messages.symbolic import message_vars
from repro.solver.cache import QueryCache
from repro.solver.service import SolverService
from repro.solver.solver import Solver
from repro.symex.engine import EngineConfig, NodeProgram


@dataclass
class AchillesConfig:
    """Configuration of one Achilles run.

    Attributes:
        layout: wire layout shared by client and server.
        mask: fields hidden from the Trojan check (§5.2).
        client_engine / server_engine: exploration limits per phase.
        optimizations: the §3.3 switches (all on by default).
        destination: when set, only client messages sent to this node
            name enter ``PC``.
        msg_name: base name of the server's symbolic message variables.
        workers: solver-service worker count. 1 (the default) keeps every
            query in-process — exactly the classic serial pipeline; >1
            dispatches the embarrassingly parallel batches (the
            ``differentFrom`` matrix, the negation overlap probes and the
            per-path predicate re-checks) across a ``multiprocessing``
            pool. Findings are byte-identical at any worker count.
        shards: phase-2 exploration shard count. 1 (the default) walks
            the server's path tree in one process; >1 partitions the
            tree by decision prefixes across that many worker processes
            (:mod:`repro.explore`) with coordinator-brokered stealing.
            Findings are byte-identical at any shard count. ``workers``
            and ``shards`` compose: the former parallelizes solver
            *batches* (pre-processing, and the seed phase's probes), the
            latter the *walk* itself.
        transport: where the shard workers live — ``"local"`` (the
            default: ``multiprocessing`` processes on this machine) or
            ``"tcp"`` (``python -m repro worker`` daemons reached over
            sockets; requires ``hosts``). Findings are byte-identical
            on either transport.
        hosts: ``"host:port"`` addresses of running ``repro worker``
            daemons, one shard session per address round-robin (so 4
            shards against 2 hosts run 2 sessions on each). Extra
            addresses beyond the shard count serve as spares: with
            ``on_worker_loss="recover"`` a lost session respawns against
            the next listed host.
        on_worker_loss: what a sharded search does when a worker dies
            silently mid-run (SIGKILL, lost host). ``"fail"`` (the
            default) raises an error naming the dead worker and the
            decision prefixes it held; ``"recover"`` discards the dead
            worker's partial results, reclaims its prefixes, and re-runs
            them on a respawned replacement or the surviving workers —
            findings stay byte-identical, the fault costs only wall
            clock (reported as ``AchillesReport.recovery_seconds``).
        max_worker_retries: with ``on_worker_loss="recover"``, respawn
            attempts per worker slot before that slot is written off and
            its work spread over the survivors.
        cache_dir: when set, persist the canonical query cache to this
            directory (:class:`~repro.solver.diskcache.DiskCacheStore`)
            and pre-load whatever a previous run left there: feasibility
            and model answers are content-addressed on process-stable
            structural fingerprints, so a warm re-analysis only pays for
            the queries that changed. Corrupted segments degrade to a
            partially cold cache with a warning — never an error, never
            a wrong answer.
        run_dir: when set (sharded runs only), journal completed
            assignments to ``run_dir/journal.wal`` so a killed
            coordinator can be resumed with ``resume=True``.
        checkpoint_interval: completed shard assignments per durable
            (fsync'd) journal checkpoint; 1 (the default) checkpoints
            every completion.
        resume: replay ``run_dir``'s journal instead of starting the
            phase-2 search from scratch: journaled outcomes merge as-is
            and only the outstanding frontier is re-explored. Findings
            are byte-identical to an uninterrupted run.
        trace_dir: when set, record structured spans across the whole
            phase-2 search — coordinator phases, per-worker exploration
            and every solver layer — and write the merged trace to
            ``trace_dir/trace.jsonl`` (inspect with ``python -m repro
            trace summarize``, convert with ``trace export``). Purely
            observational: findings are byte-identical with tracing on
            or off.
        progress: emit a periodic one-line fleet status to stderr while
            the phase-2 search runs (paths/sec, busy workers, worklist
            depth, cache hit rate).
    """

    layout: MessageLayout
    mask: FieldMask = field(default_factory=FieldMask.none)
    client_engine: EngineConfig = field(default_factory=EngineConfig)
    server_engine: EngineConfig = field(default_factory=EngineConfig)
    optimizations: OptimizationFlags = field(default_factory=OptimizationFlags)
    destination: str | None = None
    msg_name: str = "msg"
    workers: int = 1
    shards: int = 1
    transport: object = "local"
    hosts: tuple[str, ...] = ()
    on_worker_loss: str = "fail"
    max_worker_retries: int = 2
    cache_dir: str | None = None
    run_dir: str | None = None
    checkpoint_interval: int = 1
    resume: bool = False
    trace_dir: str | None = None
    progress: bool = False

    def __post_init__(self) -> None:
        # Validate here, not at pool start: a bad count otherwise
        # surfaces deep inside multiprocessing as a confusing failure.
        from repro.explore.transport import Transport

        if self.workers < 1:
            raise AchillesError(
                f"AchillesConfig.workers must be >= 1, got {self.workers} "
                "(1 = serial; N > 1 = N solver worker processes)")
        if self.shards < 1:
            raise AchillesError(
                f"AchillesConfig.shards must be >= 1, got {self.shards} "
                "(1 = in-process exploration; N > 1 = N exploration "
                "shard processes)")
        self.hosts = tuple(self.hosts)
        if isinstance(self.transport, Transport):
            if self.hosts:
                raise AchillesError(
                    "a Transport instance carries its own hosts; "
                    "AchillesConfig.hosts must stay empty with one")
        elif self.transport not in ("local", "tcp"):
            raise AchillesError(
                f"AchillesConfig.transport must be 'local', 'tcp', or a "
                f"Transport instance, got {self.transport!r}")
        elif self.transport == "tcp" and not self.hosts:
            raise AchillesError(
                "AchillesConfig.transport='tcp' needs hosts: 'host:port' "
                "addresses of running `python -m repro worker` daemons")
        elif self.transport == "local" and self.hosts:
            raise AchillesError(
                "AchillesConfig.hosts is only meaningful with "
                "transport='tcp'")
        if self.on_worker_loss not in ("fail", "recover"):
            raise AchillesError(
                f"AchillesConfig.on_worker_loss must be 'fail' or "
                f"'recover', got {self.on_worker_loss!r}")
        if self.max_worker_retries < 0:
            raise AchillesError(
                f"AchillesConfig.max_worker_retries must be >= 0, got "
                f"{self.max_worker_retries}")
        if self.checkpoint_interval < 1:
            raise AchillesError(
                f"AchillesConfig.checkpoint_interval must be >= 1, got "
                f"{self.checkpoint_interval} (1 = fsync the run journal "
                "after every completed shard assignment)")
        if self.cache_dir is not None:
            cache_path = Path(self.cache_dir)
            if cache_path.exists() and not cache_path.is_dir():
                raise AchillesError(
                    f"AchillesConfig.cache_dir points at a file "
                    f"({cache_path}); it must name a directory for the "
                    "cache segments (it is created if missing)")
        if self.run_dir is not None:
            run_path = Path(self.run_dir)
            if run_path.exists() and not run_path.is_dir():
                raise AchillesError(
                    f"AchillesConfig.run_dir points at a file "
                    f"({run_path}); it must name a directory for the "
                    "run journal (it is created if missing)")
            if self.shards < 2:
                raise AchillesError(
                    "AchillesConfig.run_dir checkpoints the sharded "
                    f"phase-2 search, but shards={self.shards}; set "
                    "shards >= 2 (a serial walk has no coordinator to "
                    "checkpoint)")
        if self.trace_dir is not None:
            trace_path = Path(self.trace_dir)
            if trace_path.exists() and not trace_path.is_dir():
                raise AchillesError(
                    f"AchillesConfig.trace_dir points at a file "
                    f"({trace_path}); it must name a directory for the "
                    "trace (it is created if missing)")
        if self.resume:
            if self.run_dir is None:
                raise AchillesError(
                    "AchillesConfig.resume=True needs run_dir: the "
                    "journal of the interrupted run is what a resume "
                    "replays")
            from repro.explore.checkpoint import JOURNAL_NAME

            journal = Path(self.run_dir) / JOURNAL_NAME
            if not journal.exists():
                raise AchillesError(
                    f"AchillesConfig.resume=True but {journal} does not "
                    "exist; resume needs the journal a previous "
                    "checkpointed run wrote (start one with run_dir "
                    "set, then resume after an interruption)")


class Achilles:
    """Finds Trojan messages: accepted by the server, ungenerable by clients."""

    def __init__(self, config: AchillesConfig):
        config.mask.validate(config.layout)
        self.config = config
        self.server_msg = message_vars(config.layout, config.msg_name)
        # One canonical query cache for the whole run: phase 1 engines and
        # the phase 2 search all consult (and fill) the same instance.
        self.query_cache = QueryCache()
        #: The disk-cache salvage report when ``cache_dir`` is set
        #: (:class:`~repro.solver.diskcache.LoadReport`), else None.
        self.disk_cache_report = None
        self._store = None
        if config.cache_dir is not None:
            from repro.solver.diskcache import DiskCacheStore

            self._store = DiskCacheStore(config.cache_dir)
            self.disk_cache_report = self._store.load_into(self.query_cache)
        self._service: SolverService | None = None

    # -- solver service -----------------------------------------------------------

    @property
    def service(self) -> SolverService:
        """The run's shared solver service (lazily started).

        One instance spans pre-processing and the server search, so with
        ``workers > 1`` the pool is started once and its per-worker caches
        and frame stacks stay warm across phases.
        """
        if self._service is None:
            self._service = SolverService(workers=self.config.workers)
        return self._service

    def close(self) -> None:
        """Flush the disk cache and shut the worker pool down."""
        self.query_cache.flush_store()
        if self._service is not None:
            self._service.close()
            self._service = None

    def __enter__(self) -> "Achilles":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- individual phases --------------------------------------------------------

    def extract_clients(self,
                        clients: dict[str, NodeProgram] | list[NodeProgram],
                        ) -> ClientPredicateSet:
        """Phase 1 + pre-processing: build ``PC`` ready for the search."""
        predicates, stats = extract_client_predicates(
            clients, self.config.layout, self.config.client_engine,
            self.config.destination, query_cache=self.query_cache)
        if not predicates:
            raise AchillesError(
                "no client messages captured; check the destination filter "
                "and that the clients reach ctx.send()")
        result = preprocess(
            predicates, self.config.layout, self.server_msg,
            self.config.mask, Solver(), stats,
            build_difference=self.config.optimizations.use_different_from,
            service=self.service)
        # Phase-1 + pre-processing answers become durable before phase 2
        # starts: a crash during the server search still leaves a warm
        # cache for the re-run.
        self.query_cache.flush_store()
        return result

    def search(self, server: ServerProgram,
               clients: ClientPredicateSet) -> AchillesReport:
        """Phase 2: incremental Trojan search over the server."""
        report, _ = search_server(
            server, clients, self.server_msg, self.config.server_engine,
            self.config.optimizations, self.config.msg_name,
            query_cache=self.query_cache, service=self.service,
            shards=self.config.shards, transport=self.config.transport,
            hosts=self.config.hosts,
            on_worker_loss=self.config.on_worker_loss,
            max_worker_retries=self.config.max_worker_retries,
            run_dir=self.config.run_dir,
            checkpoint_interval=self.config.checkpoint_interval,
            resume=self.config.resume,
            trace_dir=self.config.trace_dir,
            progress=self.config.progress)
        report.workers = self.config.workers
        report.timings.client_extraction = clients.stats.extraction_seconds
        report.timings.preprocessing = clients.stats.preprocess_seconds
        return report

    # -- one-call entry point --------------------------------------------------------

    def run(self, clients: dict[str, NodeProgram] | list[NodeProgram],
            server: ServerProgram) -> AchillesReport:
        """Full pipeline: extract ``PC``, preprocess, search the server."""
        predicate_set = self.extract_clients(clients)
        return self.search(server, predicate_set)
