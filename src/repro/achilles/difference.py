"""The ``differentFrom`` matrix (§3.3).

``differentFrom[i][j][field] = TRUE`` means predicate *i* admits at least
one message whose ``field`` value no message of predicate *j* can carry.
The matrix is precomputed once (the paper's pre-processing phase) by
running the per-field negate operator between every pair of predicates,
and consulted during the server exploration: when a *single-field* server
constraint kills predicate *i*, every predicate *j* with
``differentFrom[j][i][field] = FALSE`` offers no additional values for
that field and is dropped without a solver call.

The matrix is only defined for fields that are *independent* in both
predicates (no shared constraints or data flow with other fields) —
dependent fields could smuggle cross-field information past the argument
above.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.achilles.mask import FieldMask
from repro.achilles.negate import negate_field
from repro.achilles.predicates import ClientPathPredicate
from repro.solver.ast import Expr
from repro.solver.incremental import IncrementalSolver
from repro.solver.solver import Solver


@dataclass
class DifferenceStats:
    """Counters from one matrix precomputation."""

    pairs_checked: int = 0
    solver_queries: int = 0
    entries_true: int = 0
    entries_false: int = 0
    fields_skipped_dependent: int = 0


class DifferentFrom:
    """Precomputed pairwise field-difference information.

    Args:
        predicates: the client predicate list ``PC`` (indices must match
            :attr:`ClientPathPredicate.index`).
        server_msg: the server message byte variables (shared frame for
            all combination queries).
        mask: fields hidden from analysis are skipped here too.
        solver: shared solver (queries are independent; the paper notes
            this step is trivially parallelizable).
    """

    def __init__(self, predicates: list[ClientPathPredicate],
                 server_msg: tuple[Expr, ...],
                 mask: FieldMask | None = None,
                 solver: Solver | None = None):
        self._predicates = predicates
        self._server_msg = server_msg
        self._mask = mask or FieldMask.none()
        self._solver = solver or Solver()
        # Every matrix entry poses ``i_pred.combined(...) + (negation,)``:
        # a fixed prefix probed with one conjunct across the whole inner
        # pair/field loop — exactly the push/pop shape the incremental
        # assertion stack amortizes (the prefix propagates once per i).
        self._incremental = IncrementalSolver(solver=self._solver)
        self._table: dict[tuple[int, int, str], bool] = {}
        self._independent: dict[tuple[int, str], bool] = {}
        self.stats = DifferenceStats()
        self._build()

    # -- queries -------------------------------------------------------------------

    def different(self, i: int, j: int, field: str) -> bool:
        """``differentFrom[i][j][field]``.

        Missing entries (dependent fields, abandoned negations) default to
        True — "assume they might differ", which disables the shortcut and
        is always sound.
        """
        if i == j:
            return False
        return self._table.get((i, j, field), True)

    def droppable_with(self, i: int, field: str) -> list[int]:
        """All j that can be dropped when i is killed by a ``field`` constraint.

        These are the j with ``differentFrom[j][i][field] = FALSE``: every
        field value of j is also a field value of i.
        """
        return [
            j for j in range(len(self._predicates))
            if j != i and not self.different(j, i, field)
        ]

    def is_independent(self, index: int, field: str) -> bool:
        return self._independent.get((index, field), False)

    # -- construction ----------------------------------------------------------------

    def _build(self) -> None:
        layout = self._predicates[0].layout if self._predicates else None
        if layout is None:
            return
        fields = self._mask.visible_fields(layout)
        for pred in self._predicates:
            for field in fields:
                self._independent[(pred.index, field)] = (
                    pred.field_is_independent(field))

        negations = self._field_negations(fields)
        for i_pred in self._predicates:
            for j_pred in self._predicates:
                if i_pred.index == j_pred.index:
                    continue
                self.stats.pairs_checked += 1
                for field in fields:
                    self._fill_entry(i_pred, j_pred, field, negations)

    def _field_negations(self, fields: tuple[str, ...]):
        """negate_field(pred, field) for every pair, computed once."""
        table: dict[tuple[int, str], Expr | None] = {}
        for pred in self._predicates:
            for field in fields:
                disjunct = negate_field(pred, field, self._server_msg,
                                        self._solver)
                table[(pred.index, field)] = (
                    None if disjunct is None else disjunct.expr)
        return table

    def _fill_entry(self, i_pred: ClientPathPredicate,
                    j_pred: ClientPathPredicate, field: str,
                    negations: dict[tuple[int, str], Expr | None]) -> None:
        if not (self._independent[(i_pred.index, field)]
                and self._independent[(j_pred.index, field)]):
            self.stats.fields_skipped_dependent += 1
            return
        negation_j = negations[(j_pred.index, field)]
        if negation_j is None:
            return  # negate abandoned: stay conservative (defaults True)
        query = i_pred.combined(self._server_msg) + (negation_j,)
        self.stats.solver_queries += 1
        entry = self._incremental.check(query).is_sat
        self._table[(i_pred.index, j_pred.index, field)] = entry
        if entry:
            self.stats.entries_true += 1
        else:
            self.stats.entries_false += 1
