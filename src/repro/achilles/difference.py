"""The ``differentFrom`` matrix (§3.3).

``differentFrom[i][j][field] = TRUE`` means predicate *i* admits at least
one message whose ``field`` value no message of predicate *j* can carry.
The matrix is precomputed once (the paper's pre-processing phase) by
running the per-field negate operator between every pair of predicates,
and consulted during the server exploration: when a *single-field* server
constraint kills predicate *i*, every predicate *j* with
``differentFrom[j][i][field] = FALSE`` offers no additional values for
that field and is dropped without a solver call.

The matrix is only defined for fields that are *independent* in both
predicates (no shared constraints or data flow with other fields) —
dependent fields could smuggle cross-field information past the argument
above.

Every entry is an independent query (the paper notes the precompute is
trivially parallelizable), so the matrix is built through the batched
:class:`~repro.solver.service.SolverService` as a single probe batch in
row-major order: each row poses the fixed ``i_pred.combined(server_msg)``
prefix plus one negation per (j, field) pair. On the serial backend the
probes ride the service's shared incremental frame stack (a row's prefix
propagates once, shared with the negate operator's overlap probes); on
the pool backend the rows shard across workers with one join for the
whole precompute.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.achilles.mask import FieldMask
from repro.achilles.negate import negate_predicate
from repro.achilles.predicates import ClientPathPredicate
from repro.solver.ast import Expr
from repro.solver.service import SolverService
from repro.solver.solver import Solver

#: Per-(predicate index, field) surviving negation expression (None when
#: the negation was abandoned or discarded by the §4.1 overlap check).
FieldNegations = dict[tuple[int, str], Expr | None]


@dataclass
class DifferenceStats:
    """Counters from one matrix precomputation."""

    pairs_checked: int = 0
    solver_queries: int = 0
    entries_true: int = 0
    entries_false: int = 0
    fields_skipped_dependent: int = 0


class DifferentFrom:
    """Precomputed pairwise field-difference information.

    Args:
        predicates: the client predicate list ``PC`` (indices must match
            :attr:`ClientPathPredicate.index`).
        server_msg: the server message byte variables (shared frame for
            all combination queries).
        mask: fields hidden from analysis are skipped here too.
        solver: fallback solver when no service is given (a serial
            service is built around it).
        service: batched solver dispatch; pass the run's shared instance
            so matrix probes reuse its frame stack (serial) or worker
            pool (parallel).
        field_negations: per-(predicate, field) negation expressions
            already computed by the pre-processing step; when omitted the
            matrix recomputes them via the negate operator.
    """

    def __init__(self, predicates: list[ClientPathPredicate],
                 server_msg: tuple[Expr, ...],
                 mask: FieldMask | None = None,
                 solver: Solver | None = None,
                 service: SolverService | None = None,
                 field_negations: FieldNegations | None = None):
        self._predicates = predicates
        self._server_msg = server_msg
        self._mask = mask or FieldMask.none()
        self._service = service or SolverService(solver=solver)
        self._table: dict[tuple[int, int, str], bool] = {}
        self._independent: dict[tuple[int, str], bool] = {}
        self.stats = DifferenceStats()
        self._build(field_negations)

    # -- queries -------------------------------------------------------------------

    def different(self, i: int, j: int, field: str) -> bool:
        """``differentFrom[i][j][field]``.

        Missing entries (dependent fields, abandoned negations) default to
        True — "assume they might differ", which disables the shortcut and
        is always sound.
        """
        if i == j:
            return False
        return self._table.get((i, j, field), True)

    def droppable_with(self, i: int, field: str) -> list[int]:
        """All j that can be dropped when i is killed by a ``field`` constraint.

        These are the j with ``differentFrom[j][i][field] = FALSE``: every
        field value of j is also a field value of i.
        """
        return [
            j for j in range(len(self._predicates))
            if j != i and not self.different(j, i, field)
        ]

    def is_independent(self, index: int, field: str) -> bool:
        return self._independent.get((index, field), False)

    # -- pickling ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop the solver service: the matrix is pure data after _build.

        Sharded exploration ships the whole :class:`ClientPredicateSet`
        (this matrix included) to worker processes; the service — which
        may hold a live multiprocessing pool — is only used during
        construction and must not travel.
        """
        state = self.__dict__.copy()
        state["_service"] = None
        return state

    # -- construction ----------------------------------------------------------------

    def _build(self, field_negations: FieldNegations | None) -> None:
        layout = self._predicates[0].layout if self._predicates else None
        if layout is None:
            return
        fields = self._mask.visible_fields(layout)
        for pred in self._predicates:
            for field in fields:
                self._independent[(pred.index, field)] = (
                    pred.field_is_independent(field))

        negations = (field_negations if field_negations is not None
                     else self._field_negations(fields))
        # The whole matrix goes out as one probe batch: every (i, j,
        # field) entry poses ``i_pred.combined(...) + (negation,)``.
        # Row-major order keeps each i's prefix consecutive, so the
        # serial backend (and each worker's contiguous chunk) propagates
        # a row prefix once and push/pops the negations against it; one
        # batch means one pool join for the entire precompute. The shared
        # prefix expressions are pickled once per chunk (pickle memoizes
        # shared objects within a payload).
        probes: list[tuple[Expr, ...]] = []
        entries: list[tuple[int, int, str]] = []
        for i_pred in self._predicates:
            prefix = i_pred.combined(self._server_msg)
            for j_pred in self._predicates:
                if i_pred.index == j_pred.index:
                    continue
                self.stats.pairs_checked += 1
                for field in fields:
                    if not (self._independent[(i_pred.index, field)]
                            and self._independent[(j_pred.index, field)]):
                        self.stats.fields_skipped_dependent += 1
                        continue
                    negation_j = negations.get((j_pred.index, field))
                    if negation_j is None:
                        continue  # negate abandoned: stay conservative
                    probes.append(prefix + (negation_j,))
                    entries.append((i_pred.index, j_pred.index, field))
        if not probes:
            return
        self.stats.solver_queries += len(probes)
        answers = self._service.probe_batch((), probes)
        for key, entry in zip(entries, answers):
            self._table[key] = entry
            if entry:
                self.stats.entries_true += 1
            else:
                self.stats.entries_false += 1

    def _field_negations(self, fields: tuple[str, ...]) -> FieldNegations:
        """Surviving per-field negation exprs, via the negate operator."""
        table: FieldNegations = {}
        for pred in self._predicates:
            for field in fields:
                table[(pred.index, field)] = None
            negation = negate_predicate(pred, self._server_msg, self._mask,
                                        service=self._service)
            for disjunct in negation.disjuncts:
                table[(pred.index, disjunct.field)] = disjunct.expr
        return table
