"""Local-state modes for stateful protocols (§3.4).

Distributed nodes accept different messages depending on accumulated local
state (Paxos phases, PBFT request logs). Achilles offers three ways to put
a node *into* a state before analyzing it:

* **Concrete** — :func:`with_concrete_state` rebuilds a concrete state
  object for every explored path (the engine re-executes programs, so
  shared mutable state would leak between paths);
* **Constructed symbolic** — :func:`capture_sent_message` runs another
  node symbolically and hands its sent message (expressions plus path
  constraints) to the node under analysis via :func:`replay_into`;
* **Over-approximate symbolic** — annotations
  (:func:`repro.symex.annotations.symbolic_return`,
  ``ctx.fresh_bitvec``) replace state reads with constrained symbolic
  values; re-exported here for discoverability.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.errors import AchillesError
from repro.solver.ast import Expr
from repro.symex.annotations import make_symbolic, symbolic_return
from repro.symex.context import ExecutionContext
from repro.symex.engine import Engine, EngineConfig, NodeProgram, client_verdict

State = TypeVar("State")

__all__ = [
    "capture_sent_message",
    "make_symbolic",
    "replay_into",
    "symbolic_return",
    "with_concrete_state",
]


def with_concrete_state(factory: Callable[[], State],
                        program: Callable[[ExecutionContext, State], None],
                        ) -> NodeProgram:
    """Concrete Local State mode: fresh concrete state on every path.

    The factory runs once per path execution (including replays of forked
    prefixes), so the node always starts from the same concrete scenario —
    e.g. "a Paxos acceptor that has promised ballot 3 and accepted
    value 7".

    Args:
        factory: builds the concrete state object.
        program: node program taking ``(ctx, state)``.

    Returns:
        A standard single-argument node program for the engine.
    """

    def node(ctx: ExecutionContext) -> None:
        program(ctx, factory())

    return node


def capture_sent_message(program: NodeProgram,
                         destination: str | None = None,
                         send_index: int = 0,
                         engine_config: EngineConfig | None = None,
                         path_index: int = 0,
                         ) -> tuple[tuple[Expr, ...], tuple[Expr, ...]]:
    """Constructed Symbolic Local State, step 1: run a peer symbolically.

    Explores ``program`` and captures one of the messages it sends — the
    payload expressions *and* the path constraints under which the send
    happened. Feeding both into another node (:func:`replay_into`) builds
    symbolic local state covering every concrete scenario at once, e.g. a
    Paxos proposer proposing a *symbolic* value.

    Args:
        program: the sending node program.
        destination: only consider sends to this node name.
        send_index: which send on the chosen path to capture.
        engine_config: exploration limits for the peer run.
        path_index: which completed sending path to use.

    Returns:
        ``(payload, constraints)`` of the captured symbolic message.
    """
    from dataclasses import replace

    config = replace(engine_config or EngineConfig(),
                     default_verdict=client_verdict)
    result = Engine(config).explore(program)
    sending_paths = []
    for path in result.paths:
        sends = [s for s in path.sends
                 if destination is None or s.destination == destination]
        if len(sends) > send_index:
            sending_paths.append((path, sends[send_index]))
    if path_index >= len(sending_paths):
        raise AchillesError(
            f"peer program produced {len(sending_paths)} sending paths; "
            f"path_index {path_index} is out of range")
    path, sent = sending_paths[path_index]
    return sent.payload, path.constraints


def replay_into(ctx: ExecutionContext, constraints: Sequence[Expr]) -> None:
    """Constructed Symbolic Local State, step 2: adopt peer constraints.

    Call at the start of the analyzed node's program, then process the
    captured payload as the incoming message. The constraints scope the
    peer's symbolic inputs exactly as they were on the sending path.
    """
    for constraint in constraints:
        ctx.assume(constraint)
