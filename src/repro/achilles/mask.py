"""Field masks: hide message fields from the Trojan check (§5.2).

The server's symbolic execution still branches on hidden fields — the mask
only removes them from the negate operator and the ``differentFrom``
matrix, raising the signal-to-noise ratio and shrinking solver queries
("Achilles applies the mask before calling the SMT solver").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AchillesError
from repro.messages.layout import MessageLayout


@dataclass(frozen=True)
class FieldMask:
    """An opt-out set of field names excluded from Trojan analysis.

    Use :meth:`hide` to exclude specific fields or :meth:`only` to express
    the complement ("check only these"). The empty mask analyzes all
    fields.
    """

    hidden: frozenset[str] = frozenset()

    @classmethod
    def none(cls) -> "FieldMask":
        """Analyze every field."""
        return cls(frozenset())

    @classmethod
    def hide(cls, *fields: str) -> "FieldMask":
        """Exclude the named fields from the Trojan check."""
        return cls(frozenset(fields))

    @classmethod
    def only(cls, layout: MessageLayout, *fields: str) -> "FieldMask":
        """Check only the named fields of ``layout``."""
        unknown = set(fields) - set(layout.field_names)
        if unknown:
            raise AchillesError(
                f"mask names unknown fields: {', '.join(sorted(unknown))}")
        return cls(frozenset(layout.field_names) - frozenset(fields))

    def validate(self, layout: MessageLayout) -> None:
        """Raise when the mask names fields the layout does not have."""
        unknown = self.hidden - set(layout.field_names)
        if unknown:
            raise AchillesError(
                f"mask names unknown fields: {', '.join(sorted(unknown))}")
        if not self.visible_fields(layout):
            raise AchillesError("mask hides every field; nothing to analyze")

    def is_visible(self, field: str) -> bool:
        return field not in self.hidden

    def visible_fields(self, layout: MessageLayout) -> tuple[str, ...]:
        """Layout fields subject to the Trojan check, in wire order."""
        return tuple(f for f in layout.field_names if self.is_visible(f))
