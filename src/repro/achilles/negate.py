"""The under-approximate ``negate`` operator (§3.2, §4).

``¬PC`` contains a universal quantifier, which SMT solvers handle poorly.
Achilles instead under-approximates the negation of each client path
predicate as a *disjunction of per-field negations*:

* a field whose payload is a concrete value ``C`` negates to
  ``field(msgS) ≠ C``;
* a field whose payload is a symbolic expression negates to
  ``field(msgS) = e(λ') ∧ ¬(constraints influencing λ')`` over *fresh*
  copies ``λ'`` of the client's symbolic inputs;
* a field with symbolic payload but no influencing constraints cannot be
  negated and is abandoned.

Every produced disjunct is then checked against the original predicate
(§4.1): if a message could satisfy both the disjunct and the client path,
the disjunct is discarded, keeping the operator a *strict*
under-approximation — Achilles never reports a client-generable message
because of an imprecise negation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.achilles.mask import FieldMask
from repro.achilles.predicates import ClientPathPredicate
from repro.messages.symbolic import field_expr
from repro.solver import ast
from repro.solver.ast import Expr
from repro.solver.solver import Solver
from repro.solver.sorts import BOOL
from repro.solver.walk import collect_vars, substitute

#: Negation disjunct kinds.
CONCRETE = "concrete"
SYMBOLIC = "symbolic"


@dataclass(frozen=True)
class NegationDisjunct:
    """One way a message can avoid a client path predicate.

    Attributes:
        pred_index: which client path predicate this negates.
        field: the field whose values are complemented.
        kind: :data:`CONCRETE` or :data:`SYMBOLIC`.
        expr: boolean expression over the server message variables (plus
            fresh internal λ variables for symbolic negations).
    """

    pred_index: int
    field: str
    kind: str
    expr: Expr


@dataclass(frozen=True)
class PredicateNegation:
    """``negate(pathC)`` for one client path predicate.

    ``expr`` is the disjunction of the surviving per-field disjuncts;
    when no field could be negated it is ``FALSE`` — the safe
    under-approximation of the (non-empty) complement, meaning Achilles
    cannot certify any message as un-generable by this client path.
    """

    pred_index: int
    disjuncts: tuple[NegationDisjunct, ...]

    @property
    def expr(self) -> Expr:
        if not self.disjuncts:
            return ast.FALSE
        return ast.any_of([d.expr for d in self.disjuncts])

    @property
    def is_vacuous(self) -> bool:
        return not self.disjuncts


def build_disjunct(pred: ClientPathPredicate, field: str,
                   server_msg: tuple[Expr, ...]) -> NegationDisjunct | None:
    """The raw (unverified) per-field negation disjunct, or None if abandoned.

    This is the pure construction half of the negate operator; the §4.1
    overlap check that keeps it a strict under-approximation is applied by
    the callers (:func:`negate_field` one query at a time,
    :func:`negate_predicate` as one probe batch).
    """
    view = pred.layout.view(field)
    server_field = field_expr(server_msg, view)
    client_field = pred.field_value(field)

    if client_field.is_const:
        return NegationDisjunct(
            pred.index, field, CONCRETE, ast.ne(server_field, client_field))
    closure_vars, influencing = pred.field_closure(field)
    if not influencing:
        return None  # paper: "abandon the negation of the current value"
    renaming = _fresh_renaming(pred.index, field, closure_vars)
    pinned = ast.eq(server_field, substitute(client_field, renaming))
    negated = ast.any_of(
        [ast.not_(substitute(c, renaming)) for c in influencing])
    return NegationDisjunct(
        pred.index, field, SYMBOLIC, ast.and_(pinned, negated))


def negate_field(pred: ClientPathPredicate, field: str,
                 server_msg: tuple[Expr, ...],
                 solver: Solver | None = None,
                 verify: bool = True) -> NegationDisjunct | None:
    """Negate one field of one client path predicate.

    Args:
        pred: the client path predicate being negated.
        field: field name to complement.
        server_msg: the server's symbolic message byte variables.
        solver: solver used for the §4.1 under-approximation check.
        verify: run the overlap check (disabled only by tests that
            exercise the raw operator).

    Returns:
        The disjunct, or None when negation of this field is abandoned
        (unconstrained symbolic payload) or discarded by the overlap
        check.
    """
    disjunct = build_disjunct(pred, field, server_msg)
    if disjunct is None:
        return None
    if verify and _overlaps_original(disjunct, pred, server_msg,
                                     solver or Solver()):
        return None
    return disjunct


def negate_predicate(pred: ClientPathPredicate,
                     server_msg: tuple[Expr, ...],
                     mask: FieldMask | None = None,
                     solver: Solver | None = None,
                     service=None) -> PredicateNegation:
    """``negate(pathC)``: disjunction of per-field negations (§3.2).

    Masked fields are skipped entirely — the mask is applied before any
    solver work (§5.2).

    When a :class:`~repro.solver.service.SolverService` is given, the §4.1
    overlap checks for all fields go out as one probe batch against the
    shared ``pred.combined(server_msg)`` prefix: serially they ride the
    service's shared incremental frame stack (the same one the
    ``differentFrom`` matrix probes), in parallel they shard across the
    worker pool. Answers are identical either way.
    """
    mask = mask or FieldMask.none()
    candidates = []
    for field in mask.visible_fields(pred.layout):
        disjunct = build_disjunct(pred, field, server_msg)
        if disjunct is not None:
            candidates.append(disjunct)
    if service is None:
        solver = solver or Solver()
        survivors = tuple(
            d for d in candidates
            if not _overlaps_original(d, pred, server_msg, solver))
    else:
        prefix = pred.combined(server_msg)
        overlaps = service.probe_batch(
            prefix, [(d.expr,) for d in candidates])
        survivors = tuple(d for d, overlap in zip(candidates, overlaps)
                          if not overlap)
    return PredicateNegation(pred.index, survivors)


def _fresh_renaming(pred_index: int, field: str,
                    variables: frozenset[Expr]) -> dict[Expr, Expr]:
    """Fresh λ′ copies of the client's symbolic inputs for one disjunct.

    Each disjunct gets its own namespace so its existential variables
    cannot collide with the original predicate's, with other disjuncts',
    or with the server's message variables.
    """
    def rename(var: Expr) -> Expr:
        fresh_name = f"~{pred_index}.{field}.{var.name}"
        if var.sort == BOOL:
            return ast.bool_var(fresh_name)
        return ast.bv_var(fresh_name, var.width)

    return {var: rename(var) for var in variables}


def _overlaps_original(disjunct: NegationDisjunct, pred: ClientPathPredicate,
                       server_msg: tuple[Expr, ...], solver: Solver) -> bool:
    """§4.1 check: can any client-generable message satisfy the disjunct?

    When satisfiable, the disjunct is *not* inside the complement of the
    predicate and must be discarded to preserve the under-approximation.
    """
    query = pred.combined(server_msg) + (disjunct.expr,)
    return solver.check(query).is_sat


def single_field_of(constraint: Expr, server_msg: tuple[Expr, ...],
                    layout) -> str | None:
    """The unique field a server constraint talks about, if any (§3.3).

    Returns the field name when every variable of ``constraint`` is a
    server message byte belonging to that one field; None otherwise
    (multi-field constraints, or constraints involving local state).
    """
    msg_index = {var: i for i, var in enumerate(server_msg)}
    fields: set[str] = set()
    for var in collect_vars(constraint):
        position = msg_index.get(var)
        if position is None:
            return None
        fields.add(layout.field_of_byte(position).name)
    if len(fields) == 1:
        return next(iter(fields))
    return None
