"""Client path predicates — the building blocks of ``PC`` (§3.1).

One :class:`ClientPathPredicate` captures everything Achilles keeps about a
single client execution path that sent a message: the symbolic payload (one
expression per wire byte) and the path constraints under which it is sent.
``PC`` is the disjunction of all of them.

The per-field *variable closure* computed here drives both the negate
operator (which constraints "influence" a field, §3.2) and the field
independence test required by the ``differentFrom`` matrix (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import AchillesError
from repro.messages.layout import MessageLayout
from repro.messages.symbolic import field_bytes, field_expr, wire_equalities
from repro.solver.ast import Expr
from repro.solver.walk import collect_vars, collect_vars_all


@dataclass(frozen=True)
class ClientPathPredicate:
    """All messages one client execution path can put on the wire.

    Attributes:
        index: position of this predicate inside ``PC`` (assigned by the
            client analysis, used by ``differentFrom`` and reports).
        client: label of the client program that produced the message.
        source_path_id: engine path id within that client's exploration.
        layout: the wire layout both sides agree on.
        payload: per-byte payload expressions (concrete bytes appear as
            constant expressions).
        constraints: path constraints that must hold for this send.
    """

    index: int
    client: str
    source_path_id: int
    layout: MessageLayout
    payload: tuple[Expr, ...]
    constraints: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if len(self.payload) != self.layout.total_size:
            raise AchillesError(
                f"payload is {len(self.payload)} bytes but layout "
                f"{self.layout.name!r} is {self.layout.total_size}")

    # -- field access -------------------------------------------------------------

    def field_value(self, field: str) -> Expr:
        """The field's payload value as one big-endian expression."""
        return field_expr(self.payload, self.layout.view(field))

    def field_is_concrete(self, field: str) -> bool:
        """True when every payload byte of the field is a constant."""
        view = self.layout.view(field)
        return all(b.is_const for b in field_bytes(self.payload, view))

    def field_direct_vars(self, field: str) -> frozenset[Expr]:
        """Variables appearing directly in the field's payload bytes."""
        view = self.layout.view(field)
        found: set[Expr] = set()
        for byte in field_bytes(self.payload, view):
            found |= collect_vars(byte)
        return frozenset(found)

    @cached_property
    def _constraint_vars(self) -> tuple[frozenset[Expr], ...]:
        return tuple(frozenset(collect_vars(c)) for c in self.constraints)

    def field_closure(self, field: str) -> tuple[frozenset[Expr], tuple[Expr, ...]]:
        """Transitive closure of variables and constraints behind a field.

        Starting from the variables in the field's payload bytes, pull in
        every constraint mentioning one of them, then the variables of
        those constraints, to a fixpoint. These are the constraints that
        "influence the respective variables" in the paper's negate
        operator.

        Returns:
            ``(vars, constraints)`` — the closed variable set and the
            influencing constraints in original path order.
        """
        vars_closed = set(self.field_direct_vars(field))
        picked = [False] * len(self.constraints)
        changed = True
        while changed:
            changed = False
            for i, cvars in enumerate(self._constraint_vars):
                if picked[i] or not cvars:
                    continue
                if cvars & vars_closed:
                    picked[i] = True
                    vars_closed |= cvars
                    changed = True
        chosen = tuple(c for i, c in enumerate(self.constraints) if picked[i])
        return frozenset(vars_closed), chosen

    def field_is_independent(self, field: str) -> bool:
        """Field independence per §3.3.

        A field is independent when the variables behind it (closure) do
        not appear in any *other* field's payload bytes — i.e. it shares
        no constraints or data flow with other fields.
        """
        closure_vars, _ = self.field_closure(field)
        if not closure_vars:
            return True
        for other in self.layout.field_names:
            if other == field:
                continue
            if closure_vars & self.field_direct_vars(other):
                return False
        return True

    # -- combination with a server message --------------------------------------

    def combined(self, server_msg: tuple[Expr, ...]) -> tuple[Expr, ...]:
        """``pathC ∧ (msgS = msgC)`` — the §3.2 combination.

        The result, conjoined with a server path condition, asks whether a
        message generated on this client path can trigger that server path.
        """
        return self.constraints + tuple(wire_equalities(server_msg, self.payload))

    # -- identity -----------------------------------------------------------------

    def signature(self) -> tuple:
        """Structural key for de-duplication across client paths.

        Two paths sending the same payload expressions under the same
        constraint *set* admit exactly the same messages.
        """
        return (self.payload, frozenset(self.constraints))

    @property
    def all_vars(self) -> frozenset[Expr]:
        return frozenset(collect_vars_all(self.payload + self.constraints))

    def __repr__(self) -> str:
        return (f"ClientPathPredicate(#{self.index} {self.client} "
                f"path={self.source_path_id} bytes={len(self.payload)} "
                f"constraints={len(self.constraints)})")
