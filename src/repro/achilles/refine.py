"""Witness refinement — the paper's §4.1 future-work extension.

Achilles can report false positives when the client exploration was
incomplete: a message may look Trojan only because the path that would
generate it was never explored. The paper sketches the fix — "use the
expressions that define Trojan messages to guide a new symbolic execution
of the client node", in the spirit of CEGAR abstraction refinement.

:func:`refine_findings` implements that pass: each witness is pinned
byte-for-byte and the client programs are re-explored under that pin.
Any client path that can still emit the pinned message *disproves* the
finding (the engine's own feasibility pruning makes this focused — paths
inconsistent with the witness die at their first conflicting branch,
which is exactly the "significantly faster than blind exploration"
property the paper cites from ESD/demand-driven symbolic execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.achilles.report import AchillesReport, TrojanFinding
from repro.messages.layout import MessageLayout
from repro.solver import ast
from repro.solver.solver import Solver
from repro.symex.context import ExecutionContext
from repro.symex.engine import Engine, EngineConfig, NodeProgram, client_verdict


@dataclass
class RefinementOutcome:
    """Result of re-validating a report against the clients.

    Attributes:
        confirmed: findings no client path can generate (true Trojans).
        disproved: findings some client path *can* generate — false
            positives introduced by incomplete client exploration.
        witnesses_checked: total findings examined.
    """

    confirmed: list[TrojanFinding] = field(default_factory=list)
    disproved: list[TrojanFinding] = field(default_factory=list)
    witnesses_checked: int = 0

    @property
    def all_confirmed(self) -> bool:
        return not self.disproved


def refine_findings(report: AchillesReport,
                    clients: dict[str, NodeProgram],
                    layout: MessageLayout,
                    destination: str | None = None,
                    engine_config: EngineConfig | None = None,
                    ) -> RefinementOutcome:
    """Re-validate every finding by guided client re-execution.

    Args:
        report: the Achilles report to refine.
        clients: the same client programs phase 1 analyzed.
        layout: the wire layout (witness length check).
        destination: only sends to this node count as generation.
        engine_config: limits for the guided exploration.

    Returns:
        The partition of findings into confirmed and disproved.
    """
    outcome = RefinementOutcome()
    for finding in report.findings:
        outcome.witnesses_checked += 1
        if witness_is_generable(finding.witness, clients, layout,
                                destination, engine_config):
            outcome.disproved.append(finding)
        else:
            outcome.confirmed.append(finding)
    return outcome


def witness_is_generable(witness: bytes,
                         clients: dict[str, NodeProgram],
                         layout: MessageLayout,
                         destination: str | None = None,
                         engine_config: EngineConfig | None = None) -> bool:
    """Can any client path emit exactly ``witness``?

    Explores each client with the engine; on every completed path, each
    captured send is checked for compatibility with the witness bytes
    (path constraints plus byte equalities). The check is exact — it
    re-poses the generation question per concrete message rather than
    through the under-approximate negate operator.
    """
    if len(witness) != layout.total_size:
        return False
    from dataclasses import replace

    config = replace(engine_config or EngineConfig(),
                     default_verdict=client_verdict)
    solver = Solver()
    for program in clients.values():
        engine = Engine(config)
        exploration = engine.explore(program)
        for path in exploration.paths:
            for sent in path.sends:
                if destination is not None and sent.destination != destination:
                    continue
                if len(sent.payload) != len(witness):
                    continue
                pins = [ast.eq(expr, ast.bv_const(byte, 8))
                        for expr, byte in zip(sent.payload, witness)]
                if solver.check(list(path.constraints) + pins).is_sat:
                    return True
    return False
