"""Report rendering and serialization.

Findings leave Achilles in two forms (§3.2): a symbolic expression per
Trojan class and a concrete example message. This module turns a full
:class:`~repro.achilles.report.AchillesReport` into

* a human-readable text report (:func:`render_report`) for terminals and
  CI logs, and
* a JSON-serializable dict (:func:`report_to_dict` /
  :func:`findings_to_json`) so findings can be archived, diffed across
  runs, or fed to an external fault-injection pipeline.
"""

from __future__ import annotations

import json
from typing import Any

from repro.achilles.report import AchillesReport, TrojanFinding
from repro.messages.layout import MessageLayout
from repro.solver.printer import to_string


def render_finding(finding: TrojanFinding, layout: MessageLayout,
                   index: int | None = None) -> str:
    """One finding as a small text block."""
    header = f"finding #{index}" if index is not None else "finding"
    fields = finding.witness_fields(layout)
    field_text = " ".join(f"{name}={value}" for name, value in fields.items())
    lines = [
        f"{header}: server path {finding.server_path_id}"
        + (f" [{', '.join(finding.labels)}]" if finding.labels else ""),
        f"  witness: {finding.witness.hex()}",
        f"  fields:  {field_text}",
        f"  found after {finding.elapsed_seconds:.2f}s; "
        f"live client predicates: "
        f"{list(finding.live_predicates) or 'none (path is Trojan-only)'}",
        f"  class:   {finding.symbolic_expression(max_terms=6)}",
    ]
    return "\n".join(lines)


def render_report(report: AchillesReport, layout: MessageLayout,
                  max_findings: int = 10) -> str:
    """The whole report as text: summary, timings, findings."""
    timings = report.timings
    lines = [
        f"Achilles report: {report.trojan_count} Trojan finding(s)",
        f"  client predicates: {report.client_predicate_count}",
        f"  server paths explored: {report.server_paths_explored} "
        f"(pruned: {report.server_paths_pruned})",
        f"  solver queries: {report.solver_queries} "
        f"(query cache: {report.cache_hits} hits / "
        f"{report.cache_misses} misses, {report.cache_hit_rate:.0%})",
        f"  timings: client {timings.client_extraction:.2f}s | "
        f"preprocess {timings.preprocessing:.2f}s | "
        f"server {timings.server_analysis:.2f}s",
        "",
    ]
    for index, finding in enumerate(report.findings[:max_findings]):
        lines.append(render_finding(finding, layout, index))
        lines.append("")
    hidden = report.trojan_count - max_findings
    if hidden > 0:
        lines.append(f"... and {hidden} more finding(s)")
    return "\n".join(lines).rstrip()


def finding_to_dict(finding: TrojanFinding,
                    layout: MessageLayout | None = None) -> dict[str, Any]:
    """JSON-serializable view of one finding."""
    payload: dict[str, Any] = {
        "server_path_id": finding.server_path_id,
        "decisions": list(finding.decisions),
        "witness_hex": finding.witness.hex(),
        "live_predicates": list(finding.live_predicates),
        "elapsed_seconds": finding.elapsed_seconds,
        "labels": list(finding.labels),
        "path_condition": [to_string(c) for c in finding.path_condition],
    }
    if layout is not None:
        payload["witness_fields"] = finding.witness_fields(layout)
    return payload


def report_to_dict(report: AchillesReport,
                   layout: MessageLayout | None = None) -> dict[str, Any]:
    """JSON-serializable view of a full report."""
    return {
        "trojan_count": report.trojan_count,
        "client_predicate_count": report.client_predicate_count,
        "server_paths_explored": report.server_paths_explored,
        "server_paths_pruned": report.server_paths_pruned,
        "solver_queries": report.solver_queries,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "timings": {
            "client_extraction": report.timings.client_extraction,
            "preprocessing": report.timings.preprocessing,
            "server_analysis": report.timings.server_analysis,
        },
        "findings": [finding_to_dict(f, layout) for f in report.findings],
    }


def findings_to_json(report: AchillesReport,
                     layout: MessageLayout | None = None,
                     indent: int = 2) -> str:
    """The report as a JSON document."""
    return json.dumps(report_to_dict(report, layout), indent=indent)


def witnesses_from_json(document: str) -> list[bytes]:
    """Recover injectable witness messages from an archived report."""
    data = json.loads(document)
    return [bytes.fromhex(f["witness_hex"]) for f in data["findings"]]
