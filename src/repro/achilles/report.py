"""Achilles output records: findings, phase timings, discovery timeline.

For every server execution path that reaches an accept marker while still
admitting Trojan messages, Achilles outputs both a *symbolic expression*
(the path condition plus the matched negations) and a *concrete example*
(§3.2), so testers can inject the example into a live deployment (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.concrete import decode_ints
from repro.messages.layout import MessageLayout
from repro.solver.ast import Expr
from repro.solver.printer import to_string


@dataclass(frozen=True)
class TrojanFinding:
    """One server execution path that accepts Trojan messages.

    Attributes:
        server_path_id: engine path id of the accepting server path.
        decisions: branch decision vector identifying the path.
        path_condition: the server path constraints (over ``msg[i]`` vars).
        negation: the conjunction of live client-predicate negations that
            was satisfiable together with the path condition.
        witness: concrete example Trojan message (wire bytes).
        live_predicates: client predicate indices still live when the path
            accepted (the Trojan may be "bundled" with their messages).
        elapsed_seconds: when the finding was produced, measured from the
            start of the server analysis (drives the Figure 10 curve).
        labels: free-form marks the server program recorded on the path.
    """

    server_path_id: int
    decisions: tuple[bool, ...]
    path_condition: tuple[Expr, ...]
    negation: tuple[Expr, ...]
    witness: bytes
    live_predicates: tuple[int, ...]
    elapsed_seconds: float
    labels: tuple[str, ...] = ()

    def witness_fields(self, layout: MessageLayout) -> dict[str, int]:
        """The witness decoded into per-field unsigned ints."""
        return decode_ints(layout, self.witness)

    def symbolic_expression(self, max_terms: int = 12) -> str:
        """Human-readable rendering of the Trojan class expression."""
        parts = [to_string(c) for c in self.path_condition[:max_terms]]
        if len(self.path_condition) > max_terms:
            parts.append(f"... (+{len(self.path_condition) - max_terms} more)")
        return " ∧ ".join(parts) if parts else "true"


@dataclass
class PhaseTimings:
    """Wall-clock split across the three Achilles phases (§6.2).

    The paper reports 3 min / 15 min / 45 min for FSP — roughly
    5% / 24% / 71%; the benchmarks compare this *split*, not absolute
    seconds.
    """

    client_extraction: float = 0.0
    preprocessing: float = 0.0
    server_analysis: float = 0.0

    @property
    def total(self) -> float:
        return (self.client_extraction + self.preprocessing
                + self.server_analysis)

    def fractions(self) -> dict[str, float]:
        total = self.total or 1.0
        return {
            "client_extraction": self.client_extraction / total,
            "preprocessing": self.preprocessing / total,
            "server_analysis": self.server_analysis / total,
        }


@dataclass
class AchillesReport:
    """Complete result of one Achilles run.

    Attributes:
        findings: one entry per Trojan-accepting server path, in discovery
            order.
        client_predicate_count: size of ``PC`` after de-duplication.
        timings: phase wall-clock split.
        predicate_samples: ``(path_length, live_predicate_count)`` pairs
            recorded at every server constraint append — the raw data of
            Figure 11.
        server_paths_explored / server_paths_pruned: exploration counters
            (pruning is the §3.2 "dropped from the exploration" rule).
        solver_queries: total satisfiability checks issued by the search
            (cache hits never reach the solver, so this only counts misses).
        cache_hits / cache_misses: canonical query-cache counters.
            Achilles shares one :class:`~repro.solver.cache.QueryCache`
            across phase 1 (client extraction) and phase 2 (server
            search), so these are cumulative over the whole
            :class:`~repro.achilles.core.Achilles` instance — they include
            cross-phase reuse and therefore count more lookups than the
            phase-2-only ``solver_queries``.
        frames_reused: assertion-stack frames whose propagation fixpoint
            the incremental layer reused across prefix-sharing queries
            (:class:`~repro.solver.incremental.IncrementalSolver`) during
            the server search.
        propagation_seconds: wall clock the server search spent in
            incremental interval propagation.
        workers: solver-service worker count the search ran with (1 =
            fully in-process). When workers > 1, the query/frame/
            propagation counters above include the per-worker
            ``SolverStats`` folded in fixed chunk order, so they describe
            the whole run (their exact values can vary with chunk→worker
            placement — findings never do); the cache counters describe
            the run's *shared* canonical cache only (its lookup traffic
            is the same at any worker count), keeping ``cache_hit_rate``
            comparable between serial and parallel runs.
        shards: exploration shard count the server search ran with (1 =
            one in-process walk). When shards > 1, per-shard solver
            counters are folded in like worker counters, and the cache
            counters describe only the coordinator's seed-phase cache —
            shard workers warm private caches whose traffic depends on
            the (timing-dependent) partition. Findings never depend on
            the shard count.
        worker_failures: shard workers declared dead during the search.
            0 on a fault-free run; only ever non-zero with
            ``on_worker_loss="recover"`` (a loss under the default
            ``"fail"`` policy raises instead of reporting).
        prefixes_reassigned: decision prefixes reclaimed from dead
            workers and re-run elsewhere. Re-running is sound — the
            merge renumbers canonically and the dead worker's partial
            results are discarded — so these never change findings.
        recovery_seconds: wall clock the search spent reclaiming,
            respawning, and re-dispatching after worker losses — the
            overhead the faults cost (included in the server-analysis
            timing, not extra).
        disk_hits: cache hits answered by entries pre-loaded from a
            persistent on-disk cache (``cache_dir``) — the warm-start
            payoff a re-analysis gets for free. Always <= cache_hits.
        salvaged_records: disk-cache records recovered from *damaged*
            segments (truncated tail, bad CRC elsewhere in the file).
            Non-zero means the store healed itself; the salvaged entries
            re-verified their content fingerprints before being trusted.
        dropped_records: disk-cache records lost to corruption and not
            recovered. Dropped entries degrade to cache misses — never
            to wrong answers.
        checkpoints_written: durable (fsync'd) run-journal checkpoints
            the sharded search wrote (``run_dir``); 0 when no run
            directory was set.
        resumed_regions: journaled completed assignments replayed
            instead of re-explored (``resume=True``); 0 on a fresh run.
    """

    findings: list[TrojanFinding] = field(default_factory=list)
    client_predicate_count: int = 0
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    predicate_samples: list[tuple[int, int]] = field(default_factory=list)
    server_paths_explored: int = 0
    server_paths_pruned: int = 0
    solver_queries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    frames_reused: int = 0
    propagation_seconds: float = 0.0
    workers: int = 1
    shards: int = 1
    worker_failures: int = 0
    prefixes_reassigned: int = 0
    recovery_seconds: float = 0.0
    disk_hits: int = 0
    salvaged_records: int = 0
    dropped_records: int = 0
    checkpoints_written: int = 0
    resumed_regions: int = 0

    @property
    def trojan_count(self) -> int:
        return len(self.findings)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of solver queries answered by the canonical cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def witnesses(self) -> list[bytes]:
        """Concrete Trojan examples, ready for fault injection."""
        return [f.witness for f in self.findings]

    def timeline(self) -> list[tuple[float, int]]:
        """Cumulative discovery curve: (seconds, findings so far) — Fig 10."""
        points = []
        for count, finding in enumerate(self.findings, start=1):
            points.append((finding.elapsed_seconds, count))
        return points

    def discovery_fractions(self) -> list[tuple[float, float]]:
        """Figure 10 normalized: (fraction of analysis time, fraction found)."""
        if not self.findings:
            return []
        total_time = self.timings.server_analysis or max(
            f.elapsed_seconds for f in self.findings) or 1.0
        total = len(self.findings)
        return [(t / total_time, n / total) for t, n in self.timeline()]
