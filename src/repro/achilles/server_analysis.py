"""Phase 2: server exploration with incremental Trojan search (§3.2-§3.3).

The server runs on an unconstrained symbolic message. A
:class:`TrojanSearchObserver` rides along with the engine and, at every
appended constraint:

1. re-checks which client path predicates can still trigger the path
   (``pathS ∧ pathC_i`` satisfiable) and drops the rest — plus, for
   single-field constraints, everything the ``differentFrom`` matrix says
   cannot add new values for that field;
2. checks whether the path can still be triggered by *any* Trojan message
   (``pathS ∧ ⋀ negate(pathC_live)``) and prunes the path when it cannot —
   dropped predicates are implicitly-true negations and are omitted from
   the query, which is what keeps it small (§3.3, Figure 11).

A path that reaches an accept marker therefore *has* Trojan messages by
construction; the observer emits a finding with the symbolic expression
and a concrete witness.

Each optimization can be disabled individually (the §6.4 ablation), and
:func:`a_posteriori_search` implements the paper's non-optimized
comparison point: explore the server with vanilla symbolic execution
first, difference the predicates afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from repro.achilles.client_analysis import ClientPredicateSet
from repro.achilles.negate import single_field_of
from repro.achilles.report import AchillesReport, TrojanFinding
from repro.errors import AchillesError
from repro.obs import trace as obs_trace
from repro.obs.progress import ProgressMeter
from repro.obs.trace import (
    TRACE_FILE_NAME,
    merge_traces,
    metrics_record,
    write_trace,
)
from repro.solver.ast import Expr
from repro.solver.cache import QueryCache
from repro.symex.context import ExecutionContext
from repro.symex.engine import DFS, DeferredModel, Engine, EngineConfig, ExplorationResult
from repro.symex.observers import ObserverDelta, PathObserver
from repro.symex.state import ACCEPTED, PathResult

#: A server node program as Achilles drives it: the engine hands it the
#: execution context plus the unconstrained symbolic message byte vector.
ServerProgram = Callable[[ExecutionContext, tuple[Expr, ...]], None]


@dataclass
class OptimizationFlags:
    """Feature switches for the §3.3 optimizations (§6.4 ablation).

    Attributes:
        incremental_drop: track per-path live predicate lists, dropping
            predicates whose combination with the path became unsat.
        use_different_from: on a single-field drop, also drop everything
            the precomputed matrix proves redundant.
        prune_unreachable: abandon server paths whose Trojan query is
            unsat ("as soon as an execution path cannot be triggered by
            any Trojan messages, it is dropped from the exploration").
    """

    incremental_drop: bool = True
    use_different_from: bool = True
    prune_unreachable: bool = True

    @classmethod
    def all_off(cls) -> "OptimizationFlags":
        return cls(False, False, False)


@dataclass
class _PathSlot:
    """Per-path search state (lives in ``PathState.observer_slot``)."""

    live: set[int] = field(default_factory=set)
    samples: list[tuple[int, int]] = field(default_factory=list)


@dataclass(frozen=True)
class _TrojanPathRecord:
    """Per-path payload inside a :class:`ObserverDelta` (picklable)."""

    samples: tuple[tuple[int, int], ...]
    finding: TrojanFinding | None


@dataclass
class _FindingCell:
    """One accepting path's (possibly still in-flight) witness solve.

    Cells keep findings in discovery order even when some witness models
    resolve eagerly (cache hits, serial service) and others are still on
    the worker pool: :meth:`TrojanSearchObserver.finalize` materializes
    the ``findings`` list from the cell sequence.
    """

    deferred: DeferredModel
    result: PathResult
    pc: tuple[Expr, ...]
    negation: tuple[Expr, ...]
    live: tuple[int, ...]
    finding: TrojanFinding | None = None


class TrojanSearchObserver(PathObserver):
    """The Achilles plugin: incremental Trojan search during exploration.

    All solver work goes through the engine's memoized queries, so replays
    of forked prefixes (the engine re-executes paths) cost dictionary
    lookups, not solver calls. Below the cache, every per-path probe —
    ``pathS ∧ pathC_i`` predicate re-checks and ``pathS ∧ ⋀ negations``
    Trojan queries alike — is a ``pc + probe`` shape, which the engine's
    incremental assertion stack answers as push/pop against the path's
    frame: the ``pc`` prefix keeps its propagation fixpoint and only the
    probe conjuncts are propagated per query.

    Witness models for accepting paths go through
    :meth:`Engine.solve_async`: with a parallel service the solve is in
    flight on the worker pool while exploration continues, and
    :meth:`finalize` (called once exploration ends) joins the stragglers
    — findings stay in discovery order with witnesses byte-identical to
    the serial run, only ``elapsed_seconds`` of late-resolving findings
    shifts to the join point.

    The observer is also delta-capable (:meth:`delta` / :meth:`restore`),
    which is what lets the sharded exploration layer run one private
    instance per shard worker and deterministically rebuild the merged
    findings on the coordinator. Both are sound because every hook here
    is a pure function of the path's constraint sequence.
    """

    def __init__(self, engine: Engine, clients: ClientPredicateSet,
                 server_msg: tuple[Expr, ...],
                 flags: OptimizationFlags | None = None,
                 record_delta: bool = False):
        self._engine = engine
        self._clients = clients
        self._server_msg = server_msg
        self._flags = flags or OptimizationFlags()
        self._combined = [p.combined(server_msg) for p in clients.predicates]
        self._negation_exprs = [n.expr for n in clients.negations]
        self._trojan_cache: dict[tuple[tuple[Expr, ...], frozenset[int]], bool] = {}
        self._started = time.perf_counter()
        self._cells: list[_FindingCell] = []
        # Sharding support costs per-path bookkeeping (samples are kept
        # per path as well as in the flat stream), so it is opt-in: only
        # observers created for a sharded run record it.
        self._record_delta = record_delta
        # (decisions, per-path samples, witness cell or None) per executed
        # path; delta() freezes these into _TrojanPathRecord payloads.
        self._per_path: list[tuple[tuple[bool, ...],
                                   tuple[tuple[int, int], ...],
                                   _FindingCell | None]] = []
        self.findings: list[TrojanFinding] = []
        self.samples: list[tuple[int, int]] = []
        self.paths_pruned = 0
        self.paths_seen = 0

    # -- engine hooks ---------------------------------------------------------------

    def on_path_start(self, ctx: ExecutionContext) -> None:
        self.paths_seen += 1
        ctx.state.observer_slot = _PathSlot(
            live=set(range(len(self._clients.predicates))))

    def on_constraint(self, ctx: ExecutionContext, constraint: Expr) -> bool:
        slot: _PathSlot = ctx.state.observer_slot
        pc = tuple(ctx.state.constraints)
        if self._flags.incremental_drop:
            self._drop_dead_predicates(pc, constraint, slot)
        if self._record_delta:
            slot.samples.append((len(pc), len(slot.live)))
        self.samples.append((len(pc), len(slot.live)))
        if self._flags.prune_unreachable and not self._trojan_feasible(
                pc, frozenset(slot.live)):
            self.paths_pruned += 1
            return False
        return True

    def on_path_end(self, ctx: ExecutionContext, result: PathResult) -> None:
        slot: _PathSlot = ctx.state.observer_slot
        cell = None
        if result.verdict == ACCEPTED:
            cell = self._witness_cell(result, slot)
        if self._record_delta:
            self._per_path.append((result.decisions, tuple(slot.samples),
                                   cell))

    def _witness_cell(self, result: PathResult,
                      slot: _PathSlot) -> _FindingCell | None:
        live = frozenset(slot.live)
        pc = result.constraints
        if not self._trojan_feasible(pc, live):
            return None  # accepting, but only by non-Trojan messages
        negation = self._negation_query(live)
        cell = _FindingCell(
            deferred=self._engine.solve_async(pc + negation),
            result=result, pc=pc, negation=negation,
            live=tuple(sorted(live)))
        self._cells.append(cell)
        if cell.deferred.done:
            self._materialize(cell)
        return cell

    def _materialize(self, cell: _FindingCell) -> None:
        model = cell.deferred.result()
        if model is None:  # pragma: no cover - guarded by trojan_feasible
            return
        witness = bytes(model.get(var, 0) for var in self._server_msg)
        cell.finding = TrojanFinding(
            server_path_id=cell.result.path_id,
            decisions=cell.result.decisions,
            path_condition=cell.pc,
            negation=cell.negation,
            witness=witness,
            live_predicates=cell.live,
            elapsed_seconds=time.perf_counter() - self._started,
            labels=cell.result.labels,
        )

    # -- deferred work / sharding protocol ----------------------------------------

    def finalize(self) -> None:
        """Join in-flight witness solves; (re)build ``findings`` in order."""
        for cell in self._cells:
            if cell.finding is None:
                self._materialize(cell)
        self.findings = [cell.finding for cell in self._cells
                         if cell.finding is not None]

    def delta(self) -> ObserverDelta | None:
        """Picklable snapshot of this instance's findings (see base class).

        None unless the observer was created with ``record_delta=True``.
        """
        if not self._record_delta:
            return None
        self.finalize()
        per_path = [
            (decisions,
             _TrojanPathRecord(samples=samples,
                               finding=cell.finding if cell else None))
            for decisions, samples, cell in self._per_path
        ]
        return ObserverDelta(
            per_path=per_path,
            counters={"paths_seen": self.paths_seen,
                      "paths_pruned": self.paths_pruned})

    def restore(self, delta: ObserverDelta,
                path_ids: dict[tuple[bool, ...], int]) -> None:
        """Rebuild findings/samples from a canonical shard-delta merge."""
        self.paths_seen = delta.counters.get("paths_seen", 0)
        self.paths_pruned = delta.counters.get("paths_pruned", 0)
        self.samples = []
        self.findings = []
        self._cells = []
        self._per_path = []
        for decisions, record in delta.per_path:
            self.samples.extend(record.samples)
            if record.finding is not None:
                self.findings.append(replace(
                    record.finding, server_path_id=path_ids[decisions]))

    # -- search internals --------------------------------------------------------------

    def _drop_dead_predicates(self, pc: tuple[Expr, ...], constraint: Expr,
                              slot: _PathSlot) -> None:
        # One probe batch per appended constraint: the ``pathS ∧ pathC_i``
        # re-checks for all live predicates are independent, so a parallel
        # service answers the cache misses concurrently; serially this is
        # the same per-predicate loop as always.
        indices = sorted(slot.live)
        answers = self._engine.probe_feasible_batch(
            pc, [self._combined[index] for index in indices])
        dropped_now = [index for index, feasible in zip(indices, answers)
                       if not feasible]
        for index in dropped_now:
            slot.live.discard(index)
        if not (self._flags.use_different_from and dropped_now):
            return
        constraint_field = single_field_of(
            constraint, self._server_msg, self._clients.layout)
        if constraint_field is None:
            return
        for index in dropped_now:
            for other in self._clients.different_from.droppable_with(
                    index, constraint_field):
                slot.live.discard(other)

    def _negation_query(self, live: frozenset[int]) -> tuple[Expr, ...]:
        """Negations of the live predicates; dropped ones are implicit."""
        if self._flags.incremental_drop:
            indices = sorted(live)
        else:
            indices = range(len(self._negation_exprs))
        return tuple(self._negation_exprs[i] for i in indices)

    def _trojan_feasible(self, pc: tuple[Expr, ...],
                         live: frozenset[int]) -> bool:
        key = (pc, live if self._flags.incremental_drop else frozenset())
        cached = self._trojan_cache.get(key)
        if cached is None:
            cached = self._engine.is_feasible(pc + self._negation_query(live))
            self._trojan_cache[key] = cached
        return cached


def _shard_setup(engine: Engine, server, clients: ClientPredicateSet,
                 server_msg: tuple[Expr, ...],
                 flags: OptimizationFlags | None, msg_name: str,
                 record_delta: bool = False):
    """Build one shard's (program, observer) pair on its private engine.

    Module-level (and its args picklable) so the shard scheduler can ship
    it to worker processes under any multiprocessing start method.
    """
    observer = TrojanSearchObserver(engine, clients, server_msg, flags,
                                    record_delta=record_delta)

    def program(ctx: ExecutionContext) -> None:
        wire = tuple(ctx.fresh_bytes(msg_name, len(server_msg)))
        server(ctx, wire)

    return program, observer


def search_server(server, clients: ClientPredicateSet,
                  server_msg: tuple[Expr, ...],
                  engine_config: EngineConfig | None = None,
                  flags: OptimizationFlags | None = None,
                  msg_name: str = "msg",
                  query_cache: QueryCache | None = None,
                  service=None,
                  shards: int = 1,
                  transport: str | None = None,
                  hosts: tuple = (),
                  on_worker_loss: str = "fail",
                  max_worker_retries: int = 2,
                  run_dir: str | None = None,
                  checkpoint_interval: int = 1,
                  resume: bool = False,
                  trace_dir: str | None = None,
                  progress: bool = False,
                  checkpoint_hook=None,
                  ) -> tuple[AchillesReport, ExplorationResult]:
    """Explore a server program under the incremental Trojan search.

    Args:
        server: callable ``server(ctx, msg)`` receiving the symbolic
            message byte vector.
        clients: preprocessed ``PC``.
        server_msg: message variables (must match what the wrapped
            program will receive — see :func:`wrap_server`).
        engine_config: exploration limits.
        flags: optimization switches.
        msg_name: base name used when materializing the message vars.
        query_cache: shared canonical query cache (the orchestrator passes
            the phase-1 cache here so cross-phase queries hit).
        service: optional :class:`~repro.solver.service.SolverService`;
            when parallel, the observer's per-constraint predicate
            re-checks dispatch their cache misses across its worker pool
            and witness solves overlap with exploration as async futures.
            Worker-side counters accumulated during this search are merged
            into the report.
        shards: exploration shard count. 1 (the default) walks the path
            tree in-process; > 1 partitions it by decision prefixes
            across that many worker processes
            (:class:`~repro.explore.scheduler.ShardScheduler`) with
            work-stealing, and the deterministic merge makes findings
            byte-identical to the serial walk. Query-cache counters then
            describe the coordinator's seed phase only (shard workers
            warm private caches), while query/frame/propagation counters
            include the per-shard solver work.
        transport: where sharded workers live — a
            :class:`~repro.explore.transport.Transport` instance,
            ``"local"`` / ``"tcp"``, or None (tcp when ``hosts`` are
            given, local otherwise). Ignored for ``shards == 1``.
        hosts: ``"host:port"`` addresses of running
            ``python -m repro worker`` daemons for the TCP transport.
        on_worker_loss: ``"fail"`` (default) raises when a shard worker
            dies silently mid-search; ``"recover"`` reclaims and re-runs
            the lost prefixes (see
            :class:`~repro.explore.scheduler.ShardScheduler`) —
            findings stay byte-identical, and the report carries
            ``worker_failures``/``prefixes_reassigned``/
            ``recovery_seconds``.
        max_worker_retries: respawn attempts per lost worker before its
            slot is written off (``"recover"`` only).
        run_dir: when set (sharded runs only), journal completed shard
            assignments to ``run_dir/journal.wal``
            (:class:`~repro.explore.checkpoint.RunJournal`) so a killed
            coordinator can be resumed.
        checkpoint_interval: completed assignments per durable journal
            checkpoint.
        resume: replay ``run_dir``'s journal and explore only the
            outstanding regions; findings stay byte-identical to an
            uninterrupted run.
        trace_dir: when set, activate the structured tracer
            (:mod:`repro.obs.trace`) for the whole search and write the
            merged trace — coordinator spans, per-worker assignment
            deltas and the metrics trailer — to
            ``trace_dir/trace.jsonl``. Observational only: findings are
            byte-identical with tracing on or off.
        progress: print a periodic one-line fleet status to stderr
            (:class:`~repro.obs.progress.ProgressMeter`) while the
            search runs.
        checkpoint_hook: test seam — called with the checkpoint index
            after each durable checkpoint (see
            :class:`~repro.explore.faults.KillCoordinatorAt`).

    Returns:
        The (partially filled) report and the raw exploration result; the
        orchestrator merges in client stats and timings.
    """
    engine = Engine(engine_config or EngineConfig(), query_cache=query_cache,
                    service=service)
    if shards > 1 and engine.config.search_order != DFS:
        # The sharded merge renumbers paths in canonical prefix order,
        # which reproduces DFS completion order exactly — a serial BFS
        # run orders findings differently, so the byte-parity promise
        # cannot be kept for it. Fail loudly instead of quietly
        # reordering.
        raise AchillesError(
            f"sharded exploration requires the default {DFS!r} search "
            f"order (got {engine.config.search_order!r}): findings are "
            "only byte-identical across shard counts for DFS runs")

    tracer = None
    if trace_dir is not None:
        # Clear any tracer a failed earlier run left behind, then own a
        # fresh coordinator-sourced one for exactly this search.
        obs_trace.deactivate()
        tracer = obs_trace.activate(source="coordinator")
    meter = ProgressMeter() if progress else None

    service_mark = service.stats.copy() if service is not None else None
    started = time.perf_counter()
    shard_stats = None
    sharded = None
    try:
        if shards > 1:
            from repro.explore import ShardScheduler

            scheduler = ShardScheduler(
                _shard_setup,
                (server, clients, server_msg, flags, msg_name, True),
                shards=shards, engine=engine,
                transport=transport, hosts=hosts,
                on_worker_loss=on_worker_loss,
                max_worker_retries=max_worker_retries,
                run_dir=run_dir, checkpoint_interval=checkpoint_interval,
                resume=resume, checkpoint_hook=checkpoint_hook,
                trace=trace_dir is not None, progress=meter)
            sharded = scheduler.run()
            exploration = sharded.exploration
            observer = sharded.observer
            shard_stats = sharded.worker_solver_stats
        else:
            program, observer = _shard_setup(engine, server, clients,
                                             server_msg, flags, msg_name)
            control = (meter.serial_control(engine)
                       if meter is not None else None)
            if tracer is None:
                exploration = engine.explore(program, observer,
                                             control=control)
            else:
                with tracer.span("coordinator.explore", shards=1):
                    exploration = engine.explore(program, observer,
                                                 control=control)
            observer.finalize()
    except BaseException:
        if tracer is not None:
            obs_trace.deactivate()
        raise
    elapsed = time.perf_counter() - started

    # New answers this search produced become durable before the report
    # claims them — a crash after search_server returns loses nothing.
    engine.query_cache.flush_store()
    cache_stats = engine.query_cache.stats
    report = AchillesReport(
        findings=observer.findings,
        client_predicate_count=len(clients),
        predicate_samples=observer.samples,
        server_paths_explored=len(exploration.paths),
        server_paths_pruned=observer.paths_pruned,
        solver_queries=engine.solver.stats.queries,
        cache_hits=cache_stats.hits,
        cache_misses=cache_stats.misses,
        frames_reused=engine.solver.stats.frames_reused,
        propagation_seconds=engine.solver.stats.propagation_seconds,
        shards=shards,
        disk_hits=cache_stats.disk_hits,
        salvaged_records=cache_stats.salvaged_records,
        dropped_records=cache_stats.dropped_records,
    )
    if shard_stats is not None:
        report.solver_queries += shard_stats.queries
        report.frames_reused += shard_stats.frames_reused
        report.propagation_seconds += shard_stats.propagation_seconds
        report.worker_failures = sharded.worker_failures
        report.prefixes_reassigned = sharded.prefixes_reassigned
        report.recovery_seconds = sharded.recovery_seconds
        report.checkpoints_written = sharded.journal_checkpoints
        report.resumed_regions = sharded.resumed_regions
    if service_mark is not None:
        _merge_service_stats(report, service, service_mark)
    report.timings.server_analysis = elapsed
    if meter is not None:
        if sharded is not None:
            meter.note(steals=sharded.steals,
                       failures=report.worker_failures)
        meter.close()
    if tracer is not None:
        obs_trace.deactivate()
        worker_deltas = sharded.worker_traces if sharded is not None else None
        _write_run_trace(tracer, trace_dir, worker_deltas, report)
    return report, exploration


def _write_run_trace(tracer, trace_dir, worker_deltas, report) -> None:
    """Finalize one search's trace: fold worker metrics and run-level
    counters into the coordinator registry, merge coordinator records
    with the per-worker deltas deterministically, and write the framed
    JSONL file with a metrics trailer record."""
    registry = tracer.metrics
    for deltas in (worker_deltas or {}).values():
        for delta in deltas:
            if delta.metrics:
                registry.absorb(delta.metrics)
    run_counters = {
        "cache.hits": report.cache_hits,
        "cache.misses": report.cache_misses,
        "cache.disk_hits": report.disk_hits,
        "cache.salvaged_records": report.salvaged_records,
        "solver.queries": report.solver_queries,
        "solver.frames_reused": report.frames_reused,
        "run.worker_failures": report.worker_failures,
        "run.prefixes_reassigned": report.prefixes_reassigned,
        "run.journal_checkpoints": report.checkpoints_written,
    }
    for name, value in run_counters.items():
        if value:
            registry.add(name, value)
    if report.recovery_seconds:
        registry.gauge("run.recovery_seconds").set(report.recovery_seconds)
    tracer.flush_aggregates()
    merged = merge_traces(tracer.records, worker_deltas)
    merged.append(metrics_record(registry.snapshot()))
    write_trace(Path(trace_dir) / TRACE_FILE_NAME, merged)


def _merge_service_stats(report: AchillesReport, service,
                         mark) -> None:
    """Fold worker-side counters (since ``mark``) into the report.

    Queries dispatched to the pool run against per-worker solvers, so
    their solve-side counters (queries, frames, propagation seconds)
    never touch the phase-2 engine's ``SolverStats``; merging the
    deterministic worker aggregate keeps ``solver_queries`` and
    ``propagation_seconds`` meaning the same thing at any worker count.

    The worker-side *cache* counters are deliberately not folded in:
    ``report.cache_hits/misses`` describe the run's shared canonical
    cache, which sees the exact same lookup traffic at any worker count —
    adding the workers' private warm-up caches on top would make
    ``cache_hit_rate`` an artifact of chunk placement instead of a
    property of the workload.
    """
    worker = service.stats.delta_since(mark)
    report.solver_queries += worker.queries
    report.frames_reused += worker.frames_reused
    report.propagation_seconds += worker.propagation_seconds
    report.workers = service.workers


def a_posteriori_search(server, clients: ClientPredicateSet,
                        server_msg: tuple[Expr, ...],
                        engine_config: EngineConfig | None = None,
                        msg_name: str = "msg",
                        query_cache: QueryCache | None = None,
                        service=None) -> AchillesReport:
    """The §6.4 non-optimized baseline: explore first, difference after.

    Runs vanilla symbolic execution of the server (no per-path predicate
    tracking, no pruning), then checks every accepting path against the
    full conjunction of all client negations. The per-path Trojan probes
    are mutually independent, so with a parallel service they dispatch
    through :meth:`~repro.symex.engine.Engine.solve_batch` across the
    worker pool — which mirrors the serial ``engine.solve`` cache
    semantics query by query, so findings stay in path order with
    witnesses byte-identical at any worker count.
    """
    engine = Engine(engine_config or EngineConfig(), query_cache=query_cache,
                    service=service)

    def program(ctx: ExecutionContext) -> None:
        wire = tuple(ctx.fresh_bytes(msg_name, len(server_msg)))
        server(ctx, wire)

    service_mark = service.stats.copy() if service is not None else None
    started = time.perf_counter()
    exploration = engine.explore(program)
    negations = tuple(n.expr for n in clients.negations)
    report = AchillesReport(
        client_predicate_count=len(clients),
        server_paths_explored=len(exploration.paths),
    )
    accepting = [p for p in exploration.paths if p.verdict == ACCEPTED]
    models = engine.solve_batch(
        [path.constraints + negations for path in accepting])
    for path, model in zip(accepting, models):
        if model is None:
            continue
        witness = bytes(model.get(var, 0) for var in server_msg)
        report.findings.append(TrojanFinding(
            server_path_id=path.path_id,
            decisions=path.decisions,
            path_condition=path.constraints,
            negation=negations,
            witness=witness,
            live_predicates=tuple(range(len(clients))),
            elapsed_seconds=time.perf_counter() - started,
            labels=path.labels,
        ))
    report.timings.server_analysis = time.perf_counter() - started
    report.solver_queries = engine.solver.stats.queries
    report.cache_hits = engine.query_cache.stats.hits
    report.cache_misses = engine.query_cache.stats.misses
    report.frames_reused = engine.solver.stats.frames_reused
    report.propagation_seconds = engine.solver.stats.propagation_seconds
    if service_mark is not None:
        _merge_service_stats(report, service, service_mark)
    return report
