"""Baselines the paper compares Achilles against (§6.2).

* :mod:`~repro.baselines.classic` — vanilla symbolic execution of the
  server alone: finds every accepted message class but cannot tell Trojan
  from valid, burying the 80 true positives under thousands of false
  ones;
* :mod:`~repro.baselines.fuzzer` — black-box random fuzzing against the
  concrete server: measured throughput plus the closed-form expected
  Trojan yield, reproducing the paper's "orders of magnitude worse"
  arithmetic.
"""

from repro.baselines.classic import ClassicResult, classic_symbolic_execution
from repro.baselines.fuzzer import FuzzCampaign, FuzzResult, expected_trojans_per_hour

__all__ = [
    "ClassicResult",
    "FuzzCampaign",
    "FuzzResult",
    "classic_symbolic_execution",
    "expected_trojans_per_hour",
]
