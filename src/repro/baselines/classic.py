"""Classic symbolic execution baseline (§6.2, Table 1).

Vanilla symbolic execution explores the server alone and reports the
messages its accepting paths admit. It finds every Trojan — they are
somewhere in the accepted space — but has no client predicate to
difference against, so it also reports every *valid* accepted message:
the human operator is left to sift. The paper quantifies this as 80 true
positives against 7,520 false positives on FSP.

To make "reporting the accepted space" concrete, the baseline enumerates
per accepting path all models over a small probe alphabet for the
symbolic payload bytes (SMT solvers cannot cheaply enumerate full
domains, as the paper notes). Scoring against the ground-truth oracle
then yields the Table 1 shape: all Trojan classes found, drowned in
orders-of-magnitude more non-Trojan messages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.messages.layout import MessageLayout
from repro.messages.symbolic import message_vars
from repro.solver import ast
from repro.solver.ast import Expr
from repro.solver.enumerate import iter_models
from repro.symex.context import ExecutionContext
from repro.symex.engine import Engine, EngineConfig
from repro.symex.state import ACCEPTED

#: Default probe alphabet: NUL plus a few printable characters (including
#: '*'). Small enough to enumerate, rich enough to hit every path class.
PROBE_ALPHABET = (0, ord("*"), ord("A"), ord("z"))


@dataclass
class ClassicResult:
    """Output of the classic-symbolic-execution baseline.

    Attributes:
        accepting_paths: number of accepting server paths found.
        messages: concrete accepted messages enumerated from those paths.
        elapsed_seconds: wall-clock analysis time.
        paths_explored: total paths (accepting + rejecting).
    """

    accepting_paths: int = 0
    messages: list[bytes] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    paths_explored: int = 0


def classic_symbolic_execution(server, layout: MessageLayout,
                               engine_config: EngineConfig | None = None,
                               alphabet: tuple[int, ...] = PROBE_ALPHABET,
                               per_path_limit: int = 4096,
                               msg_name: str = "msg") -> ClassicResult:
    """Explore the server alone and enumerate its accepted messages.

    Args:
        server: ``server(ctx, msg)`` node program (same as Achilles uses).
        layout: wire layout (defines the message variables).
        engine_config: exploration limits.
        alphabet: probe values for each *free* message byte during
            enumeration; constrained bytes take whatever values the path
            condition forces.
        per_path_limit: cap on enumerated models per accepting path.
    """
    engine = Engine(engine_config or EngineConfig())
    server_msg = message_vars(layout, msg_name)

    def program(ctx: ExecutionContext) -> None:
        wire = tuple(ctx.fresh_bytes(msg_name, layout.total_size))
        server(ctx, wire)

    started = time.perf_counter()
    exploration = engine.explore(program)
    result = ClassicResult(paths_explored=len(exploration.paths))

    for path in exploration.paths:
        if path.verdict != ACCEPTED:
            continue
        result.accepting_paths += 1
        base = engine.solve(path.constraints)
        if base is None:  # pragma: no cover - accepting paths are feasible
            continue
        # Each byte probes the alphabet plus whatever the path itself
        # pins (stub constants etc. lie outside the generic alphabet).
        membership = []
        for var in server_msg:
            options = sorted(set(alphabet) | {base.get(var, 0)})
            membership.append(ast.any_of(
                [ast.eq(var, ast.bv_const(v, 8)) for v in options]))
        constraints = list(path.constraints) + membership
        result.messages.extend(
            _enumerate_capped(constraints, server_msg, per_path_limit))
    result.elapsed_seconds = time.perf_counter() - started
    return result


def _enumerate_capped(constraints: list[Expr],
                      server_msg: tuple[Expr, ...],
                      cap: int) -> list[bytes]:
    """Enumerate up to ``cap`` concrete messages, stopping quietly at it."""
    messages: list[bytes] = []
    for model in iter_models(constraints, list(server_msg), limit=cap + 1):
        messages.append(bytes(model.get(var, 0) for var in server_msg))
        if len(messages) >= cap:
            break
    return messages
