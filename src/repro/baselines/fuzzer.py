"""Black-box fuzzing baseline (§6.2).

The paper compares Achilles against naive random fuzzing analytically:
measure the fuzzer's raw throughput, compute the density of Trojan
messages in the fuzzed space, and multiply — on their testbed, 75,000
tests/minute against a Trojan density of ``6.6e7 / 256^8`` yields an
expected 0.00001 Trojans per hour.

:class:`FuzzCampaign` reproduces both halves on this substrate: a real
random campaign against the concrete oracle (measured throughput,
accepted/Trojan tallies) and the closed-form expectation for any time
budget.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

#: Accept/Trojan oracles over raw wire bytes.
Oracle = Callable[[bytes], bool]


@dataclass
class FuzzResult:
    """Outcome of a timed random-fuzzing campaign.

    Attributes:
        tests: messages generated and executed.
        accepted: messages the server accepted (all of which a naive
            fuzzer must report, hence the paper counting non-Trojan
            accepts as false positives).
        trojans_found: accepted messages that are genuine Trojans.
        elapsed_seconds: campaign wall-clock time.
    """

    tests: int = 0
    accepted: int = 0
    trojans_found: int = 0
    elapsed_seconds: float = 0.0

    @property
    def tests_per_minute(self) -> float:
        if self.elapsed_seconds == 0:
            return 0.0
        return self.tests / self.elapsed_seconds * 60.0

    @property
    def false_positives(self) -> int:
        return self.accepted - self.trojans_found


class FuzzCampaign:
    """Random message fuzzing against concrete accept/Trojan oracles.

    Args:
        template: a concrete base message; bytes outside the randomized
            positions keep their template values. The paper fuzzes "the
            same message fields that are analyzed by Achilles", holding
            the stubbed session fields fixed — pass those as template
            content and list only the analyzed bytes in ``positions``.
        positions: byte offsets the fuzzer randomizes; None randomizes
            the whole message.
        accepts: the server's accept predicate (concrete reference).
        is_trojan: ground-truth Trojan oracle.
        seed: RNG seed for reproducibility.
    """

    def __init__(self, template: bytes, accepts: Oracle, is_trojan: Oracle,
                 positions: list[int] | None = None, seed: int = 20140301):
        self._template = bytearray(template)
        self._positions = (list(range(len(template)))
                           if positions is None else list(positions))
        for position in self._positions:
            if not 0 <= position < len(template):
                raise ValueError(f"position {position} outside the message")
        self._accepts = accepts
        self._is_trojan = is_trojan
        self._random = random.Random(seed)

    @property
    def randomized_bits(self) -> int:
        """log2 of the fuzzed space size (for the yield arithmetic)."""
        return 8 * len(self._positions)

    def generate(self) -> bytes:
        """One random test message."""
        message = bytearray(self._template)
        for position in self._positions:
            message[position] = self._random.randrange(256)
        return bytes(message)

    def run_tests(self, count: int) -> FuzzResult:
        """Run a fixed number of random tests."""
        result = FuzzResult()
        started = time.perf_counter()
        for _ in range(count):
            message = self.generate()
            result.tests += 1
            if self._accepts(message):
                result.accepted += 1
                if self._is_trojan(message):
                    result.trojans_found += 1
        result.elapsed_seconds = time.perf_counter() - started
        return result

    def run_for(self, seconds: float) -> FuzzResult:
        """Run tests until the time budget expires."""
        result = FuzzResult()
        started = time.perf_counter()
        while time.perf_counter() - started < seconds:
            message = self.generate()
            result.tests += 1
            if self._accepts(message):
                result.accepted += 1
                if self._is_trojan(message):
                    result.trojans_found += 1
        result.elapsed_seconds = time.perf_counter() - started
        return result


def expected_trojans_per_hour(tests_per_minute: float, trojan_messages: int,
                              space_bits: int) -> float:
    """The paper's closed-form fuzzing yield (§6.2).

    Args:
        tests_per_minute: measured fuzzer throughput.
        trojan_messages: number of Trojan bit patterns in the randomized
            space (66 million for FSP's 8 relevant bytes).
        space_bits: log2 of the randomized space size (64 for 8 bytes).

    Returns:
        Expected number of Trojan messages found in one hour.
    """
    density = trojan_messages / float(1 << space_bits)
    return tests_per_minute * 60.0 * density
