"""Shared infrastructure for the evaluation benchmarks.

The ``benchmarks/`` tree regenerates every table and figure of the
paper's §6; the reusable pieces live here so the examples can drive the
same experiments:

* :mod:`~repro.bench.tables` — plain-text table/series rendering in the
  paper's shapes;
* :mod:`~repro.bench.experiments` — one driver function per experiment,
  returning structured results the benchmarks assert on and print.
"""

from repro.bench.tables import format_series, format_table
from repro.bench.experiments import (
    AccuracyOutcome,
    FuzzingOutcome,
    PbftOutcome,
    run_ablation,
    run_classic_baseline,
    run_fsp_accuracy,
    run_fsp_wildcard,
    run_fuzzing_comparison,
    run_pbft_analysis,
    run_pbft_impact,
)

__all__ = [
    "AccuracyOutcome",
    "FuzzingOutcome",
    "PbftOutcome",
    "format_series",
    "format_table",
    "run_ablation",
    "run_classic_baseline",
    "run_fsp_accuracy",
    "run_fsp_wildcard",
    "run_fuzzing_comparison",
    "run_pbft_analysis",
    "run_pbft_impact",
]
