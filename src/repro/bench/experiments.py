"""Experiment drivers — one per table/figure of the paper's §6.

Each driver runs a complete experiment at laptop scale and returns a
structured outcome; the benchmark files print the paper-shaped rows and
assert the qualitative claims (who wins, by what rough factor, where the
curves bend). Absolute times differ from the paper's 16-core testbed by
construction — the shapes are what reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.achilles import Achilles, AchillesConfig, FieldMask, OptimizationFlags
from repro.achilles.report import AchillesReport
from repro.achilles.server_analysis import a_posteriori_search
from repro.baselines.classic import ClassicResult, classic_symbolic_execution
from repro.baselines.fuzzer import FuzzCampaign, FuzzResult, expected_trojans_per_hour
from repro.messages.concrete import encode
from repro.systems import fsp
from repro.systems.fsp.protocol import STUBS
from repro.systems.pbft import (
    MAC_STUB,
    REQUEST_LAYOUT,
    pbft_client,
    pbft_replica,
    run_workload,
)
from repro.systems.pbft.cluster import ClusterStats
from repro.symex.engine import EngineConfig

#: The §6.1 annotation mask: session fields are stubbed, not analyzed.
FSP_SESSION_MASK = FieldMask.hide("sum", "bb_key", "bb_seq", "bb_pos")


def make_engine_config(search_order: str | None = None,
                       max_paths: int | None = None) -> EngineConfig:
    """An :class:`EngineConfig` with the CLI's exploration overrides applied."""
    config = EngineConfig()
    if search_order is not None:
        config.search_order = search_order
    if max_paths is not None:
        config.max_paths = max_paths
    return config


@dataclass
class AccuracyOutcome:
    """One full Achilles run scored against a system's seeded ground truth."""

    report: AchillesReport
    true_positives: int
    false_positives: int
    classes_found: int
    classes_total: int

    @property
    def coverage(self) -> float:
        return self.classes_found / self.classes_total

    @property
    def precision(self) -> float:
        """Fraction of reported witnesses that are genuine Trojans."""
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 0.0

    @property
    def recall(self) -> float:
        """Fraction of the seeded Trojan classes covered by a witness."""
        return self.classes_found / self.classes_total


def _fsp_achilles(optimizations: OptimizationFlags | None = None,
                  workers: int = 1, shards: int = 1,
                  search_order: str | None = None,
                  max_paths: int | None = None,
                  transport="local",
                  hosts: tuple = (),
                  on_worker_loss: str = "fail",
                  cache_dir: str | None = None,
                  run_dir: str | None = None,
                  checkpoint_interval: int = 1,
                  resume: bool = False,
                  trace_dir: str | None = None,
                  progress: bool = False) -> Achilles:
    config = AchillesConfig(layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
                            optimizations=optimizations or OptimizationFlags(),
                            client_engine=make_engine_config(search_order,
                                                             max_paths),
                            server_engine=make_engine_config(search_order,
                                                             max_paths),
                            workers=workers, shards=shards,
                            transport=transport, hosts=tuple(hosts),
                            on_worker_loss=on_worker_loss,
                            cache_dir=cache_dir, run_dir=run_dir,
                            checkpoint_interval=checkpoint_interval,
                            resume=resume, trace_dir=trace_dir,
                            progress=progress)
    return Achilles(config)


def run_fsp_accuracy(optimizations: OptimizationFlags | None = None,
                     workers: int = 1, shards: int = 1,
                     search_order: str | None = None,
                     max_paths: int | None = None,
                     transport="local",
                     hosts: tuple = (),
                     on_worker_loss: str = "fail",
                     cache_dir: str | None = None,
                     run_dir: str | None = None,
                     checkpoint_interval: int = 1,
                     resume: bool = False,
                     trace_dir: str | None = None,
                     progress: bool = False) -> AccuracyOutcome:
    """Table 1 (Achilles column) + Figures 10/11 raw data.

    ``workers`` > 1 dispatches the parallel batches (pre-processing and
    the per-path predicate re-checks) across a solver-service pool;
    ``shards`` > 1 additionally partitions the phase-2 path tree across
    exploration worker processes. Findings are byte-identical at any
    worker or shard count. ``search_order`` / ``max_paths`` override the
    default exploration policy for both phases. ``transport``/``hosts``
    choose where shard workers live (``"tcp"`` drives remote
    ``python -m repro worker`` daemons; findings stay byte-identical).
    ``cache_dir`` persists the canonical query cache across runs (a warm
    re-run only re-solves what changed); ``run_dir`` /
    ``checkpoint_interval`` / ``resume`` checkpoint the sharded phase-2
    search and continue it after a coordinator kill.
    """
    with _fsp_achilles(optimizations, workers, shards, search_order,
                       max_paths, transport, hosts, on_worker_loss,
                       cache_dir, run_dir, checkpoint_interval,
                       resume, trace_dir, progress) as achilles:
        predicates = achilles.extract_clients(fsp.literal_clients())
        report = achilles.search(fsp.fsp_server, predicates)
    score = fsp.GroundTruth.score(report.witnesses())
    return AccuracyOutcome(
        report=report,
        true_positives=score.true_positives,
        false_positives=score.false_positives,
        classes_found=len(score.classes_found),
        classes_total=len(fsp.all_trojan_classes()),
    )


def run_fsp_wildcard(listing: tuple[str, ...] = ("f1", "f2", "doc"),
                     workers: int = 1, shards: int = 1,
                     search_order: str | None = None,
                     max_paths: int | None = None,
                     transport="local",
                     hosts: tuple = (),
                     on_worker_loss: str = "fail",
                     cache_dir: str | None = None,
                     run_dir: str | None = None,
                     checkpoint_interval: int = 1,
                     resume: bool = False,
                     trace_dir: str | None = None,
                     progress: bool = False) -> AchillesReport:
    """§6.3 wildcard experiment: globbing clients, same server."""
    with _fsp_achilles(workers=workers, shards=shards,
                       search_order=search_order,
                       max_paths=max_paths, transport=transport,
                       hosts=hosts, on_worker_loss=on_worker_loss,
                       cache_dir=cache_dir, run_dir=run_dir,
                       checkpoint_interval=checkpoint_interval,
                       resume=resume, trace_dir=trace_dir,
                       progress=progress) as achilles:
        predicates = achilles.extract_clients(fsp.globbing_clients(listing))
        return achilles.search(fsp.fsp_server, predicates)


def run_classic_baseline(per_path_limit: int = 512) -> tuple[ClassicResult,
                                                             "fsp.GroundTruth"]:
    """Table 1 (classic symbolic execution column)."""
    result = classic_symbolic_execution(
        fsp.fsp_server, fsp.FSP_LAYOUT, per_path_limit=per_path_limit)
    score = fsp.GroundTruth.score(result.messages)
    return result, score


@dataclass
class FuzzingOutcome:
    """Measured fuzzing throughput plus the closed-form yield (§6.2)."""

    result: FuzzResult
    trojan_density_space_bits: int
    trojan_messages_in_space: int
    expected_trojans_in_one_hour: float
    paper_tests_per_minute: float = 75_000.0
    paper_expected_per_hour: float = 1.65e-5


def run_fuzzing_comparison(tests: int = 200_000) -> FuzzingOutcome:
    """§6.2 fuzzing comparison on the same 8 relevant bytes.

    The fuzzer randomizes cmd, bb_len and buf (8 bytes) while holding the
    stubbed session fields at their constants, exactly as the paper
    scopes it ("we only fuzz the same message fields that are analyzed").
    """
    template = encode(fsp.FSP_LAYOUT, {
        "cmd": 0, "sum": STUBS["sum"], "bb_key": STUBS["bb_key"],
        "bb_seq": STUBS["bb_seq"], "bb_len": 0, "bb_pos": STUBS["bb_pos"],
        "buf": b"\x00" * fsp.PATH_SPACE,
    })
    positions = (list(fsp.FSP_LAYOUT.view("cmd").byte_range)
                 + list(fsp.FSP_LAYOUT.view("bb_len").byte_range)
                 + list(fsp.FSP_LAYOUT.view("buf").byte_range))
    campaign = FuzzCampaign(
        template,
        accepts=fsp.is_server_accepted,
        is_trojan=lambda m: fsp.classify_message(m) is not None,
        positions=positions)
    result = campaign.run_tests(tests)

    trojan_count = _count_trojan_bit_patterns()
    expected = expected_trojans_per_hour(
        result.tests_per_minute, trojan_count, campaign.randomized_bits)
    return FuzzingOutcome(
        result=result,
        trojan_density_space_bits=campaign.randomized_bits,
        trojan_messages_in_space=trojan_count,
        expected_trojans_in_one_hour=expected,
    )


def _count_trojan_bit_patterns() -> int:
    """Closed-form count of Trojan bit patterns in the fuzzed space.

    For class (cmd, L, t): positions t and L are NUL, characters before t
    are printable (94 choices), bytes strictly between t and L and after
    L are unconstrained *except* that the scan never reaches them — the
    accept predicate leaves them free (256 choices each). The paper's
    equivalent count for real FSP is 66 million.
    """
    printable = 94
    free = 256
    total = 0
    for cls in fsp.all_trojan_classes():
        length, true_length = cls.reported_length, cls.true_length
        buf_positions = fsp.PATH_SPACE
        pinned = {true_length, length}
        before = true_length  # printable characters
        rest = buf_positions - before - len(pinned)
        total += (printable ** before) * (free ** rest)
    return total


def run_ablation() -> dict[str, AchillesReport]:
    """§6.4: optimized Achilles vs the a-posteriori differencing run.

    Also includes single-optimization-off variants (the design-choice
    ablation DESIGN.md calls out).
    """
    achilles = _fsp_achilles()
    predicates = achilles.extract_clients(fsp.literal_clients())

    outcomes: dict[str, AchillesReport] = {}
    outcomes["achilles-optimized"] = achilles.search(fsp.fsp_server,
                                                     predicates)

    for label, flags in {
        "no-differentfrom": OptimizationFlags(use_different_from=False),
        "no-pruning": OptimizationFlags(prune_unreachable=False),
        "no-incremental-drop": OptimizationFlags(incremental_drop=False,
                                                 use_different_from=False),
    }.items():
        variant = Achilles(AchillesConfig(
            layout=fsp.FSP_LAYOUT, mask=FSP_SESSION_MASK,
            optimizations=flags))
        variant_preds = variant.extract_clients(fsp.literal_clients())
        outcomes[label] = variant.search(fsp.fsp_server, variant_preds)

    posterior = a_posteriori_search(
        fsp.fsp_server, predicates, achilles.server_msg)
    posterior.timings.client_extraction = predicates.stats.extraction_seconds
    posterior.timings.preprocessing = predicates.stats.preprocess_seconds
    outcomes["a-posteriori"] = posterior
    return outcomes


@dataclass
class PbftOutcome:
    """PBFT analysis report plus the cluster impact sweep."""

    report: AchillesReport
    mac_stub: bytes
    impact: dict[str, ClusterStats] = field(default_factory=dict)


def run_pbft_analysis(workers: int = 1, shards: int = 1,
                      search_order: str | None = None,
                      max_paths: int | None = None,
                      transport="local",
                      hosts: tuple = (),
                      on_worker_loss: str = "fail",
                      cache_dir: str | None = None,
                      run_dir: str | None = None,
                      checkpoint_interval: int = 1,
                      resume: bool = False,
                      trace_dir: str | None = None,
                      progress: bool = False) -> AchillesReport:
    """§6.2 PBFT run: the MAC Trojan on every accepting path."""
    with Achilles(AchillesConfig(layout=REQUEST_LAYOUT,
                                 destination="replica0",
                                 client_engine=make_engine_config(
                                     search_order, max_paths),
                                 server_engine=make_engine_config(
                                     search_order, max_paths),
                                 workers=workers,
                                 shards=shards,
                                 transport=transport,
                                 hosts=tuple(hosts),
                                 on_worker_loss=on_worker_loss,
                                 cache_dir=cache_dir,
                                 run_dir=run_dir,
                                 checkpoint_interval=checkpoint_interval,
                                 resume=resume,
                                 trace_dir=trace_dir,
                                 progress=progress)) as achilles:
        predicates = achilles.extract_clients({"pbft-client": pbft_client})
        return achilles.search(pbft_replica, predicates)


def run_pbft_impact(requests: int = 40, workers: int = 1, shards: int = 1,
                    search_order: str | None = None,
                    max_paths: int | None = None,
                    transport="local",
                    hosts: tuple = (),
                    on_worker_loss: str = "fail",
                    cache_dir: str | None = None,
                    run_dir: str | None = None,
                    checkpoint_interval: int = 1,
                    resume: bool = False,
                    trace_dir: str | None = None,
                    progress: bool = False) -> PbftOutcome:
    """§6.3 MAC attack impact: throughput under increasing attack rates."""
    report = run_pbft_analysis(workers=workers, shards=shards,
                               search_order=search_order,
                               max_paths=max_paths, transport=transport,
                               hosts=hosts, on_worker_loss=on_worker_loss,
                               cache_dir=cache_dir, run_dir=run_dir,
                               checkpoint_interval=checkpoint_interval,
                               resume=resume, trace_dir=trace_dir,
                               progress=progress)
    outcome = PbftOutcome(report=report, mac_stub=MAC_STUB)
    for label, every in {"clean": 0, "attack-10%": 10, "attack-50%": 2}.items():
        outcome.impact[label] = run_workload(requests, malicious_every=every)
    return outcome


def _scored_accuracy_run(layout, destination: str, clients, server,
                         ground_truth, class_count: int,
                         workers: int, shards: int,
                         search_order: str | None,
                         max_paths: int | None,
                         transport="local",
                         hosts: tuple = (),
                         on_worker_loss: str = "fail",
                         cache_dir: str | None = None,
                         run_dir: str | None = None,
                         checkpoint_interval: int = 1,
                         resume: bool = False,
                         trace_dir: str | None = None,
                         progress: bool = False) -> AccuracyOutcome:
    """Full pipeline + ground-truth scoring, shared by raft and tpc."""
    config = AchillesConfig(layout=layout, destination=destination,
                            client_engine=make_engine_config(search_order,
                                                             max_paths),
                            server_engine=make_engine_config(search_order,
                                                             max_paths),
                            workers=workers, shards=shards,
                            transport=transport, hosts=tuple(hosts),
                            on_worker_loss=on_worker_loss,
                            cache_dir=cache_dir, run_dir=run_dir,
                            checkpoint_interval=checkpoint_interval,
                            resume=resume, trace_dir=trace_dir,
                            progress=progress)
    with Achilles(config) as achilles:
        predicates = achilles.extract_clients(clients)
        report = achilles.search(server, predicates)
    score = ground_truth.score(report.witnesses())
    return AccuracyOutcome(
        report=report,
        true_positives=score.true_positives,
        false_positives=score.false_positives,
        classes_found=len(score.classes_found),
        classes_total=class_count,
    )


def run_raft_accuracy(workers: int = 1, shards: int = 1,
                      search_order: str | None = None,
                      max_paths: int | None = None,
                      transport="local",
                      hosts: tuple = (),
                      on_worker_loss: str = "fail",
                      cache_dir: str | None = None,
                      run_dir: str | None = None,
                      checkpoint_interval: int = 1,
                      resume: bool = False,
                      trace_dir: str | None = None,
                      progress: bool = False) -> AccuracyOutcome:
    """Raft follower ingress vs the 9 seeded Trojan classes.

    Scores Achilles against :mod:`repro.systems.raft.ground_truth`
    (8 stale-term AppendEntries classes + 1 vote off-by-one); a perfect
    run has ``precision == recall == 1.0``. The parallel knobs behave as
    for FSP: findings are byte-identical at any worker/shard count.
    """
    from repro.systems import raft

    return _scored_accuracy_run(
        raft.RAFT_LAYOUT, "follower", raft.peer_clients(),
        raft.raft_follower, raft.GroundTruth,
        len(raft.all_trojan_classes()), workers, shards, search_order,
        max_paths, transport, hosts, on_worker_loss, cache_dir, run_dir,
        checkpoint_interval, resume, trace_dir, progress)


def run_broadcast_accuracy(workers: int = 1, shards: int = 1,
                           search_order: str | None = None,
                           max_paths: int | None = None,
                           transport="local",
                           hosts: tuple = (),
                           on_worker_loss: str = "fail",
                           cache_dir: str | None = None,
                           run_dir: str | None = None,
                           checkpoint_interval: int = 1,
                           resume: bool = False,
                           trace_dir: str | None = None,
                           progress: bool = False) -> AccuracyOutcome:
    """Bracha broadcast node ingress vs the 7 seeded Trojan classes.

    Scores Achilles against :mod:`repro.systems.broadcast.ground_truth`
    (1 forged-sender SEND class + 6 thin-quorum READY certificates); a
    perfect run has ``precision == recall == 1.0``.
    """
    from repro.systems import broadcast

    return _scored_accuracy_run(
        broadcast.BROADCAST_LAYOUT, "node", broadcast.peer_clients(),
        broadcast.broadcast_node, broadcast.GroundTruth,
        len(broadcast.all_trojan_classes()), workers, shards,
        search_order, max_paths, transport, hosts, on_worker_loss,
        cache_dir, run_dir, checkpoint_interval, resume, trace_dir,
        progress)


def run_corpus(corpus_seed: int = 0, variants: int = 12,
               templates: tuple[str, ...] | None = None,
               only: tuple[str, ...] = (),
               workers: int = 1, shards: int = 1,
               search_order: str | None = None,
               max_paths: int | None = None,
               transport="local",
               hosts: tuple = (),
               on_worker_loss: str = "fail",
               cache_dir: str | None = None,
               progress: bool = False):
    """Scenario-matrix corpus: generate, hunt and score system variants.

    Generates ``variants`` randomized systems from the registered
    templates (round-robin) under ``corpus_seed``, runs the full
    Achilles pipeline on each and scores it against the variant's own
    derived ground truth. ``only`` bypasses generation and rebuilds the
    given ``template:seed`` tokens instead — the reproduce-one-row path.

    Returns a :class:`repro.corpus.CorpusOutcome`; a healthy corpus has
    ``precision == recall == 1.0`` on every row.
    """
    from repro.corpus import (
        CorpusOutcome,
        VariantOutcome,
        bound_ground_truth,
        generate_corpus,
        parse_variant_token,
    )

    if only:
        systems = [parse_variant_token(token) for token in only]
    else:
        systems = generate_corpus(corpus_seed, variants, templates)
    results = []
    for variant in systems:
        outcome = _scored_accuracy_run(
            variant.layout, variant.destination, variant.clients,
            variant.server, bound_ground_truth(variant),
            len(variant.classes), workers, shards, search_order,
            max_paths, transport, hosts, on_worker_loss, cache_dir,
            None, 1, False, None, progress)
        results.append(VariantOutcome(variant=variant, outcome=outcome))
    return CorpusOutcome(corpus_seed=None if only else corpus_seed,
                         results=results)


def run_tpc_accuracy(workers: int = 1, shards: int = 1,
                     search_order: str | None = None,
                     max_paths: int | None = None,
                     transport="local",
                     hosts: tuple = (),
                     on_worker_loss: str = "fail",
                     cache_dir: str | None = None,
                     run_dir: str | None = None,
                     checkpoint_interval: int = 1,
                     resume: bool = False,
                     trace_dir: str | None = None,
                     progress: bool = False) -> AccuracyOutcome:
    """Two-phase-commit participant vs the 2 seeded Trojan classes.

    Scores Achilles against :mod:`repro.systems.tpc.ground_truth`
    (ack-without-WAL + empty-op prepare); a perfect run has
    ``precision == recall == 1.0``.
    """
    from repro.systems import tpc

    return _scored_accuracy_run(
        tpc.TPC_LAYOUT, "participant", tpc.coordinator_clients(),
        tpc.tpc_participant, tpc.GroundTruth,
        len(tpc.all_trojan_classes()), workers, shards, search_order,
        max_paths, transport, hosts, on_worker_loss, cache_dir, run_dir,
        checkpoint_interval, resume, trace_dir, progress)
