"""Plain-text rendering of tables and series for the benchmarks."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(part.ljust(width)
                         for part, width in zip(parts, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_series(points: Sequence[tuple[float, float]], title: str = "",
                  x_label: str = "x", y_label: str = "y",
                  width: int = 50) -> str:
    """Render an (x, y) series as a horizontal ASCII bar chart."""
    out = []
    if title:
        out.append(title)
    if not points:
        out.append("(no data)")
        return "\n".join(out)
    peak = max(y for _, y in points) or 1.0
    out.append(f"{x_label:>10}  {y_label}")
    for x, y in points:
        bar = "#" * max(1, int(round(width * y / peak)))
        out.append(f"{x:>10.3g}  {bar} {y:.3g}")
    return "\n".join(out)
