"""Scenario-matrix corpus — randomized seeded-bug systems at scale.

The accuracy workloads (:mod:`repro.systems.tpc`,
:mod:`repro.systems.raft`, :mod:`repro.systems.broadcast`) each pin one
hand-built system with known seeded bugs. This package turns each into
a *template*: a deterministic, seed-driven generator of system variants
that perturbs the message layout (field order, widths, reserved
fields), the protocol constants and the injected bug subset — and
derives the exact ground-truth oracle from the same drawn parameters,
so precision and recall stay exactly scorable across the whole matrix
(``python -m repro corpus run``).
"""

from repro.corpus.generate import (
    build_variant,
    generate_corpus,
    parse_variant_token,
    variant_seed,
)
from repro.corpus.report import (
    CorpusOutcome,
    VariantOutcome,
    corpus_payload,
    dump_payload,
    render_payload,
    variant_row,
)
from repro.corpus.templates import (
    TEMPLATES,
    BroadcastParams,
    RaftParams,
    SystemVariant,
    TpcParams,
    bound_ground_truth,
    build_broadcast_variant,
    build_raft_variant,
    build_tpc_variant,
)

__all__ = [
    "BroadcastParams",
    "CorpusOutcome",
    "RaftParams",
    "SystemVariant",
    "TEMPLATES",
    "TpcParams",
    "VariantOutcome",
    "bound_ground_truth",
    "build_broadcast_variant",
    "build_raft_variant",
    "build_tpc_variant",
    "build_variant",
    "corpus_payload",
    "dump_payload",
    "generate_corpus",
    "parse_variant_token",
    "render_payload",
    "variant_row",
]
