"""Deterministic corpus generation from a single run seed.

One corpus-level seed fans out into per-variant seeds through a stable
hash of ``corpus_seed / template / counter`` — so the corpus is
byte-reproducible across runs *and* any single variant can be rebuilt
from its printed ``template:seed`` token alone, without regenerating
the rest of the corpus.
"""

from __future__ import annotations

import zlib

from repro.corpus.templates import TEMPLATES, SystemVariant
from repro.errors import ReproError


def variant_seed(corpus_seed: int, template: str, counter: int) -> int:
    """The template's ``counter``-th variant seed under ``corpus_seed``."""
    return zlib.crc32(f"{corpus_seed}/{template}/{counter}".encode())


def build_variant(template: str, seed: int) -> SystemVariant:
    """Rebuild one variant from its ``template`` and ``seed``."""
    try:
        builder = TEMPLATES[template]
    except KeyError:
        known = ", ".join(sorted(TEMPLATES))
        raise ReproError(
            f"unknown template {template!r} (known: {known})") from None
    return builder(seed)


def parse_variant_token(token: str) -> SystemVariant:
    """Rebuild one variant from a ``template:seed`` token."""
    template, colon, seed_text = token.partition(":")
    if not colon or not seed_text.isdigit():
        raise ReproError(
            f"bad variant token {token!r}; expected TEMPLATE:SEED "
            "as printed in a corpus report")
    return build_variant(template, int(seed_text))


def generate_corpus(corpus_seed: int = 0, variants: int = 12,
                    templates: tuple[str, ...] | None = None,
                    ) -> list[SystemVariant]:
    """Generate ``variants`` systems, round-robin across the templates.

    Args:
        corpus_seed: the run-level seed; everything derives from it.
        variants: how many systems to generate.
        templates: template subset to draw from, in the given order;
            defaults to every registered template.
    """
    names = tuple(templates) if templates else tuple(TEMPLATES)
    if not names:
        raise ReproError("at least one template is required")
    for name in names:
        if name not in TEMPLATES:
            build_variant(name, 0)  # raises with the known-template list
    return [build_variant(names[index % len(names)],
                          variant_seed(corpus_seed,
                                       names[index % len(names)],
                                       index // len(names)))
            for index in range(variants)]
