"""Corpus scoring: per-variant rows, summary and deterministic JSON.

The JSON payload carries only run-independent data (parameters, witness
bytes, scores) — no wall clocks, no absolute paths — so two runs of the
same corpus seed produce byte-identical files; the acceptance check
diffs them. Timings appear in the rendered table only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.bench.experiments import AccuracyOutcome
from repro.bench.tables import format_table
from repro.corpus.templates import SystemVariant


@dataclass
class VariantOutcome:
    """One corpus variant's hunt, scored against its derived oracle."""

    variant: SystemVariant
    outcome: AccuracyOutcome

    @property
    def perfect(self) -> bool:
        return self.outcome.precision == 1.0 and self.outcome.recall == 1.0


@dataclass
class CorpusOutcome:
    """A full corpus run; ``corpus_seed`` is None for --variant reruns."""

    corpus_seed: int | None
    results: list[VariantOutcome]

    @property
    def perfect(self) -> bool:
        return all(result.perfect for result in self.results)


def variant_row(result: VariantOutcome) -> dict:
    """The deterministic report record of one scored variant."""
    variant, outcome = result.variant, result.outcome
    witnesses = [finding.witness.hex()
                 for finding in outcome.report.findings]
    found = sorted({label for label in map(variant.classify,
                                           outcome.report.witnesses())
                    if label is not None})
    return {
        "token": variant.token,
        "template": variant.template,
        "seed": variant.seed,
        "layout": " | ".join(f"{f.name}({f.size})"
                             for f in variant.layout.fields),
        "bugs": sorted(variant.bugs),
        "params": variant.params,
        "classes": sorted(variant.classes),
        "classes_found": found,
        "classes_total": len(variant.classes),
        "true_positives": outcome.true_positives,
        "false_positives": outcome.false_positives,
        "precision": outcome.precision,
        "recall": outcome.recall,
        "witnesses": witnesses,
        "perfect": result.perfect,
    }


def corpus_payload(corpus: CorpusOutcome) -> dict:
    """The complete corpus report as a JSON-able, reproducible dict."""
    rows = [variant_row(result) for result in corpus.results]
    return {
        "corpus_seed": corpus.corpus_seed,
        "variants": len(rows),
        "templates": sorted({row["template"] for row in rows}),
        "perfect_variants": sum(row["perfect"] for row in rows),
        "total_witnesses": sum(len(row["witnesses"]) for row in rows),
        "false_positives": sum(row["false_positives"] for row in rows),
        "all_perfect": corpus.perfect,
        "results": rows,
    }


def dump_payload(payload: dict) -> str:
    """Serialize a corpus payload byte-reproducibly."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_payload(payload: dict, seconds: dict[str, float] | None = None,
                   ) -> str:
    """The human report: score table plus the corpus health block.

    Args:
        payload: a :func:`corpus_payload` dict (fresh or re-read from a
            ``--out`` file).
        seconds: optional per-token wall-clock seconds (live runs only;
            a re-rendered report shows ``-``).
    """
    seconds = seconds or {}
    rows = []
    for row in payload["results"]:
        time_cell = (f"{seconds[row['token']]:.1f}s"
                     if row["token"] in seconds else "-")
        rows.append([
            row["token"], ",".join(row["bugs"]),
            f"{len(row['classes_found'])}/{row['classes_total']}",
            row["true_positives"], row["false_positives"],
            f"{row['precision']:.2f}", f"{row['recall']:.2f}",
            time_cell,
        ])
    table = format_table(
        ["variant", "seeded bugs", "classes", "tp", "fp", "precision",
         "recall", "time"],
        rows, title="Scenario-matrix corpus vs derived ground truth")
    seed = payload["corpus_seed"]
    lines = [table, "", "corpus run health:",
             f"  corpus seed          "
             f"{'-' if seed is None else seed}",
             f"  variants             {payload['variants']}",
             f"  templates            "
             f"{', '.join(payload['templates'])}",
             f"  perfect variants     "
             f"{payload['perfect_variants']}/{payload['variants']}",
             f"  total witnesses      {payload['total_witnesses']}",
             f"  false positives      {payload['false_positives']}"]
    if payload["results"]:
        token = payload["results"][0]["token"]
        lines.append(
            "  reproduce any row:   python -m repro corpus run "
            f"--variant TOKEN (e.g. {token})")
    return "\n".join(lines)
