"""Parameterized system templates for the scenario-matrix corpus.

Each template generalizes one hand-built workload
(:mod:`repro.systems.tpc`, :mod:`repro.systems.raft`,
:mod:`repro.systems.broadcast`) into a family of randomized variants: a
``random.Random(variant_seed)`` draw fixes the message layout (field
order, widths, an optional must-be-zero reserved field), the protocol
constants (kind bytes, ids, terms, thresholds' anchors) and the seeded
bug subset from the system's bug menu — and the *same* drawn parameters
derive the symbolic client/server programs **and** the exact
ground-truth oracle, so every variant stays precisely scorable.

The node programs and oracles are callable dataclasses (not closures)
so a variant survives pickling: sharded runs ship the server program to
exploration workers, over TCP included.

Variant Trojan classes are plain strings (``"prepare:skip-wal"``,
``"ready:thin-quorum(cert=0x05)"``): JSON-able for the corpus report,
orderable for deterministic tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Callable

from repro.messages.concrete import decode_ints
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import MessageBuilder, field_expr
from repro.solver import ast
from repro.systems.scoring import TrojanScore


@dataclass
class SystemVariant:
    """One generated system: programs + oracle derived from one seed."""

    template: str
    seed: int
    layout: MessageLayout
    destination: str
    clients: dict[str, Callable]
    server: Callable
    accepts: Callable[[bytes], bool]
    generable: Callable[[bytes], bool]
    classify: Callable[[bytes], str | None]
    classes: tuple[str, ...]
    bugs: tuple[str, ...]
    params: dict = dc_field(default_factory=dict)

    @property
    def token(self) -> str:
        """The reproduction handle: ``template:seed`` rebuilds this
        exact variant (``python -m repro corpus run --variant TOKEN``)."""
        return f"{self.template}:{self.seed}"


def bound_ground_truth(variant: SystemVariant) -> type[TrojanScore]:
    """A :class:`TrojanScore` subclass bound to the variant's oracle."""
    return type("VariantGroundTruth", (TrojanScore,), {
        "classify": staticmethod(variant.classify),
        "universe": staticmethod(lambda: list(variant.classes)),
    })


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _permuted_layout(rng: random.Random, name: str,
                     sizes: dict[str, int], pad_size: int) -> tuple:
    """Field order permutation plus an optional reserved field.

    Returns ``(layout, field_order, pad_size)``; the reserved ``pad``
    field (when present) must be zero on the wire — both sides check it,
    so it perturbs offsets without perturbing the Trojan space.
    """
    order = list(sizes)
    rng.shuffle(order)
    if pad_size:
        order.insert(rng.randrange(len(order) + 1), "pad")
        sizes = dict(sizes, pad=pad_size)
    layout = MessageLayout(name, [Field(n, sizes[n]) for n in order])
    return layout, tuple(order), pad_size


def _const(layout: MessageLayout, name: str, value: int):
    return ast.bv_const(value, layout.view(name).bit_width)


def _pad_ok(ctx, layout: MessageLayout, msg, pad_size: int) -> bool:
    """Symbolic must-be-zero check for the reserved field (if any)."""
    if not pad_size:
        return True
    pad = field_expr(msg, layout.view("pad"))
    if ctx.branch(ast.eq(pad, _const(layout, "pad", 0))):
        return True
    ctx.reject("reserved-nonzero")
    return False


def _member(layout, msg, name: str, ids: tuple[int, ...]):
    sender = field_expr(msg, layout.view(name))
    return ast.any_of([ast.eq(sender, _const(layout, name, node))
                       for node in ids])


# -- two-phase-commit template ------------------------------------------------

SKIP_WAL = "prepare:skip-wal"
EMPTY_OP = "prepare:empty-op"


@dataclass
class TpcParams:
    """Drawn constants of one two-phase-commit variant."""

    field_order: tuple[str, ...]
    txid_size: int
    pad_size: int
    prepare: int
    commit: int
    abort: int
    flag_durable: int
    no_op: int
    bugs: tuple[str, ...]

    def build_layout(self) -> MessageLayout:
        sizes = {"kind": 1, "txid": self.txid_size, "flags": 1, "op": 1,
                 "pad": self.pad_size}
        return MessageLayout("tpc-variant",
                             [Field(n, sizes[n]) for n in self.field_order])


@dataclass
class TpcVariantClient:
    """One correct-coordinator program of a tpc variant."""

    params: TpcParams
    which: str  # "prepare" | "commit" | "abort"

    def __call__(self, ctx) -> None:
        p = self.params
        layout = p.build_layout()
        txid = ctx.fresh_bitvec("txid", layout.view("txid").bit_width)
        if not ctx.branch(ast.ne(txid, _const(layout, "txid", 0))):
            return  # transaction ids start at 1
        builder = MessageBuilder(layout)
        builder.set("txid", txid)
        if p.pad_size:
            builder.set("pad", 0)
        if self.which == "prepare":
            op = ctx.fresh_byte("op")
            if not ctx.branch(ast.ne(op, ast.bv_const(p.no_op, 8))):
                return  # nothing to prepare for the empty operation
            builder.set("kind", p.prepare)
            builder.set("flags", p.flag_durable)
            builder.set("op", op)
        else:
            builder.set("kind", p.commit if self.which == "commit"
                        else p.abort)
            builder.set("flags", 0)
            builder.set("op", p.no_op)
        ctx.send("participant", builder.wire())


@dataclass
class TpcVariantServer:
    """The participant ingress of a tpc variant (bug subset applied)."""

    params: TpcParams

    def __call__(self, ctx, msg) -> None:
        p = self.params
        layout = p.build_layout()
        field = lambda name: field_expr(msg, layout.view(name))
        if not _pad_ok(ctx, layout, msg, p.pad_size):
            return
        if ctx.branch(ast.eq(field("kind"), _const(layout, "kind",
                                                   p.prepare))):
            self._handle_prepare(ctx, layout, field)
            return
        for kind, verb in ((p.commit, "commit"), (p.abort, "abort")):
            if ctx.branch(ast.eq(field("kind"),
                                 _const(layout, "kind", kind))):
                self._handle_close(ctx, layout, field, verb)
                return
        ctx.reject("unknown-kind")

    def _handle_prepare(self, ctx, layout, field) -> None:
        p = self.params
        if not ctx.branch(ast.ne(field("txid"), _const(layout, "txid", 0))):
            ctx.reject("zero-txid")
            return
        if EMPTY_OP not in p.bugs:
            # The fixed participant validates the operation payload.
            if not ctx.branch(ast.ne(field("op"),
                                     ast.bv_const(p.no_op, 8))):
                ctx.reject("empty-op")
                return
        flags = field("flags")
        if ctx.branch(ast.eq(flags, ast.bv_const(p.flag_durable, 8))):
            ctx.accept("prepare:logged")
            return
        if SKIP_WAL in p.bugs and ctx.branch(ast.eq(flags,
                                                    ast.bv_const(0, 8))):
            # Acked without the write-ahead record — the seeded bug.
            ctx.accept("prepare:ack-without-wal")
            return
        ctx.reject("bad-flags")

    def _handle_close(self, ctx, layout, field, verb: str) -> None:
        p = self.params
        if not ctx.branch(ast.ne(field("txid"), _const(layout, "txid", 0))):
            ctx.reject(f"{verb}:zero-txid")
            return
        if not ctx.branch(ast.eq(field("flags"), ast.bv_const(0, 8))):
            ctx.reject(f"{verb}:bad-flags")
            return
        if not ctx.branch(ast.eq(field("op"), ast.bv_const(p.no_op, 8))):
            ctx.reject(f"{verb}:bad-padding")
            return
        if verb == "commit":
            # Over-approximate prepared-set lookup (§3.4).
            width = layout.view("txid").bit_width
            prepared = ctx.fresh_bitvec("state:prepared_txid", width)
            if not ctx.branch(ast.eq(field("txid"), prepared)):
                ctx.reject("commit:not-prepared")
                return
        ctx.accept(verb)


@dataclass
class TpcVariantOracle:
    """Exact accept/generable/classify oracles of a tpc variant."""

    params: TpcParams

    def _fields(self, message: bytes) -> dict | None:
        layout = self.params.build_layout()
        if len(message) != layout.total_size:
            return None
        fields = decode_ints(layout, message)
        if self.params.pad_size and fields["pad"] != 0:
            return None
        return fields

    def accepts(self, message: bytes) -> bool:
        p = self.params
        fields = self._fields(message)
        if fields is None or fields["txid"] == 0:
            return False
        if fields["kind"] == p.prepare:
            if EMPTY_OP not in p.bugs and fields["op"] == p.no_op:
                return False
            allowed = {p.flag_durable}
            if SKIP_WAL in p.bugs:
                allowed.add(0)
            return fields["flags"] in allowed
        if fields["kind"] in (p.commit, p.abort):
            return fields["flags"] == 0 and fields["op"] == p.no_op
        return False

    def generable(self, message: bytes) -> bool:
        p = self.params
        fields = self._fields(message)
        if fields is None or fields["txid"] == 0:
            return False
        if fields["kind"] == p.prepare:
            return fields["flags"] == p.flag_durable and \
                fields["op"] != p.no_op
        if fields["kind"] in (p.commit, p.abort):
            return fields["flags"] == 0 and fields["op"] == p.no_op
        return False

    def classify(self, message: bytes) -> str | None:
        if not self.accepts(message) or self.generable(message):
            return None
        fields = self._fields(message)
        return SKIP_WAL if fields["flags"] == 0 else EMPTY_OP


def build_tpc_variant(seed: int) -> SystemVariant:
    """Draw one two-phase-commit variant from ``seed``."""
    rng = random.Random(seed)
    kinds = rng.sample(range(1, 256), 3)
    params = TpcParams(
        field_order=(),  # filled below (the draw fixes the permutation)
        txid_size=rng.choice([1, 2]),
        pad_size=rng.choice([0, 1, 2]),
        prepare=kinds[0], commit=kinds[1], abort=kinds[2],
        flag_durable=rng.randrange(1, 256),
        no_op=rng.randrange(256),
        bugs=_draw_bugs(rng, (SKIP_WAL, EMPTY_OP)),
    )
    sizes = {"kind": 1, "txid": params.txid_size, "flags": 1, "op": 1}
    _, order, _ = _permuted_layout(rng, "tpc-variant", sizes,
                                   params.pad_size)
    params.field_order = order
    oracle = TpcVariantOracle(params)
    classes = tuple(bug for bug in (SKIP_WAL, EMPTY_OP)
                    if bug in params.bugs)
    return SystemVariant(
        template="tpc", seed=seed, layout=params.build_layout(),
        destination="participant",
        clients={which: TpcVariantClient(params, which)
                 for which in ("prepare", "commit", "abort")},
        server=TpcVariantServer(params),
        accepts=oracle.accepts, generable=oracle.generable,
        classify=oracle.classify, classes=classes, bugs=params.bugs,
        params={"field_order": list(order), "txid_size": params.txid_size,
                "pad_size": params.pad_size,
                "kinds": {"prepare": params.prepare,
                          "commit": params.commit, "abort": params.abort},
                "flag_durable": params.flag_durable, "no_op": params.no_op},
    )


# -- raft template ------------------------------------------------------------

STALE_APPEND = "stale-append"
VOTE_OFF_BY_ONE = "vote-off-by-one"


@dataclass
class RaftParams:
    """Drawn constants of one raft variant (history stub included)."""

    field_order: tuple[str, ...]
    pad_size: int
    msg_append: int
    msg_vote: int
    node_ids: tuple[int, ...]
    current_term: int
    log_terms: tuple[int, ...]
    term_leaders: tuple[int, ...]  # leader of term t at index t-1
    commit_index: int
    bugs: tuple[str, ...]

    @property
    def last_index(self) -> int:
        return len(self.log_terms) - 1

    @property
    def last_term(self) -> int:
        return self.log_terms[-1]

    @property
    def candidate_logs(self) -> tuple[tuple[int, int], ...]:
        return tuple((index, self.log_terms[index])
                     for index in range(self.commit_index,
                                        self.last_index + 1))

    def leader_of(self, term: int) -> int:
        return self.term_leaders[term - 1]

    def build_layout(self) -> MessageLayout:
        sizes = {"type": 1, "term": 1, "sender": 1, "idx": 1,
                 "logterm": 1, "cmd": 1, "pad": self.pad_size}
        return MessageLayout("raft-variant",
                             [Field(n, sizes[n]) for n in self.field_order])


@dataclass
class RaftVariantClient:
    """One correct-peer program of a raft variant."""

    params: RaftParams
    which: str  # "leader" | "candidate"

    def __call__(self, ctx) -> None:
        p = self.params
        layout = p.build_layout()
        builder = MessageBuilder(layout)
        if p.pad_size:
            builder.set("pad", 0)
        if self.which == "leader":
            prev_index = ctx.fresh_byte("prev_index")
            for index in range(p.last_index + 1):
                if ctx.branch(ast.eq(prev_index, ast.bv_const(index, 8))):
                    builder.set("type", p.msg_append)
                    builder.set("term", p.current_term)
                    builder.set("sender", p.leader_of(p.current_term))
                    builder.set("idx", prev_index)
                    builder.set("logterm", p.log_terms[index])
                    builder.set("cmd", ctx.fresh_byte("command"))
                    ctx.send("follower", builder.wire())
                    return
            return  # nextIndex never points past the log
        candidate_id = ctx.fresh_byte("candidate_id")
        member = ast.any_of([ast.eq(candidate_id, ast.bv_const(n, 8))
                             for n in p.node_ids])
        if not ctx.branch(member):
            return
        replicated = ctx.fresh_byte("state:replicated_to")
        for last_index, last_term in p.candidate_logs:
            if ctx.branch(ast.eq(replicated, ast.bv_const(last_index, 8))):
                builder.set("type", p.msg_vote)
                builder.set("term", p.current_term)
                builder.set("sender", candidate_id)
                builder.set("idx", replicated)
                builder.set("logterm", last_term)
                builder.set("cmd", 0)
                ctx.send("follower", builder.wire())
                return
        # A correct node's log sits between the committed prefix and the
        # leader's log: no message on this path.


@dataclass
class RaftVariantServer:
    """The follower ingress of a raft variant (bug subset applied)."""

    params: RaftParams

    def __call__(self, ctx, msg) -> None:
        p = self.params
        layout = p.build_layout()
        field = lambda name: field_expr(msg, layout.view(name))
        if not _pad_ok(ctx, layout, msg, p.pad_size):
            return
        if ctx.branch(ast.eq(field("type"),
                             ast.bv_const(p.msg_append, 8))):
            self._handle_append(ctx, field)
            return
        if ctx.branch(ast.eq(field("type"), ast.bv_const(p.msg_vote, 8))):
            self._handle_vote(ctx, field)
            return
        ctx.reject("unknown-type")

    def _handle_append(self, ctx, field) -> None:
        p = self.params
        terms = range(1, p.current_term + 1) if STALE_APPEND in p.bugs \
            else range(p.current_term, p.current_term + 1)
        term = None
        term_field = field("term")
        for value in terms:
            if ctx.branch(ast.eq(term_field, ast.bv_const(value, 8))):
                term = value
                break
        if term is None:
            ctx.reject("bad-term")
            return
        if not ctx.branch(ast.eq(field("sender"),
                                 ast.bv_const(p.leader_of(term), 8))):
            ctx.reject("not-the-leader")
            return
        prev = None
        idx = field("idx")
        for index in range(p.last_index + 1):
            if ctx.branch(ast.eq(idx, ast.bv_const(index, 8))):
                prev = index
                break
        if prev is None:
            ctx.reject("prev-beyond-log")
            return
        if not ctx.branch(ast.eq(field("logterm"),
                                 ast.bv_const(p.log_terms[prev], 8))):
            ctx.reject("prev-term-mismatch")
            return
        if prev < p.commit_index:
            ctx.label("truncates-committed")
        ctx.accept(f"append:term{term}:prev{prev}")

    def _handle_vote(self, ctx, field) -> None:
        p = self.params
        if not ctx.branch(ast.eq(field("term"),
                                 ast.bv_const(p.current_term, 8))):
            ctx.reject("vote-wrong-term")
            return
        member = ast.any_of([ast.eq(field("sender"), ast.bv_const(n, 8))
                             for n in p.node_ids])
        if not ctx.branch(member):
            ctx.reject("unknown-candidate")
            return
        if not ctx.branch(ast.eq(field("cmd"), ast.bv_const(0, 8))):
            ctx.reject("bad-vote-padding")
            return
        if not ctx.branch(ast.eq(field("logterm"),
                                 ast.bv_const(p.last_term, 8))):
            ctx.reject("log-not-up-to-date")
            return
        last = None
        idx = field("idx")
        for index in range(p.last_index + 1):
            if ctx.branch(ast.eq(idx, ast.bv_const(index, 8))):
                last = index
                break
        if last is None:
            ctx.reject("index-beyond-any-log")
            return
        slack = 1 if VOTE_OFF_BY_ONE in p.bugs else 0
        if last + slack >= p.last_index:
            ctx.accept(f"vote:grant:last{last}")
        else:
            ctx.reject("log-behind")


@dataclass
class RaftVariantOracle:
    """Exact accept/generable/classify oracles of a raft variant."""

    params: RaftParams

    def _fields(self, message: bytes) -> dict | None:
        layout = self.params.build_layout()
        if len(message) != layout.total_size:
            return None
        fields = decode_ints(layout, message)
        if self.params.pad_size and fields["pad"] != 0:
            return None
        return fields

    def accepts(self, message: bytes) -> bool:
        p = self.params
        fields = self._fields(message)
        if fields is None:
            return False
        if fields["type"] == p.msg_append:
            term = fields["term"]
            floor = 1 if STALE_APPEND in p.bugs else p.current_term
            if not floor <= term <= p.current_term:
                return False
            if fields["sender"] != p.leader_of(term):
                return False
            prev = fields["idx"]
            if not 0 <= prev <= p.last_index:
                return False
            return fields["logterm"] == p.log_terms[prev]
        if fields["type"] == p.msg_vote:
            if fields["term"] != p.current_term:
                return False
            if fields["sender"] not in p.node_ids:
                return False
            if fields["cmd"] != 0:
                return False
            if fields["logterm"] != p.last_term:
                return False
            last = fields["idx"]
            if not 0 <= last <= p.last_index:
                return False
            slack = 1 if VOTE_OFF_BY_ONE in p.bugs else 0
            return last + slack >= p.last_index
        return False

    def generable(self, message: bytes) -> bool:
        p = self.params
        fields = self._fields(message)
        if fields is None:
            return False
        if fields["type"] == p.msg_append:
            if fields["term"] != p.current_term:
                return False
            if fields["sender"] != p.leader_of(p.current_term):
                return False
            prev = fields["idx"]
            if not 0 <= prev <= p.last_index:
                return False
            return fields["logterm"] == p.log_terms[prev]
        if fields["type"] == p.msg_vote:
            if fields["term"] != p.current_term:
                return False
            if fields["sender"] not in p.node_ids:
                return False
            if fields["cmd"] != 0:
                return False
            return (fields["idx"], fields["logterm"]) in p.candidate_logs
        return False

    def classify(self, message: bytes) -> str | None:
        if not self.accepts(message) or self.generable(message):
            return None
        p = self.params
        fields = self._fields(message)
        if fields["type"] == p.msg_append:
            return _stale_append_class(fields["term"], fields["idx"])
        return _vote_class(fields["idx"])


def _stale_append_class(term: int, index: int) -> str:
    return f"{STALE_APPEND}(term={term}, index={index})"


def _vote_class(index: int) -> str:
    return f"{VOTE_OFF_BY_ONE}(index={index})"


def build_raft_variant(seed: int) -> SystemVariant:
    """Draw one raft variant from ``seed``."""
    rng = random.Random(seed)
    kinds = rng.sample(range(1, 256), 2)
    node_ids = tuple(sorted(rng.sample(range(1, 10), 3)))
    current_term = rng.randint(2, 4)
    last_index = rng.randint(2, 4)
    # Non-decreasing history with a strict final step, so the one-short
    # candidate log can never report the true last term: the vote
    # off-by-one class is real whenever that bug is injected.
    prefix = sorted(rng.choices(range(1, current_term), k=last_index - 1))
    final = rng.randint(prefix[-1] + 1, current_term)
    log_terms = (0, *prefix, final)
    params = RaftParams(
        field_order=(), pad_size=rng.choice([0, 1]),
        msg_append=kinds[0], msg_vote=kinds[1],
        node_ids=node_ids, current_term=current_term,
        log_terms=log_terms,
        term_leaders=tuple(rng.choice(node_ids)
                           for _ in range(current_term)),
        commit_index=rng.randint(1, last_index),
        bugs=_draw_bugs(rng, (STALE_APPEND, VOTE_OFF_BY_ONE)),
    )
    sizes = {"type": 1, "term": 1, "sender": 1, "idx": 1, "logterm": 1,
             "cmd": 1}
    _, order, _ = _permuted_layout(rng, "raft-variant", sizes,
                                   params.pad_size)
    params.field_order = order
    oracle = RaftVariantOracle(params)
    classes = []
    if STALE_APPEND in params.bugs:
        classes.extend(_stale_append_class(term, index)
                       for term in range(1, current_term)
                       for index in range(params.last_index + 1))
    if VOTE_OFF_BY_ONE in params.bugs:
        classes.append(_vote_class(params.last_index - 1))
    return SystemVariant(
        template="raft", seed=seed, layout=params.build_layout(),
        destination="follower",
        clients={which: RaftVariantClient(params, which)
                 for which in ("leader", "candidate")},
        server=RaftVariantServer(params),
        accepts=oracle.accepts, generable=oracle.generable,
        classify=oracle.classify, classes=tuple(classes),
        bugs=params.bugs,
        params={"field_order": list(order), "pad_size": params.pad_size,
                "kinds": {"append": params.msg_append,
                          "vote": params.msg_vote},
                "node_ids": list(node_ids), "current_term": current_term,
                "log_terms": list(log_terms),
                "term_leaders": list(params.term_leaders),
                "commit_index": params.commit_index},
    )


# -- broadcast template -------------------------------------------------------

FORGED_SENDER = "send:forged-sender"
THIN_QUORUM = "thin-quorum"


@dataclass
class BroadcastParams:
    """Drawn constants of one broadcast variant."""

    field_order: tuple[str, ...]
    pad_size: int
    value_size: int
    msg_send: int
    msg_echo: int
    msg_ready: int
    node_ids: tuple[int, ...]  # 4 distinct bit positions in the cert byte
    broadcaster: int
    broadcast_value: int
    bugs: tuple[str, ...]

    @property
    def node_mask(self) -> int:
        return sum(1 << node for node in self.node_ids)

    def certs(self, minimum: int) -> tuple[int, ...]:
        """Member-only certificates with at least ``minimum`` bits set."""
        return tuple(mask for mask in range(256)
                     if not mask & ~self.node_mask
                     and _popcount(mask) >= minimum)

    @property
    def full_certs(self) -> tuple[int, ...]:
        return self.certs(3)  # 2f + 1 with f = 1

    @property
    def thin_certs(self) -> tuple[int, ...]:
        return tuple(mask for mask in self.certs(2)
                     if _popcount(mask) == 2)

    @property
    def accepted_certs(self) -> tuple[int, ...]:
        return self.certs(2) if THIN_QUORUM in self.bugs \
            else self.full_certs

    def build_layout(self) -> MessageLayout:
        sizes = {"kind": 1, "sender": 1, "value": self.value_size,
                 "cert": 1, "pad": self.pad_size}
        return MessageLayout("broadcast-variant",
                             [Field(n, sizes[n])
                              for n in self.field_order])


@dataclass
class BroadcastVariantClient:
    """One correct-peer program of a broadcast variant."""

    params: BroadcastParams
    which: str  # "sender" | "echoer" | "readier"

    def __call__(self, ctx) -> None:
        p = self.params
        layout = p.build_layout()
        builder = MessageBuilder(layout)
        builder.set("value", p.broadcast_value)
        if p.pad_size:
            builder.set("pad", 0)
        if self.which == "sender":
            builder.set("kind", p.msg_send)
            builder.set("sender", p.broadcaster)
            builder.set("cert", 0)
            ctx.send("node", builder.wire())
            return
        peer = ctx.fresh_byte("peer")
        member = ast.any_of([ast.eq(peer, ast.bv_const(n, 8))
                             for n in p.node_ids])
        if not ctx.branch(member):
            return
        builder.set("sender", peer)
        if self.which == "echoer":
            builder.set("kind", p.msg_echo)
            builder.set("cert", 0)
            ctx.send("node", builder.wire())
            return
        cert = ctx.fresh_byte("state:echo_certificate")
        for mask in p.full_certs:
            if ctx.branch(ast.eq(cert, ast.bv_const(mask, 8))):
                builder.set("kind", p.msg_ready)
                builder.set("cert", cert)
                ctx.send("node", builder.wire())
                return
        # A correct peer never asserts READY below the echo quorum.


@dataclass
class BroadcastVariantServer:
    """The node ingress of a broadcast variant (bug subset applied)."""

    params: BroadcastParams

    def __call__(self, ctx, msg) -> None:
        p = self.params
        layout = p.build_layout()
        field = lambda name: field_expr(msg, layout.view(name))
        if not _pad_ok(ctx, layout, msg, p.pad_size):
            return
        if ctx.branch(ast.eq(field("kind"), ast.bv_const(p.msg_send, 8))):
            self._handle_send(ctx, layout, field)
            return
        if ctx.branch(ast.eq(field("kind"), ast.bv_const(p.msg_echo, 8))):
            self._handle_echo(ctx, layout, field)
            return
        if ctx.branch(ast.eq(field("kind"),
                             ast.bv_const(p.msg_ready, 8))):
            self._handle_ready(ctx, layout, field)
            return
        ctx.reject("unknown-kind")

    def _checks(self, ctx, layout, field, verb: str,
                sender_ids: tuple[int, ...]) -> bool:
        p = self.params
        member = ast.any_of([ast.eq(field("sender"), ast.bv_const(n, 8))
                             for n in sender_ids])
        if not ctx.branch(member):
            ctx.reject(f"{verb}:bad-sender")
            return False
        if not ctx.branch(ast.eq(field("value"),
                                 _const(layout, "value",
                                        p.broadcast_value))):
            ctx.reject(f"{verb}:value-mismatch")
            return False
        return True

    def _handle_send(self, ctx, layout, field) -> None:
        p = self.params
        senders = p.node_ids if FORGED_SENDER in p.bugs \
            else (p.broadcaster,)
        if not self._checks(ctx, layout, field, "send", senders):
            return
        if not ctx.branch(ast.eq(field("cert"), ast.bv_const(0, 8))):
            ctx.reject("send:unexpected-certificate")
            return
        ctx.accept("send:echo")

    def _handle_echo(self, ctx, layout, field) -> None:
        if not self._checks(ctx, layout, field, "echo",
                            self.params.node_ids):
            return
        if not ctx.branch(ast.eq(field("cert"), ast.bv_const(0, 8))):
            ctx.reject("echo:unexpected-certificate")
            return
        ctx.accept("echo:counted")

    def _handle_ready(self, ctx, layout, field) -> None:
        p = self.params
        if not self._checks(ctx, layout, field, "ready", p.node_ids):
            return
        cert = field("cert")
        for mask in p.accepted_certs:
            if ctx.branch(ast.eq(cert, ast.bv_const(mask, 8))):
                if _popcount(mask) < 3:
                    ctx.label("thin-certificate")
                ctx.accept(f"ready:cert-{mask:#04x}")
                return
        ctx.reject("ready:bad-certificate")


@dataclass
class BroadcastVariantOracle:
    """Exact accept/generable/classify oracles of a broadcast variant."""

    params: BroadcastParams

    def _fields(self, message: bytes) -> dict | None:
        layout = self.params.build_layout()
        if len(message) != layout.total_size:
            return None
        fields = decode_ints(layout, message)
        if self.params.pad_size and fields["pad"] != 0:
            return None
        if fields["value"] != self.params.broadcast_value:
            return None
        if fields["sender"] not in self.params.node_ids:
            return None
        return fields

    def accepts(self, message: bytes) -> bool:
        p = self.params
        fields = self._fields(message)
        if fields is None:
            return False
        if fields["kind"] == p.msg_send:
            if FORGED_SENDER not in p.bugs and \
                    fields["sender"] != p.broadcaster:
                return False
            return fields["cert"] == 0
        if fields["kind"] == p.msg_echo:
            return fields["cert"] == 0
        if fields["kind"] == p.msg_ready:
            return fields["cert"] in p.accepted_certs
        return False

    def generable(self, message: bytes) -> bool:
        p = self.params
        fields = self._fields(message)
        if fields is None:
            return False
        if fields["kind"] == p.msg_send:
            return fields["sender"] == p.broadcaster and \
                fields["cert"] == 0
        if fields["kind"] == p.msg_echo:
            return fields["cert"] == 0
        if fields["kind"] == p.msg_ready:
            return fields["cert"] in p.full_certs
        return False

    def classify(self, message: bytes) -> str | None:
        if not self.accepts(message) or self.generable(message):
            return None
        fields = self._fields(message)
        if fields["kind"] == self.params.msg_send:
            return FORGED_SENDER
        return _thin_quorum_class(fields["cert"])


def _thin_quorum_class(cert: int) -> str:
    return f"ready:{THIN_QUORUM}(cert={cert:#04x})"


def build_broadcast_variant(seed: int) -> SystemVariant:
    """Draw one broadcast variant from ``seed``."""
    rng = random.Random(seed)
    kinds = rng.sample(range(1, 256), 3)
    value_size = rng.choice([1, 2])
    params = BroadcastParams(
        field_order=(), pad_size=rng.choice([0, 1]),
        value_size=value_size,
        msg_send=kinds[0], msg_echo=kinds[1], msg_ready=kinds[2],
        node_ids=tuple(sorted(rng.sample(range(8), 4))),
        broadcaster=0, broadcast_value=rng.randrange(1 << (8 * value_size)),
        bugs=_draw_bugs(rng, (FORGED_SENDER, THIN_QUORUM)),
    )
    params.broadcaster = rng.choice(params.node_ids)
    sizes = {"kind": 1, "sender": 1, "value": value_size, "cert": 1}
    _, order, _ = _permuted_layout(rng, "broadcast-variant", sizes,
                                   params.pad_size)
    params.field_order = order
    oracle = BroadcastVariantOracle(params)
    classes = []
    if FORGED_SENDER in params.bugs:
        classes.append(FORGED_SENDER)
    if THIN_QUORUM in params.bugs:
        classes.extend(_thin_quorum_class(cert)
                       for cert in params.thin_certs)
    return SystemVariant(
        template="broadcast", seed=seed, layout=params.build_layout(),
        destination="node",
        clients={which: BroadcastVariantClient(params, which)
                 for which in ("sender", "echoer", "readier")},
        server=BroadcastVariantServer(params),
        accepts=oracle.accepts, generable=oracle.generable,
        classify=oracle.classify, classes=tuple(classes),
        bugs=params.bugs,
        params={"field_order": list(order), "pad_size": params.pad_size,
                "value_size": value_size,
                "kinds": {"send": params.msg_send, "echo": params.msg_echo,
                          "ready": params.msg_ready},
                "node_ids": list(params.node_ids),
                "broadcaster": params.broadcaster,
                "broadcast_value": params.broadcast_value},
    )


def _draw_bugs(rng: random.Random,
               menu: tuple[str, ...]) -> tuple[str, ...]:
    """A non-empty subset of the bug menu (empty would leave nothing to
    score: recall over zero seeded classes is undefined)."""
    subsets = [subset for bits in range(1, 1 << len(menu))
               for subset in [tuple(bug for position, bug in enumerate(menu)
                                    if bits >> position & 1)]]
    return subsets[rng.randrange(len(subsets))]


#: Template registry: name -> ``build(variant_seed) -> SystemVariant``.
TEMPLATES: dict[str, Callable[[int], SystemVariant]] = {
    "tpc": build_tpc_variant,
    "raft": build_raft_variant,
    "broadcast": build_broadcast_variant,
}
