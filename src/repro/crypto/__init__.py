"""Toy integrity primitives used by the modeled protocols.

FSP protects commands with a one-byte additive checksum; PBFT protects
requests with per-replica message authenticators (MACs). This package
provides small, deterministic stand-ins for both that work over *mixed*
concrete/symbolic byte vectors:

* given plain ints they return ints (concrete deployments),
* given solver expressions they return expressions (symbolic execution),

so the same node program runs under both the simulated network and the
symbolic engine. The paper's evaluation bypasses these computations with
constant stubs (§6.1); both the real and the stubbed configuration are
exercised by the test suite.
"""

from repro.crypto.checksum import byte_sum_checksum, xor_checksum
from repro.crypto.mac import Authenticator, mac_tag, verify_mac

__all__ = [
    "Authenticator",
    "byte_sum_checksum",
    "mac_tag",
    "verify_mac",
    "xor_checksum",
]
