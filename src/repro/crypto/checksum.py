"""Additive and XOR checksums over mixed concrete/symbolic bytes.

FSP's ``sum`` header is an 8-bit additive checksum of the whole message
(with the checksum byte itself taken as zero). The symbolic variant builds
the full chain of add operations, which is exactly the "full chain of
operations that transform the symbolic inputs" the paper describes for the
client's CRC expression (§3.1, Figure 5).
"""

from __future__ import annotations

from typing import Sequence

from repro.solver import ast
from repro.solver.ast import Expr

ByteLike = Expr | int


def _as_expr(byte: ByteLike) -> Expr:
    if isinstance(byte, int):
        return ast.bv_const(byte & 0xFF, 8)
    return byte


def _all_concrete(data: Sequence[ByteLike]) -> bool:
    return all(isinstance(b, int) or b.is_const for b in data)


def _concrete_value(byte: ByteLike) -> int:
    return byte if isinstance(byte, int) else byte.value


def byte_sum_checksum(data: Sequence[ByteLike], initial: int = 0) -> ByteLike:
    """8-bit additive checksum: ``(initial + sum(bytes)) mod 256``.

    Returns an int when every input byte is concrete, otherwise a solver
    expression over the symbolic bytes.
    """
    if _all_concrete(data):
        total = initial
        for byte in data:
            total = (total + _concrete_value(byte)) & 0xFF
        return total
    result: Expr = ast.bv_const(initial & 0xFF, 8)
    for byte in data:
        result = ast.add(result, _as_expr(byte))
    return result


def xor_checksum(data: Sequence[ByteLike], initial: int = 0) -> ByteLike:
    """8-bit XOR checksum (a second, cheaper integrity code)."""
    if _all_concrete(data):
        total = initial & 0xFF
        for byte in data:
            total ^= _concrete_value(byte) & 0xFF
        return total
    result: Expr = ast.bv_const(initial & 0xFF, 8)
    for byte in data:
        result = ast.bvxor(result, _as_expr(byte))
    return result
