"""Toy keyed message authenticators (the PBFT ``MAC`` field).

PBFT clients append one authenticator per replica, each computed with a
pairwise secret key. The stand-in here is a two-byte keyed mix — strong
enough that a wrong key or tampered payload is detected with high
probability in the simulated deployments, cheap enough to run symbolically
when needed. The Achilles evaluation replaces it with a constant stub on
both sides (§6.1); the *vulnerability* is that replicas skip verification
entirely, which is independent of the MAC's strength.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.checksum import ByteLike, _all_concrete, _as_expr, _concrete_value
from repro.solver import ast
from repro.solver.ast import Expr

#: MAC tag width, in bytes.
TAG_SIZE = 2


def mac_tag(key: int, data: Sequence[ByteLike]) -> tuple[ByteLike, ByteLike]:
    """Two-byte keyed tag over ``data``.

    The mix keeps byte order significant (a swapped payload changes the
    tag) and folds the 16-bit key into both output bytes.
    """
    key &= 0xFFFF
    key_hi, key_lo = key >> 8, key & 0xFF
    if _all_concrete(data):
        acc_hi, acc_lo = key_hi, key_lo
        for position, byte in enumerate(data):
            value = _concrete_value(byte) & 0xFF
            acc_hi = (acc_hi + value + position) & 0xFF
            acc_lo ^= (value + acc_hi) & 0xFF
        return acc_hi, acc_lo
    acc_hi: Expr = ast.bv_const(key_hi, 8)
    acc_lo: Expr = ast.bv_const(key_lo, 8)
    for position, byte in enumerate(data):
        value = _as_expr(byte)
        acc_hi = ast.add(ast.add(acc_hi, value), ast.bv_const(position & 0xFF, 8))
        acc_lo = ast.bvxor(acc_lo, ast.add(value, acc_hi))
    return acc_hi, acc_lo


def verify_mac(key: int, data: Sequence[int], tag: Sequence[int]) -> bool:
    """Check a concrete two-byte tag."""
    expected = mac_tag(key, list(data))
    return tuple(tag) == expected


@dataclass(frozen=True)
class Authenticator:
    """A vector of per-replica MAC tags, as carried by PBFT requests.

    Attributes:
        tags: one ``(hi, lo)`` tag per replica, in replica-id order.
    """

    tags: tuple[tuple[int, int], ...]

    @classmethod
    def sign(cls, keys: Sequence[int], data: Sequence[int]) -> "Authenticator":
        """Authenticate ``data`` for every replica key."""
        return cls(tuple(mac_tag(key, list(data)) for key in keys))

    def verify(self, replica_id: int, key: int, data: Sequence[int]) -> bool:
        """Check the tag addressed to ``replica_id``."""
        if replica_id < 0 or replica_id >= len(self.tags):
            return False
        return mac_tag(key, list(data)) == self.tags[replica_id]

    def wire_bytes(self) -> list[int]:
        """Flatten to wire bytes, replica order, (hi, lo) per replica."""
        out: list[int] = []
        for hi, lo in self.tags:
            out.append(hi)
            out.append(lo)
        return out

    @classmethod
    def from_wire(cls, data: Sequence[int]) -> "Authenticator":
        """Parse wire bytes produced by :meth:`wire_bytes`."""
        if len(data) % TAG_SIZE:
            raise ValueError("authenticator bytes must come in (hi, lo) pairs")
        pairs = tuple(
            (data[i], data[i + 1]) for i in range(0, len(data), TAG_SIZE))
        return cls(pairs)

    def corrupt(self, replica_id: int) -> "Authenticator":
        """A copy with the tag for ``replica_id`` flipped (the MAC attack)."""
        tags = list(self.tags)
        hi, lo = tags[replica_id]
        tags[replica_id] = (hi ^ 0xFF, lo ^ 0xA5)
        return Authenticator(tuple(tags))
