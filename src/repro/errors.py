"""Shared exception hierarchy for the repro library.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SortError(ReproError):
    """An expression was built from operands of incompatible sorts."""


class SolverError(ReproError):
    """The constraint solver was used incorrectly or hit an internal limit."""


class SolverTimeout(SolverError):
    """The constraint solver exceeded its configured budget."""


class SymexError(ReproError):
    """The symbolic execution engine was driven into an invalid state."""


class PathInfeasible(SymexError):
    """Raised internally when a path's constraints become unsatisfiable.

    Node programs never see this exception; the engine catches it and
    abandons the path.
    """


class PathDropped(SymexError):
    """Raised by the ``drop_path`` annotation to abandon the current path."""


class ExplorationLimit(SymexError):
    """A path exceeded the engine's branch/step budget."""


class MessageError(ReproError):
    """A message buffer or layout was used inconsistently."""


class NetworkError(ReproError):
    """The simulated network was driven into an invalid state."""


class FileSystemError(ReproError):
    """The in-memory filesystem rejected an operation."""


class AchillesError(ReproError):
    """The Achilles analysis was configured or driven incorrectly."""


class AnnotationError(AchillesError):
    """An Achilles annotation (§5.2) was used incorrectly."""
