"""Sharded parallel exploration: decision-prefix partitioning of the path tree.

PR 3 parallelized the *solver batches*; this package parallelizes the
*exploration itself* (Cloud9-style): the symbolic path tree is split by
decision prefixes across a pool of worker processes, each running the
stock :meth:`repro.symex.engine.Engine.explore` loop below its prefixes
with a fully private solver pipeline (hash-consed arena, canonical
:class:`~repro.solver.cache.QueryCache`, incremental frame stack — the
PR 3 worker bootstrap, one engine per process instead of one solver per
chunk).

The protocol, end to end:

1. **Seed** (:class:`~repro.explore.shard.FrontierControl`): the
   coordinator explores in-process until its worklist holds at least
   ``seed_factor x shards`` unexplored fork prefixes, then stops; the
   remaining worklist is the *frontier*. Every frontier entry is a
   decision prefix — a recorded branch-direction vector that the engine's
   schedule mechanism replays deterministically (scheduled branches take
   the recorded direction with no new solver checks), so handing a prefix
   to another process hands it exactly the subtree below that fork.
2. **Partition** (:mod:`~repro.explore.scheduler`): the frontier is
   sorted canonically and split contiguously across the shard workers;
   each worker explores its prefixes to exhaustion and reports a
   :class:`~repro.explore.shard.ShardOutcome`.
3. **Steal**: when a worker drains its prefixes while others are still
   loaded, the coordinator sets the *steal flag* of a loaded worker; at
   its next between-paths checkpoint
   (:class:`~repro.explore.shard.StealControl`) that worker donates the
   shallowest half of its live worklist back through the coordinator,
   which reassigns it to the idle workers. Re-execution forking makes
   stealing essentially free — every path replays from the root anyway,
   so a migrated prefix costs one extra replay, not a state transfer.
4. **Merge** (:mod:`~repro.explore.merge`): shard outcomes fold into one
   :class:`~repro.symex.engine.ExplorationResult` — paths renumbered in
   canonical prefix order (lexicographic, True before False, which *is*
   the serial DFS completion order), exploration/solver counters summed
   in a fixed order, and per-shard observer findings reduced through the
   :class:`~repro.symex.observers.ObserverDelta` protocol. The merged
   output is a pure function of the explored tree: byte-identical at any
   shard count, with any stealing schedule, for DFS-ordered runs
   byte-identical to the plain serial engine.

The explored tree itself is shard-invariant because every pruning input
is pure: branch feasibility is a function of the path condition, and
delta-capable observers are (by the :class:`PathObserver` contract)
deterministic functions of the constraint sequence.

When to shard paths vs. batch queries: the solver service (layer 5)
accelerates workloads whose *queries* are independent but whose
exploration is cheap; sharding (this layer) is for workloads dominated by
per-path work — path replays, per-constraint observer probes — where the
walk itself must spread across cores. The two compose: a sharded run may
still batch its pre-processing through a worker pool.

*Where* the shard workers live is pluggable
(:mod:`repro.explore.transport`): the default
:class:`~repro.explore.transport.LocalTransport` runs them as
``multiprocessing`` processes on this machine, while
:class:`~repro.explore.tcp.TcpTransport` drives ``python -m repro
worker`` daemons on arbitrary hosts over length-prefixed pickled frames.
The deterministic merge makes findings byte-identical on either.
"""

from repro.explore.checkpoint import (
    JournalMeta,
    JournalReplay,
    RunJournal,
    load_journal,
    outstanding_regions,
)
from repro.explore.faults import (
    CoordinatorKilled,
    CorruptRecord,
    DelayResult,
    DropConnection,
    FaultPlan,
    FaultyTransport,
    GarbleResult,
    KillCoordinatorAt,
    KillWorker,
    RefuseRespawn,
    TornWrite,
    TruncateSegment,
    apply_disk_fault,
)
from repro.explore.merge import MergedExploration, merge_outcomes
from repro.explore.scheduler import ShardedExploration, ShardScheduler
from repro.explore.shard import (
    Assignment,
    ExcludeControl,
    FrontierControl,
    ShardOutcome,
    StealControl,
)
from repro.explore.transport import (
    LocalTransport,
    Transport,
    WorkerSession,
    resolve_transport,
)

__all__ = [
    "Assignment",
    "CoordinatorKilled",
    "CorruptRecord",
    "DelayResult",
    "DropConnection",
    "ExcludeControl",
    "FaultPlan",
    "FaultyTransport",
    "FrontierControl",
    "GarbleResult",
    "JournalMeta",
    "JournalReplay",
    "KillCoordinatorAt",
    "KillWorker",
    "LocalTransport",
    "MergedExploration",
    "RefuseRespawn",
    "RunJournal",
    "ShardOutcome",
    "ShardScheduler",
    "ShardedExploration",
    "StealControl",
    "TornWrite",
    "Transport",
    "TruncateSegment",
    "WorkerSession",
    "apply_disk_fault",
    "load_journal",
    "merge_outcomes",
    "outstanding_regions",
    "resolve_transport",
]
