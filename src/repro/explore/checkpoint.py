"""Coordinator checkpoint/resume: a write-ahead run journal.

PR 7 made *worker* loss survivable; this module covers the coordinator.
During a sharded run the :class:`~repro.explore.scheduler.ShardScheduler`
appends every completed assignment — the booking's decision-prefix roots,
its exclusions at completion time, and the worker's full
:class:`~repro.explore.shard.ShardOutcome` (merged ``ObserverDelta``
included) — to a single :class:`RunJournal` file. Records buffer in
memory and every ``checkpoint_interval`` completions they are written,
flushed and fsync'd as one durable checkpoint.

The journal shares the segment framing of
:mod:`repro.solver.diskcache` (magic + version header, per-record CRC),
and the same salvage rule: on resume the valid prefix is replayed, a
torn tail is truncated away, and appending continues after it — a
coordinator killed between checkpoints simply loses its unflushed
buffer, exactly as if it had died an instant after the previous
checkpoint.

Resume soundness rests on the property PR 7 already established for
reclaimed worker prefixes: re-running any *uncompleted* region of the
decision tree is safe, because the canonical merge renumbers paths
deterministically and rejects overlap. :func:`outstanding_regions`
computes precisely the uncovered regions — frontier roots and donated
subtrees minus every journaled completion — so a resumed run explores
exactly what the killed run never finished and produces findings
byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import SymexError
from repro.explore.shard import Prefix, ShardOutcome, extends
from repro.solver.diskcache import (
    HEADER,
    frame_record,
    scan_frames,
)

#: The journal file inside a run directory.
JOURNAL_NAME = "journal.wal"

_REC_META = "meta"
_REC_SEED = "seed"
_REC_DONE = "done"


@dataclass(frozen=True)
class JournalMeta:
    """Identity of the run a journal belongs to.

    Enough to reject a ``--resume`` against the wrong journal with an
    actionable error instead of a deep merge failure: the setup callable
    (module-qualified) and the exploration-relevant engine knobs. Shard
    count and transport are deliberately absent — a run may resume with
    a different fleet, the partition never affects findings.
    """

    setup: str
    engine_signature: tuple


def engine_signature(config) -> tuple:
    """Stable identity of an ``EngineConfig`` for journal validation.

    ``repr(config)`` would embed the ``default_verdict`` function's
    memory address, which differs every process; the qualname is the
    process-stable part.
    """
    return (config.max_paths, config.max_branches_per_path,
            config.search_order, config.incremental,
            getattr(config.default_verdict, "__qualname__",
                    repr(config.default_verdict)))


@dataclass
class JournalReplay:
    """Everything a salvage pass recovered from a run journal."""

    meta: JournalMeta
    seed_outcome: ShardOutcome
    frontier: tuple[Prefix, ...]
    #: (roots, exclude) per journaled completed assignment.
    regions: list[tuple[tuple[Prefix, ...], tuple[Prefix, ...]]]
    outcomes: list[ShardOutcome]
    #: Records refused (torn tail, bad CRC, undecodable payload).
    dropped_records: int = 0
    #: Offset just past the last intact record — where appends resume.
    valid_end: int = 0
    damaged: bool = False


class RunJournal:
    """Append-only, fsync'd, torn-tail-tolerant completion journal.

    One instance serves either role: :meth:`begin` starts a fresh
    journal (header, meta, the seed outcome and frontier — durable
    before any worker starts), :meth:`load_for_resume` salvages an
    existing one, truncates any torn tail, and reopens it for append so
    a resumed run (which may itself be killed) keeps journaling into the
    same file.

    ``on_checkpoint(n)`` fires *after* the nth checkpoint of this
    process is durable (written, flushed, fsync'd) — the hook the
    scheduler uses to flush the disk query cache, and the seam
    :class:`~repro.explore.faults.KillCoordinatorAt` injects coordinator
    death through: an exception raised there models a crash immediately
    after the fsync returned.
    """

    def __init__(self, run_dir: str | Path, checkpoint_interval: int = 1,
                 on_checkpoint: Callable[[int], None] | None = None):
        if checkpoint_interval < 1:
            raise SymexError(
                f"checkpoint_interval must be >= 1, "
                f"got {checkpoint_interval}")
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / JOURNAL_NAME
        self.checkpoint_interval = checkpoint_interval
        self.on_checkpoint = on_checkpoint
        self.checkpoints_written = 0
        self._file = None
        self._buffer: list[bytes] = []

    # -- writing -------------------------------------------------------------

    def begin(self, meta: JournalMeta, seed_outcome: ShardOutcome,
              frontier: tuple[Prefix, ...]) -> None:
        """Start a fresh journal; overwrites any previous run's file."""
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "wb")
        self._file.write(HEADER)
        self._buffer.append(pickle.dumps(
            (_REC_META, meta), protocol=pickle.HIGHEST_PROTOCOL))
        self._buffer.append(pickle.dumps(
            (_REC_SEED, seed_outcome, tuple(frontier)),
            protocol=pickle.HIGHEST_PROTOCOL))
        # The seed must be durable before any fan-out work it anchors:
        # checkpoint #1 is the run's starting line.
        self._checkpoint()

    def note_outcome(self, roots, exclude, outcome: ShardOutcome) -> None:
        """Record one completed assignment; checkpoint on the interval."""
        self._buffer.append(pickle.dumps(
            (_REC_DONE, tuple(roots), tuple(exclude), outcome),
            protocol=pickle.HIGHEST_PROTOCOL))
        if len(self._buffer) >= self.checkpoint_interval:
            self._checkpoint()

    def _checkpoint(self) -> None:
        for payload in self._buffer:
            self._file.write(frame_record(payload))
        self._buffer.clear()
        self._file.flush()
        os.fsync(self._file.fileno())
        self.checkpoints_written += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(self.checkpoints_written)

    def close(self) -> None:
        """Flush any buffered completions and close cleanly."""
        if self._file is None:
            return
        if self._buffer:
            self._checkpoint()
        self._file.close()
        self._file = None

    def abandon(self) -> None:
        """Close without flushing — the run is aborting, and writing a
        partial tail now would only manufacture the torn state the
        salvage path exists to clean up."""
        if self._file is None:
            return
        self._buffer.clear()
        self._file.close()
        self._file = None

    # -- reading -------------------------------------------------------------

    def load_for_resume(self, expected: JournalMeta | None = None,
                        ) -> JournalReplay:
        """Salvage the journal, validate it, reopen for append."""
        replay = load_journal(self.path, expected)
        # A torn tail is dead bytes: appending after it would corrupt
        # the next salvage, so the file restarts at the last intact
        # record (standard WAL recovery).
        with open(self.path, "rb+") as handle:
            handle.truncate(replay.valid_end)
        self._file = open(self.path, "ab")
        return replay


def load_journal(path: str | Path,
                 expected: JournalMeta | None = None) -> JournalReplay:
    """Read a run journal, salvaging the valid prefix of its records.

    Raises :class:`SymexError` (actionable, not a stack trace) when the
    journal is missing, unrecognizable, lacks the meta/seed records a
    resume needs, or was written by a different run setup.
    """
    path = Path(path)
    if not path.exists():
        raise SymexError(
            f"no run journal at {path}: --resume needs a run directory "
            "a previous checkpointed run wrote (start one with --run-dir)")
    scan = scan_frames(path.read_bytes())
    if scan.reason is not None and not scan.payloads and scan.valid_end == 0:
        raise SymexError(
            f"run journal {path} is unrecognizable ({scan.reason}); "
            "it cannot anchor a resume — re-run without --resume")
    meta = None
    seed = None
    frontier: tuple[Prefix, ...] = ()
    regions: list[tuple[tuple[Prefix, ...], tuple[Prefix, ...]]] = []
    outcomes: list[ShardOutcome] = []
    dropped = 1 if scan.damaged else 0
    for payload in scan.payloads:
        try:
            record = pickle.loads(payload)
            kind = record[0]
        except Exception:
            dropped += 1
            continue
        if kind == _REC_META and meta is None:
            meta = record[1]
        elif kind == _REC_SEED and seed is None:
            seed, frontier = record[1], tuple(record[2])
        elif kind == _REC_DONE:
            _, roots, exclude, outcome = record
            regions.append((tuple(roots), tuple(exclude)))
            outcomes.append(outcome)
        else:
            dropped += 1
    if meta is None or seed is None:
        raise SymexError(
            f"run journal {path} has no seed checkpoint — the run died "
            "before its first checkpoint, so there is nothing to resume; "
            "re-run without --resume")
    if expected is not None and (meta.setup != expected.setup
                                 or meta.engine_signature
                                 != expected.engine_signature):
        raise SymexError(
            f"run journal {path} belongs to a different run "
            f"(journal: setup={meta.setup}, "
            f"engine={meta.engine_signature}; "
            f"this run: setup={expected.setup}, "
            f"engine={expected.engine_signature}); resuming it here "
            "would merge incompatible explorations")
    return JournalReplay(meta=meta, seed_outcome=seed, frontier=frontier,
                         regions=regions, outcomes=outcomes,
                         dropped_records=dropped,
                         valid_end=scan.valid_end, damaged=scan.damaged)


def outstanding_regions(frontier, regions):
    """The (root, exclude) work a resumed run must still explore.

    ``regions`` are the journaled completions: each covered
    ``roots - exclude``, where every exclusion is a subtree the holder
    donated away before finishing (so it was completed — or is still
    outstanding — under some *other* region). The candidates are
    therefore the original frontier roots plus every donated subtree;
    a candidate is done iff some region's root covers it without one of
    that region's exclusions carving it back out. An outstanding
    candidate re-runs minus the completed regions nested inside it —
    exactly the reclaim rule recovery applies to a dead worker's
    booking, so the same merge-determinism argument applies.
    """
    candidates: list[Prefix] = list(frontier)
    for _roots, exclude in regions:
        candidates.extend(exclude)
    completed_roots = [root for roots, _exclude in regions for root in roots]

    def covered(prefix: Prefix) -> bool:
        for roots, exclude in regions:
            for root in roots:
                if extends(prefix, root) and not any(
                        extends(prefix, donated) for donated in exclude):
                    return True
        return False

    entries: list[tuple[Prefix, tuple[Prefix, ...]]] = []
    seen: set[Prefix] = set()
    for candidate in candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        if covered(candidate):
            continue
        inside = list(dict.fromkeys(
            root for root in completed_roots
            if extends(root, candidate) and root != candidate))
        # Minimal exclusion set: a completed root nested inside another
        # excluded one is already carved out by it.
        exclude = tuple(root for root in inside
                        if not any(extends(root, outer) and root != outer
                                   for outer in inside))
        entries.append((candidate, exclude))
    return entries
