"""Deterministic fault injection for the sharded transport layer.

Recovery code that is only ever exercised by racy ``os.kill`` timing is
recovery code that regresses silently. :class:`FaultyTransport` wraps
any real :class:`~repro.explore.transport.Transport` and applies a
scripted :class:`FaultPlan` at the transport interface — the exact
surface the scheduler sees — so every recovery path (death detection,
reclaim, respawn, retry exhaustion) is driven by deterministic message
counts in unit tests and CI chaos jobs.

The fault vocabulary mirrors how distributed workers actually fail:

* :class:`KillWorker` / :class:`DropConnection` — the worker goes
  silent after its Nth delivered message: ``alive()`` turns False, its
  subsequent messages are swallowed (a dead host delivers nothing), and
  assignments to it bounce. Only a successful respawn revives the slot.
* :class:`RefuseRespawn` — the first K replacement attempts for a slot
  fail, exercising the ``max_worker_retries`` budget.
* :class:`DelayResult` — one message is delivered late, exercising the
  liveness grace window.
* :class:`GarbleResult` — one message arrives undecodable; since a
  desynced stream can never be re-framed, the worker is severed exactly
  as a corrupted TCP connection would be.

The wrapper never reorders or fabricates messages, so a run under an
empty plan is byte-identical to the bare transport — and the headline
parity criterion (findings byte-identical with and without injected
faults, under ``on_worker_loss="recover"``) is testable on both
transports.

The *disk* fault vocabulary does for the persistence layer what the
transport faults do for the fleet: :class:`TruncateSegment`,
:class:`CorruptRecord` and :class:`TornWrite` damage a cache segment or
run journal at the exact byte positions the salvage code distinguishes
(header, mid-record, torn tail), applied via :func:`apply_disk_fault`;
:class:`KillCoordinatorAt` injects coordinator death immediately after
the nth durable journal checkpoint — the worst honest crash point, since
anything later than a checkpoint is equivalent to dying right after it
with the unflushed buffer lost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import SymexError
from repro.explore.transport import Transport, WorkerSession
from repro.solver.diskcache import FRAME_HEADER_SIZE, record_spans


@dataclass(frozen=True)
class KillWorker:
    """Silently sever worker ``wid`` once ``after_results`` of its
    messages have been delivered (0 = dead from its first assignment)."""

    wid: int
    after_results: int = 0


@dataclass(frozen=True)
class DropConnection:
    """Drop ``wid``'s connection after ``after_results`` delivered
    messages. At the transport interface this is indistinguishable from
    :class:`KillWorker` (EOF and SIGKILL look the same from the
    coordinator); the separate name keeps fault plans readable."""

    wid: int
    after_results: int = 0


@dataclass(frozen=True)
class RefuseRespawn:
    """Fail the first ``times`` respawn attempts for worker ``wid``
    (a daemon that is itself down, or a host still rebooting)."""

    wid: int
    times: int = 1


@dataclass(frozen=True)
class DelayResult:
    """Sleep ``seconds`` before delivering ``wid``'s ``nth`` (1-based)
    message — a slow network, not a dead one."""

    wid: int
    nth: int
    seconds: float


@dataclass(frozen=True)
class GarbleResult:
    """Corrupt ``wid``'s ``nth`` (1-based) message in flight. The
    message is dropped and the worker severed: once a framed stream is
    desynced, nothing after the corruption can be decoded either."""

    wid: int
    nth: int


# -- disk faults (cache segments, run journals) -------------------------------


class CoordinatorKilled(Exception):
    """Injected coordinator death (see :class:`KillCoordinatorAt`).

    Deliberately *not* a :class:`SymexError`: recovery code must treat
    it as an abrupt crash, never catch-and-handle it like a protocol
    failure.
    """


@dataclass(frozen=True)
class KillCoordinatorAt:
    """Kill the coordinator right after its ``checkpoint_n``-th durable
    journal checkpoint (1-based; checkpoint 1 is the seed). Install as
    the scheduler's ``checkpoint_hook``: the journal fires hooks only
    after the fsync returns, so the simulated crash leaves exactly the
    on-disk state a real kill at that boundary would."""

    checkpoint_n: int

    def __call__(self, index: int) -> None:
        if index == self.checkpoint_n:
            raise CoordinatorKilled(
                f"injected coordinator death after checkpoint {index}")


@dataclass(frozen=True)
class TruncateSegment:
    """Cut ``drop_bytes`` off the file's tail — a crash mid-append or a
    filesystem that lost the end of the file."""

    drop_bytes: int = 1


@dataclass(frozen=True)
class CorruptRecord:
    """Flip one payload byte of the ``record``-th intact record
    (0-based; ``record=-1`` targets the file header instead), ``offset``
    bytes into it — silent media corruption the CRC must catch."""

    record: int
    offset: int = 0


@dataclass(frozen=True)
class TornWrite:
    """Keep only the first half of the final record's payload — a
    power-cut mid-write, with the frame header promising more bytes
    than the file holds."""


def apply_disk_fault(path: str | Path, fault) -> None:
    """Damage the segment/journal file at ``path`` as ``fault`` says.

    Operates on the real on-disk framing (via
    :func:`repro.solver.diskcache.record_spans`), so tests corrupt
    exactly the bytes the salvage code will scan.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if isinstance(fault, TruncateSegment):
        del data[max(0, len(data) - fault.drop_bytes):]
    elif isinstance(fault, CorruptRecord):
        if fault.record < 0:
            position = fault.offset
        else:
            spans = record_spans(path)
            start, _length = spans[fault.record]
            position = start + FRAME_HEADER_SIZE + fault.offset
        data[position] ^= 0xFF
    elif isinstance(fault, TornWrite):
        spans = record_spans(path)
        start, length = spans[-1]
        payload_length = length - FRAME_HEADER_SIZE
        del data[start + FRAME_HEADER_SIZE + payload_length // 2:]
    else:
        raise SymexError(f"unknown disk fault {fault!r}")
    path.write_bytes(bytes(data))


class FaultPlan:
    """An ordered script of fault actions, applied deterministically.

    Each action fires at most once; two :class:`KillWorker` entries for
    the same worker kill it twice (the second applies after a successful
    respawn resets the delivery count).
    """

    def __init__(self, *faults):
        self.faults = list(faults)

    def __repr__(self):
        inner = ", ".join(repr(f) for f in self.faults)
        return f"FaultPlan({inner})"


class FaultyTransport(Transport):
    """A :class:`Transport` decorator that injects a :class:`FaultPlan`.

    Counters (``injected_kills``, ``refused_respawns``) let tests assert
    the plan actually fired — a chaos run whose faults never triggered
    proves nothing.
    """

    def __init__(self, inner: Transport, plan: FaultPlan):
        self.inner = inner
        self.plan = plan
        self._delivered: dict[int, int] = {}
        self._severed: set[int] = set()
        self._consumed: set[int] = set()
        self._refusals_used: dict[int, int] = {}
        self.injected_kills = 0
        self.refused_respawns = 0

    @property
    def worker_count(self) -> int:
        return self.inner.worker_count

    # -- fault evaluation ----------------------------------------------------

    def _severed_now(self, wid: int) -> bool:
        """True when ``wid`` is (or just became) severed by the plan."""
        if wid in self._severed:
            return True
        for fault in self.plan.faults:
            if (isinstance(fault, (KillWorker, DropConnection))
                    and fault.wid == wid
                    and id(fault) not in self._consumed
                    and self._delivered.get(wid, 0) >= fault.after_results):
                self._consumed.add(id(fault))
                self._severed.add(wid)
                self.injected_kills += 1
                return True
        return False

    def _take(self, kind, wid: int, nth: int):
        """Pop the unconsumed ``kind`` fault matching this delivery."""
        for fault in self.plan.faults:
            if (isinstance(fault, kind) and fault.wid == wid
                    and fault.nth == nth
                    and id(fault) not in self._consumed):
                self._consumed.add(id(fault))
                return fault
        return None

    # -- transport interface -------------------------------------------------

    def start(self, count: int, session: WorkerSession) -> None:
        self.inner.start(count, session)

    def assign(self, wid: int, prefixes) -> None:
        if self._severed_now(wid):
            raise SymexError(
                f"shard worker {self.describe(wid)} is unreachable")
        self.inner.assign(wid, prefixes)

    def request_steal(self, wid: int) -> None:
        if not self._severed_now(wid):
            self.inner.request_steal(wid)

    def acknowledge_done(self, wid: int) -> None:
        self.inner.acknowledge_done(wid)

    def recv(self, timeout: float) -> tuple[str, int, object] | None:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining < 0:
                return None
            message = self.inner.recv(max(0.0, remaining))
            if message is None:
                return None
            kind, wid, payload = message
            if self._severed_now(wid):
                # A dead worker delivers nothing: swallow and keep
                # waiting for someone else's message.
                continue
            nth = self._delivered.get(wid, 0) + 1
            delay = self._take(DelayResult, wid, nth)
            if delay is not None:
                time.sleep(delay.seconds)
            if self._take(GarbleResult, wid, nth) is not None:
                self._severed.add(wid)
                self.injected_kills += 1
                continue
            self._delivered[wid] = nth
            return message

    def alive(self, wid: int) -> bool:
        if self._severed_now(wid):
            return False
        return self.inner.alive(wid)

    def respawn(self, wid: int) -> bool:
        for fault in self.plan.faults:
            if (isinstance(fault, RefuseRespawn) and fault.wid == wid
                    and self._refusals_used.get(id(fault), 0) < fault.times):
                self._refusals_used[id(fault)] = (
                    self._refusals_used.get(id(fault), 0) + 1)
                self.refused_respawns += 1
                return False
        if not self.inner.respawn(wid):
            return False
        # A fresh worker owns the slot: clear the fault bookkeeping so
        # later plan entries (e.g. a second KillWorker) count its
        # deliveries from zero.
        self._severed.discard(wid)
        self._delivered[wid] = 0
        return True

    def describe(self, wid: int) -> str:
        base = self.inner.describe(wid)
        if wid in self._severed:
            return f"{base} [severed by fault plan]"
        return base

    def stop(self) -> None:
        self.inner.stop()
