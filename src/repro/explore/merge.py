"""Deterministic merge of shard outcomes.

The partition of the path tree across shards (and the stealing schedule
that reshuffles it mid-run) is timing-dependent, but the *explored tree*
is not — so the merge reduces everything to canonical prefix order and
the result is a pure function of the tree: identical at any shard count,
and (for DFS-ordered runs) identical to the plain serial engine.

Three reductions happen here:

* **Paths** — every executed path (finished or not) is ranked by
  :func:`repro.symex.state.canonical_key` of its decision vector; ranks
  become the merged path ids. For the default DFS search order this
  reproduces the serial engine's ids exactly, because canonical order
  *is* DFS completion order.
* **Counters** — :class:`ExplorationStats` and worker-side
  :class:`SolverStats` fold in canonical outcome order (a fixed order,
  so float accumulation never depends on arrival order; the integer
  totals are partition-invariant, the float ones vary run-to-run exactly
  as wall clock does).
* **Observer findings** — the per-shard
  :class:`~repro.symex.observers.ObserverDelta` snapshots merge via
  :meth:`ObserverDelta.merge` (canonical per-path order, summed
  counters), ready for :meth:`PathObserver.restore`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SymexError
from repro.explore.shard import Prefix, ShardOutcome
from repro.solver.solver import SolverStats
from repro.symex.engine import ExplorationResult, ExplorationStats
from repro.symex.observers import ObserverDelta
from repro.symex.state import canonical_key


@dataclass
class MergedExploration:
    """The deterministic reduction of all shard outcomes.

    Attributes:
        exploration: merged result — paths renumbered and sorted in
            canonical prefix order, counters summed
            (``stats.elapsed_seconds`` is aggregate shard CPU time until
            the scheduler overwrites it with coordinator wall clock).
        path_ids: decision vector -> canonical path id, covering every
            executed path (observers translate recorded ids through it).
        solver_stats: shard-side solver counters folded in canonical
            outcome order (the coordinator's own engine keeps its
            counters on its ``Solver`` as usual).
        delta: merged observer findings, or None for observer-less runs.
    """

    exploration: ExplorationResult
    path_ids: dict[Prefix, int]
    solver_stats: SolverStats
    delta: ObserverDelta | None


def merge_outcomes(outcomes: list[ShardOutcome]) -> MergedExploration:
    """Fold shard outcomes into one canonical exploration result."""
    # Fix the fold order first: outcomes sorted by the canonical rank of
    # their first executed path (empty outcomes last). Every per-outcome
    # aggregate below folds in this order.
    ordered = sorted(
        outcomes,
        key=lambda o: canonical_key(o.executed[0][0]) if o.executed else (2,))

    executed: list[tuple[Prefix, str]] = []
    for outcome in ordered:
        executed.extend(outcome.executed)
    executed.sort(key=lambda entry: canonical_key(entry[0]))
    path_ids = {decisions: rank
                for rank, (decisions, _verdict) in enumerate(executed)}
    if len(path_ids) != len(executed):
        raise SymexError(
            "shard outcomes overlap: the same decision vector was executed "
            "by two shards — prefixes must partition the tree")

    paths = [replace(path, path_id=path_ids[path.decisions])
             for outcome in ordered for path in outcome.paths]
    paths.sort(key=lambda path: path.path_id)

    stats = ExplorationStats()
    solver_stats = SolverStats()
    deltas: list[ObserverDelta] = []
    for outcome in ordered:
        if outcome.stats is not None:
            stats.merge(outcome.stats)
        solver_stats += outcome.solver_stats
        if outcome.delta is not None:
            deltas.append(outcome.delta)

    merged_delta = ObserverDelta.merge(deltas) if deltas else None
    exploration = ExplorationResult(paths=paths, stats=stats,
                                    executed=executed, frontier=())
    return MergedExploration(exploration=exploration, path_ids=path_ids,
                             solver_stats=solver_stats, delta=merged_delta)
