"""The coordinator: seeds shards, brokers stealing, merges outcomes.

:class:`ShardScheduler` owns the whole sharded run. It explores the top
of the tree in-process to grow a frontier of fork prefixes, partitions
that frontier across ``shards`` workers, then sits in a message loop
re-balancing work: a worker that drains its prefixes goes idle, and the
coordinator raises the steal flag of a loaded worker, whose next
checkpoint donates the shallowest half of its worklist back for
reassignment. Outcomes merge deterministically regardless of any of this
scheduling — see :mod:`repro.explore.merge`.

Where the workers live is the :class:`~repro.explore.transport.Transport`'s
business: :class:`~repro.explore.transport.LocalTransport` (the default)
runs them as ``multiprocessing`` processes on this machine,
:class:`~repro.explore.tcp.TcpTransport` drives ``repro worker`` daemons
on remote hosts over sockets. The scheduler speaks only the transport
interface, so findings are byte-identical on either.

Worker loss is a policy decision (``on_worker_loss``): the default
``"fail"`` raises a :class:`SymexError` naming the dead worker and its
assignment; ``"recover"`` discards the dead worker's partial results,
reclaims its decision prefixes (minus the subtrees it had already
donated — those live on elsewhere), and reassigns them to a respawned
replacement or the surviving workers. Because every path replays from
the root and the merge renumbers canonically, a re-run assignment yields
byte-identical findings — recovery costs wall clock, never correctness.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.errors import SymexError
from repro.explore.checkpoint import (
    JournalMeta,
    RunJournal,
    engine_signature,
    outstanding_regions,
)
from repro.explore.merge import merge_outcomes
from repro.explore.shard import (
    MSG_DONATE,
    MSG_DONE,
    MSG_ERROR,
    MSG_HEARTBEAT,
    Assignment,
    FrontierControl,
    Prefix,
    ShardOutcome,
    ShardSetup,
    extends,
)
from repro.obs import trace as obs_trace
from repro.obs.log import get_logger, log_event
from repro.explore.transport import Transport, WorkerSession, resolve_transport
from repro.solver.solver import SolverStats
from repro.symex.engine import BFS, Engine, EngineConfig, ExplorationResult
from repro.symex.observers import PathObserver
from repro.symex.state import canonical_key

#: Frontier prefixes harvested per shard before workers start; a few
#: subtrees per worker gives the first round of load balancing for free.
DEFAULT_SEED_FACTOR = 4

#: Coordinator poll interval while waiting on worker messages (seconds).
_POLL_SECONDS = 0.02

#: Consecutive empty polls with a non-responding worker before the death
#: verdict — grace for a just-dead worker's last in-flight message.
_DEATH_GRACE_POLLS = 5

#: Seconds between worker liveness-gauge heartbeats when tracing or
#: ``--progress`` turns them on.
DEFAULT_HEARTBEAT_SECONDS = 0.25

_log = get_logger("explore")


@dataclass
class ShardedExploration:
    """Result of one sharded exploration run.

    Attributes:
        exploration: deterministic merged result (canonical path ids,
            summed counters, ``stats.elapsed_seconds`` = coordinator
            wall clock for the whole run).
        observer: the coordinator's observer, with findings restored
            from the canonical merge of every shard's delta (None when
            the run had no observer).
        path_ids: decision vector -> canonical path id for every
            executed path.
        worker_solver_stats: solver counters accumulated inside shard
            workers, folded in canonical order (coordinator-side solver
            work stays on the coordinator engine's own stats).
        shards: worker count the run was configured with.
        steals: successful (non-empty) worklist donations brokered by
            the coordinator — a load-balancing diagnostic, not part of
            the deterministic output.
        cache_entries_shipped: feasibility entries in the query-cache
            snapshot shipped to each worker at fan-out (0 when shipping
            was disabled or the run never fanned out).
        worker_failures: workers declared dead during the run (0 on a
            fault-free run; only ever non-zero with
            ``on_worker_loss="recover"`` — a death under ``"fail"``
            raises instead).
        prefixes_reassigned: decision prefixes reclaimed from dead
            workers and re-run elsewhere.
        recovery_seconds: wall clock spent inside recovery (reclaiming,
            respawning, re-dispatching) — the overhead a fault cost.
        journal_checkpoints: durable run-journal checkpoints this
            process wrote (0 when the run was not journaled).
        resumed_regions: completed assignments replayed from the journal
            instead of re-explored (0 for a fresh run).
        worker_traces: per-worker :class:`~repro.obs.trace.TraceDelta`
            lists (in per-worker arrival order) collected from traced
            result frames — empty unless the run traced. Observational
            only; stripped from outcomes before the deterministic merge.
    """

    exploration: ExplorationResult
    observer: PathObserver | None
    path_ids: dict[Prefix, int]
    worker_solver_stats: SolverStats
    shards: int
    steals: int = 0
    cache_entries_shipped: int = 0
    worker_failures: int = 0
    prefixes_reassigned: int = 0
    recovery_seconds: float = 0.0
    journal_checkpoints: int = 0
    resumed_regions: int = 0
    worker_traces: dict[int, list] = field(default_factory=dict)


@dataclass
class _Booking:
    """Coordinator-side record of one outstanding assignment.

    ``exclude`` grows as the holder donates: a donated subtree belongs
    to whoever the coordinator reassigns it to, so if the holder dies
    its region is re-run *minus* every donation.
    """

    roots: list[Prefix]
    exclude: list[Prefix] = field(default_factory=list)


class ShardScheduler:
    """Decision-prefix sharded exploration across a worker fleet.

    Args:
        setup: module-level callable building one shard's program and
            observer: ``setup(engine, *setup_args) -> (program,
            observer)``. Runs once on the coordinator engine (seed
            phase) and once per assignment inside each worker. The
            observer may be None (plain exploration); otherwise it must
            be delta-capable (:meth:`PathObserver.delta`).
        setup_args: picklable arguments for ``setup``.
        shards: worker count (>= 1).
        engine: coordinator engine for the seed phase; defaults to a
            fresh ``Engine(engine_config)``. Its query cache/service
            wiring is used only above the frontier — workers build
            private engines from ``engine_config``.
        engine_config: exploration limits for workers (defaults to the
            coordinator engine's config). Note the ``max_paths`` cap
            degrades to per-worker granularity in a sharded run; byte
            parity with the serial engine is only guaranteed for runs
            that drain the tree below the cap.
        seed_factor: frontier prefixes to grow per shard before
            partitioning.
        transport: where the workers live — a ready
            :class:`~repro.explore.transport.Transport`, ``"local"``
            (default) or ``"tcp"`` (requires ``hosts``).
        hosts: ``"host:port"`` addresses of running ``repro worker``
            daemons for the TCP transport.
        ship_cache: ship a read-only snapshot of the coordinator
            engine's canonical query cache (phase-1 + seed-phase
            feasibility answers) to every worker at fan-out, so shards
            do not re-solve queries a sibling phase already answered.
            Sound on any transport (booleans are pure functions of the
            canonical query); disable only to measure the overhead it
            removes.
        on_worker_loss: ``"fail"`` (default) raises on a silently dead
            worker, naming the lost assignment — exactly the
            pre-recovery semantics. ``"recover"`` reclaims the dead
            worker's prefixes and reassigns them (to a respawned
            replacement when the transport can provide one, else to the
            survivors); findings stay byte-identical either way. A
            worker that reports a Python exception (``MSG_ERROR``)
            always fails the run — the bug is deterministic, re-running
            it would just crash again.
        max_worker_retries: respawn attempts per worker slot across the
            run before that slot is written off and its work spread over
            the survivors. The run only fails when no worker is left.
        run_dir: when set, journal completed assignments to a
            write-ahead file in this directory
            (:class:`~repro.explore.checkpoint.RunJournal`) so a killed
            coordinator can be resumed.
        checkpoint_interval: completed assignments per durable journal
            checkpoint (1 = fsync every completion).
        resume: replay the journal in ``run_dir`` instead of seeding
            from scratch: journaled outcomes are merged as-is and only
            the outstanding regions of the frontier are re-explored.
            Findings are byte-identical to an uninterrupted run.
        checkpoint_hook: test seam called as ``hook(n)`` after the nth
            journal checkpoint of this process is durable (the fault
            harness injects coordinator death here).
        trace: ship tracing-enabled sessions to the workers; their span
            deltas come home on result frames and land in
            :attr:`ShardedExploration.worker_traces`. Purely
            observational — findings are byte-identical either way.
        heartbeat_interval: seconds between worker liveness-gauge
            heartbeats; 0 disables them. Tracing or an attached progress
            meter defaults this to :data:`DEFAULT_HEARTBEAT_SECONDS`.
        progress: an optional :class:`~repro.obs.progress.ProgressMeter`
            fed from heartbeats and coordinator state (the ``--progress``
            status line).
    """

    def __init__(self, setup: ShardSetup, setup_args: tuple = (), *,
                 shards: int = 2, engine: Engine | None = None,
                 engine_config: EngineConfig | None = None,
                 seed_factor: int = DEFAULT_SEED_FACTOR,
                 transport: Transport | str | None = None,
                 hosts: tuple = (),
                 ship_cache: bool = True,
                 on_worker_loss: str = "fail",
                 max_worker_retries: int = 2,
                 run_dir: str | None = None,
                 checkpoint_interval: int = 1,
                 resume: bool = False,
                 checkpoint_hook=None,
                 trace: bool = False,
                 heartbeat_interval: float | None = None,
                 progress=None):
        if shards < 1:
            raise SymexError(f"shard count must be >= 1, got {shards}")
        if on_worker_loss not in ("fail", "recover"):
            raise SymexError(
                f"on_worker_loss must be 'fail' or 'recover', "
                f"got {on_worker_loss!r}")
        if max_worker_retries < 0:
            raise SymexError(
                f"max_worker_retries must be >= 0, got {max_worker_retries}")
        if checkpoint_interval < 1:
            raise SymexError(
                f"checkpoint_interval must be >= 1, "
                f"got {checkpoint_interval}")
        if resume and run_dir is None:
            raise SymexError(
                "resume=True needs run_dir: the journal of the killed "
                "run is what a resume replays")
        self.setup = setup
        self.setup_args = tuple(setup_args)
        self.shards = shards
        self.engine = engine or Engine(engine_config)
        self.engine_config = engine_config or self.engine.config
        self.seed_factor = max(1, seed_factor)
        self.transport = resolve_transport(transport, hosts)
        self.ship_cache = ship_cache
        self.on_worker_loss = on_worker_loss
        self.max_worker_retries = max_worker_retries
        self.run_dir = run_dir
        self.checkpoint_interval = checkpoint_interval
        self.resume = resume
        self.checkpoint_hook = checkpoint_hook
        self.trace = trace
        if heartbeat_interval is None:
            heartbeat_interval = (DEFAULT_HEARTBEAT_SECONDS
                                  if (trace or progress is not None) else 0.0)
        self.heartbeat_interval = heartbeat_interval
        self.progress = progress
        self._journal: RunJournal | None = None
        self._worker_failures = 0
        self._prefixes_reassigned = 0
        self._recovery_seconds = 0.0
        self._resumed_regions = 0
        self._worker_traces: dict[int, list] = {}
        self._fleet_gauges: dict[int, dict] = {}

    # -- observability seams -------------------------------------------------

    @staticmethod
    def _span(name: str, **attrs):
        tracer = obs_trace.active
        if tracer is None:
            return nullcontext()
        return tracer.span(name, **attrs)

    @staticmethod
    def _event(name: str, **attrs) -> None:
        tracer = obs_trace.active
        if tracer is not None:
            tracer.event(name, **attrs)

    # -- phases --------------------------------------------------------------

    def run(self) -> ShardedExploration:
        """Seed (or replay), fan out, steal until drained, merge."""
        started = time.perf_counter()
        self._worker_failures = 0
        self._prefixes_reassigned = 0
        self._recovery_seconds = 0.0
        self._resumed_regions = 0
        self._worker_traces = {}
        self._fleet_gauges = {}
        self._journal = None
        if self.run_dir is not None:
            self._journal = RunJournal(
                self.run_dir, self.checkpoint_interval,
                on_checkpoint=self._on_checkpoint)
        program, observer = self.setup(self.engine, *self.setup_args)
        try:
            if self.resume:
                outcomes, entries = self._replay_journal(observer)
            else:
                outcomes, entries = self._seed(program, observer)
            steals = 0
            shipped = 0
            if entries:
                shard_outcomes, steals, shipped = self._fan_out(entries)
                outcomes.extend(shard_outcomes)
        except BaseException:
            # Aborting (including an injected coordinator kill): leave
            # the journal exactly as durable as the last checkpoint —
            # that is the state a resume must recover from.
            if self._journal is not None:
                self._journal.abandon()
            raise
        if self._journal is not None:
            self._journal.close()

        with self._span("coordinator.merge", outcomes=len(outcomes)):
            merged = merge_outcomes(outcomes)
        merged.exploration.stats.elapsed_seconds = (
            time.perf_counter() - started)
        if observer is not None and merged.delta is not None:
            observer.restore(merged.delta, merged.path_ids)
        return ShardedExploration(
            exploration=merged.exploration, observer=observer,
            path_ids=merged.path_ids,
            worker_solver_stats=merged.solver_stats, shards=self.shards,
            steals=steals, cache_entries_shipped=shipped,
            worker_failures=self._worker_failures,
            prefixes_reassigned=self._prefixes_reassigned,
            recovery_seconds=self._recovery_seconds,
            journal_checkpoints=(self._journal.checkpoints_written
                                 if self._journal is not None else 0),
            resumed_regions=self._resumed_regions,
            worker_traces=self._worker_traces)

    def _seed(self, program, observer):
        """Fresh-run seed phase: explore the tree top, open the journal."""
        # Seed breadth-first regardless of the configured order: a DFS
        # worklist only ever holds one open sibling per level (too narrow
        # a frontier on deep trees), while BFS's worklist is the breadth
        # frontier itself. The explored tree is order-invariant, so the
        # canonical merge still reproduces the configured-order output.
        with self._span("coordinator.seed",
                        target=self.shards * self.seed_factor):
            seed = self.engine.explore(
                program, observer,
                control=FrontierControl(self.shards * self.seed_factor),
                order=BFS)
        seed_delta = None
        if observer is not None:
            observer.finalize()
            seed_delta = observer.delta()
            if seed_delta is None:
                raise SymexError(
                    f"{type(observer).__name__} is not delta-capable: "
                    "sharded exploration needs PathObserver.delta() to "
                    "return an ObserverDelta")
        # Coordinator solver work is already booked on self.engine's own
        # stats; the seed outcome ships an empty delta so it is not
        # double-counted by the merge.
        seed_outcome = ShardOutcome(executed=seed.executed, paths=seed.paths,
                                    stats=seed.stats, delta=seed_delta)
        frontier = sorted(seed.frontier, key=canonical_key)
        if self._journal is not None:
            self._journal.begin(self._journal_meta(), seed_outcome,
                                tuple(frontier))
        return [seed_outcome], [(prefix, ()) for prefix in frontier]

    def _replay_journal(self, observer):
        """Resume: merge journaled outcomes, re-seed only what's left.

        The setup has already run (the observer instance must exist for
        the merged delta to restore into), but the seed exploration is
        skipped — its outcome is replayed from the journal, as is every
        assignment that completed before the coordinator died.
        """
        replay = self._journal.load_for_resume(self._journal_meta())
        outcomes = [replay.seed_outcome]
        outcomes.extend(replay.outcomes)
        self._resumed_regions = len(replay.regions)
        entries = outstanding_regions(replay.frontier, replay.regions)
        entries.sort(key=lambda entry: canonical_key(entry[0]))
        return outcomes, entries

    def _journal_meta(self) -> JournalMeta:
        setup_name = (f"{getattr(self.setup, '__module__', '?')}:"
                      f"{getattr(self.setup, '__qualname__', repr(self.setup))}")
        return JournalMeta(setup=setup_name,
                           engine_signature=engine_signature(
                               self.engine_config))

    def _on_checkpoint(self, index: int) -> None:
        # Checkpoint the durable query cache with the journal: a resumed
        # coordinator then re-solves at most one checkpoint interval's
        # worth of seed-phase queries.
        with self._span("coordinator.checkpoint", index=index):
            self.engine.query_cache.flush_store()
        if self.checkpoint_hook is not None:
            self.checkpoint_hook(index)

    # -- worker fleet --------------------------------------------------------

    def _fan_out(self, entries: list[tuple[Prefix, tuple[Prefix, ...]]],
                 ) -> tuple[list[ShardOutcome], int, int]:
        """Partition pending entries across the fleet; broker steals."""
        snapshot = (self.engine.query_cache.snapshot()
                    if self.ship_cache else None)
        session = WorkerSession(
            setup=self.setup, setup_args=self.setup_args,
            engine_config=self.engine_config, cache_snapshot=snapshot,
            trace=self.trace,
            heartbeat_interval=self.heartbeat_interval)
        self.transport.start(self.shards, session)
        try:
            outcomes, steals = self._coordinate(entries)
        except BaseException:
            # Aborting (coordinator crash, ^C, injected kill): every
            # in-flight assignment is doomed anyway, so don't grant the
            # graceful drain window — tear the fleet down immediately.
            self.transport.abort()
            raise
        self.transport.stop()
        return outcomes, steals, len(snapshot or ())

    def _coordinate(self, entries) -> tuple[list[ShardOutcome], int]:
        transport = self.transport
        # Pending work is (root prefix, exclusions) — exclusions are
        # non-empty for work reclaimed from a dead worker (or replayed
        # from a journal) whose region had donated subtrees carved out.
        pending: deque[tuple[Prefix, tuple[Prefix, ...]]] = deque(entries)
        active = set(range(self.shards))
        idle = set(active)
        steal_pending: set[int] = set()
        # Outstanding assignment per busy worker — what recovery reclaims
        # (and what the fail-mode error names) when a worker dies.
        assigned: dict[int, _Booking] = {}
        retries = {wid: 0 for wid in active}
        outcomes: list[ShardOutcome] = []
        steals = 0
        dead_polls = 0
        self._dispatch(pending, idle, active, assigned, steal_pending,
                       retries)

        while len(idle) < len(active) or pending:
            if not active:
                raise SymexError(
                    "all shard workers were lost and none could be "
                    f"respawned within max_worker_retries="
                    f"{self.max_worker_retries}; sharded exploration "
                    "cannot complete")
            if self.progress is not None:
                self.progress.maybe_render(
                    workers=len(active), busy=len(active) - len(idle),
                    pending=len(pending), steals=steals,
                    failures=self._worker_failures)
            message = transport.recv(_POLL_SECONDS)
            if message is None:
                # Liveness: a worker that died without reporting (OOM
                # kill, hard crash, lost host — MSG_ERROR only covers
                # Python exceptions) would leave this loop polling
                # forever. A few empty polls of grace let a just-dead
                # worker's last in-flight message drain first.
                dead = [wid for wid in sorted(active)
                        if wid not in idle and not transport.alive(wid)]
                if dead:
                    dead_polls += 1
                    if dead_polls >= _DEATH_GRACE_POLLS:
                        dead_polls = 0
                        log_event(_log, logging.WARNING, "worker.lost",
                                  workers=",".join(
                                      self._describe_safe(w)
                                      for w in dead),
                                  policy=self.on_worker_loss)
                        if self.on_worker_loss == "fail":
                            raise SymexError(
                                self._death_report(dead, assigned))
                        for wid in dead:
                            self._recover(wid, pending, idle, active,
                                          assigned, steal_pending, retries)
                        self._dispatch(pending, idle, active, assigned,
                                       steal_pending, retries)
                else:
                    dead_polls = 0
                self._request_steal(idle, active, steal_pending)
                continue
            dead_polls = 0
            kind, wid, payload = message
            if wid not in active:
                # A worker slot already written off; its reclaimed work
                # runs elsewhere, so folding this message in too would
                # double-count.
                continue
            if kind == MSG_HEARTBEAT:
                # Live gauges only: consumed for progress/trace, never
                # merged — losing or reordering heartbeats cannot change
                # the run's output.
                self._note_heartbeat(wid, payload)
                continue
            if kind == MSG_DONE:
                trace_delta = getattr(payload, "trace", None)
                if trace_delta is not None:
                    # Observational payload: collect per worker (arrival
                    # order per worker is deterministic — result frames
                    # are FIFO) and strip before journal/merge.
                    self._worker_traces.setdefault(wid, []).append(
                        trace_delta)
                    payload.trace = None
                outcomes.append(payload)
                idle.add(wid)
                booking = assigned.pop(wid, None)
                steal_pending.discard(wid)
                transport.acknowledge_done(wid)
                if self._journal is not None and booking is not None:
                    # The booking at completion time is the completed
                    # region: roots minus everything donated meanwhile.
                    self._journal.note_outcome(booking.roots,
                                               booking.exclude, payload)
                if pending:
                    self._dispatch(pending, idle, active, assigned,
                                   steal_pending, retries)
                else:
                    self._request_steal(idle, active, steal_pending)
            elif kind == MSG_DONATE:
                steal_pending.discard(wid)
                if payload:
                    steals += 1
                    booking = assigned.get(wid)
                    donor_exclude = tuple(booking.exclude) if booking else ()
                    for prefix in payload:
                        # The donor's standing exclusions that fall inside
                        # this donated subtree travel with it.
                        pending.append((prefix, tuple(
                            d for d in donor_exclude
                            if extends(d, prefix) and d != prefix)))
                    if booking is not None:
                        # Donated subtrees leave the donor's region: if it
                        # dies later, they must not be re-run with it.
                        booking.exclude.extend(payload)
                self._dispatch(pending, idle, active, assigned,
                               steal_pending, retries)
            elif kind == MSG_ERROR:
                raise SymexError(
                    f"shard worker {transport.describe(wid)} failed:\n"
                    f"{payload}")
            else:  # pragma: no cover - internal protocol
                raise SymexError(f"unknown shard message kind {kind!r}")
        return outcomes, steals

    def _note_heartbeat(self, wid: int, payload) -> None:
        """Fold a worker heartbeat into the live fleet gauges."""
        if not isinstance(payload, dict):  # pragma: no cover - defensive
            return
        self._fleet_gauges[wid] = payload
        if self.progress is not None:
            self.progress.heartbeat(wid, payload)
        self._event("worker.heartbeat", wid=wid, **payload)

    # -- recovery ------------------------------------------------------------

    def _recover(self, wid: int, pending: deque, idle: set[int],
                 active: set[int], assigned: dict[int, _Booking],
                 steal_pending: set[int], retries: dict[int, int]) -> None:
        """Reclaim a dead worker's region; respawn or retire the slot.

        The dead worker's partial results never reached the outcome list
        (a worker reports one ``MSG_DONE`` per assignment, at the end),
        so discarding means simply re-running its booking — roots minus
        the subtrees it donated, which other workers own now.
        """
        with self._span("coordinator.recover", wid=wid):
            self._recover_inner(wid, pending, idle, active, assigned,
                                steal_pending, retries)

    def _recover_inner(self, wid: int, pending: deque, idle: set[int],
                       active: set[int], assigned: dict[int, _Booking],
                       steal_pending: set[int],
                       retries: dict[int, int]) -> None:
        recovery_started = time.perf_counter()
        self._worker_failures += 1
        steal_pending.discard(wid)
        idle.discard(wid)
        booking = assigned.pop(wid, None)
        if booking is not None:
            for root in booking.roots:
                if any(extends(root, d) for d in booking.exclude):
                    # The root itself was donated away (StealControl
                    # hands out the shallowest worklist entries, which
                    # can be untouched roots of a multi-root
                    # assignment): its subtree already belongs to
                    # whoever received the donation, so requeueing it
                    # here would explore it twice and the merge would
                    # reject the overlap.
                    continue
                self._prefixes_reassigned += 1
                pending.append((root, tuple(
                    d for d in booking.exclude
                    if extends(d, root) and d != root)))
        revived = False
        while retries[wid] < self.max_worker_retries:
            retries[wid] += 1
            if self.transport.respawn(wid):
                revived = True
                break
        if revived:
            idle.add(wid)
        else:
            active.discard(wid)
        elapsed = time.perf_counter() - recovery_started
        self._recovery_seconds += elapsed
        log_event(_log, logging.WARNING, "worker.recovered",
                  worker=self._describe_safe(wid),
                  prefixes_reclaimed=len(booking.roots) if booking else 0,
                  respawned=revived, recovery_seconds=elapsed)

    def _describe_safe(self, wid: int) -> str:
        """``transport.describe`` that cannot fail on a torn-down or
        never-started worker slot (recovery logs race worker death)."""
        try:
            return self.transport.describe(wid)
        except Exception:  # pragma: no cover - transport-specific races
            return f"worker {wid}"

    def _death_report(self, dead: list[int],
                      assigned: dict[int, _Booking]) -> str:
        """Name the dead workers and the assignments that died with them."""
        lines = []
        for wid in dead:
            booking = assigned.get(wid)
            prefixes = booking.roots if booking else []
            rendered = ", ".join(
                "".join("T" if d else "F" for d in p) or "<root>"
                for p in prefixes[:4])
            more = len(prefixes) - 4
            lines.append(
                f"  {self.transport.describe(wid)} holding "
                f"{len(prefixes)} prefix(es) "
                f"[{rendered}{f', +{more} more' if more > 0 else ''}]")
        detail = "\n".join(lines)
        return ("shard worker(s) died without reporting a result "
                f"(killed? lost host?); the lost assignment(s):\n{detail}\n"
                "sharded exploration cannot complete "
                "(on_worker_loss='recover' reassigns instead)")

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, pending: deque, idle: set[int], active: set[int],
                  assigned: dict[int, _Booking], steal_pending: set[int],
                  retries: dict[int, int]) -> None:
        """Assign pending work; under ``"recover"``, a worker that turns
        out unreachable at assign time is treated exactly like a
        liveness-poll death (its booking reclaimed, slot respawned or
        retired) and dispatching continues on whoever is left."""
        while True:
            failed = self._assign(pending, idle, assigned)
            if not failed:
                return
            for wid in failed:
                self._recover(wid, pending, idle, active, assigned,
                              steal_pending, retries)

    def _assign(self, pending: deque, idle: set[int],
                assigned: dict[int, _Booking]) -> list[int]:
        """Split the pending work evenly across the idle workers.

        Returns the workers whose assignment could not be delivered
        (always empty under ``on_worker_loss="fail"`` — the transport
        error propagates instead).
        """
        failed: list[int] = []
        while pending and (idle - set(failed)):
            takers = sorted(idle - set(failed))[:len(pending)]
            base, extra = divmod(len(pending), len(takers))
            for position, wid in enumerate(takers):
                if not pending:
                    break
                size = base + (1 if position < extra else 0)
                booking = self._take_batch(pending, size)
                if booking is None:
                    continue
                idle.discard(wid)
                assigned[wid] = booking
                try:
                    with self._span("coordinator.assign", wid=wid,
                                    roots=len(booking.roots)):
                        self.transport.assign(wid, Assignment(
                            roots=tuple(booking.roots),
                            exclude=tuple(booking.exclude)))
                except SymexError:
                    if self.on_worker_loss == "fail":
                        raise
                    failed.append(wid)
        return failed

    @staticmethod
    def _take_batch(pending: deque, size: int) -> _Booking | None:
        """Pop up to ``size`` compatible pending entries into one booking.

        A batch ships one merged exclusion list, so entries are only
        batched together when no root of the batch falls inside another
        entry's exclusions (the worker's exclusion filter would silently
        drop that root). Incompatible entries are deferred, keeping
        their queue order; a single entry is always self-consistent
        (its exclusions are strict descendants of its own root), so
        dispatch always makes progress.

        Duplicate roots are collapsed: an entry whose root is already
        covered by an accepted root (and not carved back out by the
        batch exclusions) would seed the worker's worklist twice and
        yield duplicate paths inside one outcome, so it is dropped —
        keeping its exclusions, which mark subtrees owned elsewhere.
        Defense in depth against any double-enqueued reclaim.
        """
        if size <= 0:
            return None
        roots: list[Prefix] = []
        exclude: list[Prefix] = []
        deferred: list[tuple[Prefix, tuple[Prefix, ...]]] = []
        for _ in range(len(pending)):
            if len(roots) >= size:
                break
            root, root_exclude = pending.popleft()
            if (any(extends(root, r) for r in roots)
                    and not any(extends(root, d) for d in exclude)):
                exclude.extend(
                    d for d in root_exclude if d not in exclude)
                continue
            candidate_roots = roots + [root]
            candidate_exclude = exclude + [
                d for d in root_exclude if d not in exclude]
            if (any(extends(r, d) for r in candidate_roots
                    for d in candidate_exclude)
                    or any(extends(r, root) for r in roots)):
                # An exclusion swallowing a batch root, or a candidate
                # containing an accepted root: either would corrupt the
                # worker's worklist — defer to a later batch.
                deferred.append((root, root_exclude))
                continue
            roots = candidate_roots
            exclude = candidate_exclude
        pending.extendleft(reversed(deferred))
        if not roots:
            return None
        return _Booking(roots=roots, exclude=exclude)

    def _request_steal(self, idle: set[int], active: set[int],
                       steal_pending: set[int]) -> None:
        """Raise one loaded worker's steal flag when someone is idle."""
        if not idle:
            return
        busy = [wid for wid in sorted(active)
                if wid not in idle and wid not in steal_pending]
        if busy:
            target = busy[0]
            steal_pending.add(target)
            self._event("coordinator.steal", wid=target)
            self.transport.request_steal(target)
