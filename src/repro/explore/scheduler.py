"""The coordinator: seeds shards, brokers stealing, merges outcomes.

:class:`ShardScheduler` owns the whole sharded run. It explores the top
of the tree in-process to grow a frontier of fork prefixes, partitions
that frontier across ``shards`` workers, then sits in a message loop
re-balancing work: a worker that drains its prefixes goes idle, and the
coordinator raises the steal flag of a loaded worker, whose next
checkpoint donates the shallowest half of its worklist back for
reassignment. Outcomes merge deterministically regardless of any of this
scheduling — see :mod:`repro.explore.merge`.

Where the workers live is the :class:`~repro.explore.transport.Transport`'s
business: :class:`~repro.explore.transport.LocalTransport` (the default)
runs them as ``multiprocessing`` processes on this machine,
:class:`~repro.explore.tcp.TcpTransport` drives ``repro worker`` daemons
on remote hosts over sockets. The scheduler speaks only the transport
interface, so findings are byte-identical on either.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.errors import SymexError
from repro.explore.merge import merge_outcomes
from repro.explore.shard import (
    MSG_DONATE,
    MSG_DONE,
    MSG_ERROR,
    FrontierControl,
    Prefix,
    ShardOutcome,
    ShardSetup,
)
from repro.explore.transport import Transport, WorkerSession, resolve_transport
from repro.solver.solver import SolverStats
from repro.symex.engine import BFS, Engine, EngineConfig, ExplorationResult
from repro.symex.observers import PathObserver
from repro.symex.state import canonical_key

#: Frontier prefixes harvested per shard before workers start; a few
#: subtrees per worker gives the first round of load balancing for free.
DEFAULT_SEED_FACTOR = 4

#: Coordinator poll interval while waiting on worker messages (seconds).
_POLL_SECONDS = 0.02


@dataclass
class ShardedExploration:
    """Result of one sharded exploration run.

    Attributes:
        exploration: deterministic merged result (canonical path ids,
            summed counters, ``stats.elapsed_seconds`` = coordinator
            wall clock for the whole run).
        observer: the coordinator's observer, with findings restored
            from the canonical merge of every shard's delta (None when
            the run had no observer).
        path_ids: decision vector -> canonical path id for every
            executed path.
        worker_solver_stats: solver counters accumulated inside shard
            workers, folded in canonical order (coordinator-side solver
            work stays on the coordinator engine's own stats).
        shards: worker count the run was configured with.
        steals: successful (non-empty) worklist donations brokered by
            the coordinator — a load-balancing diagnostic, not part of
            the deterministic output.
        cache_entries_shipped: feasibility entries in the query-cache
            snapshot shipped to each worker at fan-out (0 when shipping
            was disabled or the run never fanned out).
    """

    exploration: ExplorationResult
    observer: PathObserver | None
    path_ids: dict[Prefix, int]
    worker_solver_stats: SolverStats
    shards: int
    steals: int = 0
    cache_entries_shipped: int = 0


class ShardScheduler:
    """Decision-prefix sharded exploration across a worker fleet.

    Args:
        setup: module-level callable building one shard's program and
            observer: ``setup(engine, *setup_args) -> (program,
            observer)``. Runs once on the coordinator engine (seed
            phase) and once per assignment inside each worker. The
            observer may be None (plain exploration); otherwise it must
            be delta-capable (:meth:`PathObserver.delta`).
        setup_args: picklable arguments for ``setup``.
        shards: worker count (>= 1).
        engine: coordinator engine for the seed phase; defaults to a
            fresh ``Engine(engine_config)``. Its query cache/service
            wiring is used only above the frontier — workers build
            private engines from ``engine_config``.
        engine_config: exploration limits for workers (defaults to the
            coordinator engine's config). Note the ``max_paths`` cap
            degrades to per-worker granularity in a sharded run; byte
            parity with the serial engine is only guaranteed for runs
            that drain the tree below the cap.
        seed_factor: frontier prefixes to grow per shard before
            partitioning.
        transport: where the workers live — a ready
            :class:`~repro.explore.transport.Transport`, ``"local"``
            (default) or ``"tcp"`` (requires ``hosts``).
        hosts: ``"host:port"`` addresses of running ``repro worker``
            daemons for the TCP transport.
        ship_cache: ship a read-only snapshot of the coordinator
            engine's canonical query cache (phase-1 + seed-phase
            feasibility answers) to every worker at fan-out, so shards
            do not re-solve queries a sibling phase already answered.
            Sound on any transport (booleans are pure functions of the
            canonical query); disable only to measure the overhead it
            removes.
    """

    def __init__(self, setup: ShardSetup, setup_args: tuple = (), *,
                 shards: int = 2, engine: Engine | None = None,
                 engine_config: EngineConfig | None = None,
                 seed_factor: int = DEFAULT_SEED_FACTOR,
                 transport: Transport | str | None = None,
                 hosts: tuple = (),
                 ship_cache: bool = True):
        if shards < 1:
            raise SymexError(f"shard count must be >= 1, got {shards}")
        self.setup = setup
        self.setup_args = tuple(setup_args)
        self.shards = shards
        self.engine = engine or Engine(engine_config)
        self.engine_config = engine_config or self.engine.config
        self.seed_factor = max(1, seed_factor)
        self.transport = resolve_transport(transport, hosts)
        self.ship_cache = ship_cache

    # -- phases --------------------------------------------------------------

    def run(self) -> ShardedExploration:
        """Seed, fan out, steal until drained, merge; see the class doc."""
        started = time.perf_counter()
        program, observer = self.setup(self.engine, *self.setup_args)
        # Seed breadth-first regardless of the configured order: a DFS
        # worklist only ever holds one open sibling per level (too narrow
        # a frontier on deep trees), while BFS's worklist is the breadth
        # frontier itself. The explored tree is order-invariant, so the
        # canonical merge still reproduces the configured-order output.
        seed = self.engine.explore(
            program, observer,
            control=FrontierControl(self.shards * self.seed_factor),
            order=BFS)
        seed_delta = None
        if observer is not None:
            observer.finalize()
            seed_delta = observer.delta()
            if seed_delta is None:
                raise SymexError(
                    f"{type(observer).__name__} is not delta-capable: "
                    "sharded exploration needs PathObserver.delta() to "
                    "return an ObserverDelta")
        # Coordinator solver work is already booked on self.engine's own
        # stats; the seed outcome ships an empty delta so it is not
        # double-counted by the merge.
        outcomes = [ShardOutcome(executed=seed.executed, paths=seed.paths,
                                 stats=seed.stats, delta=seed_delta)]
        steals = 0
        shipped = 0
        frontier = sorted(seed.frontier, key=canonical_key)
        if frontier:
            shard_outcomes, steals, shipped = self._fan_out(frontier)
            outcomes.extend(shard_outcomes)

        merged = merge_outcomes(outcomes)
        merged.exploration.stats.elapsed_seconds = (
            time.perf_counter() - started)
        if observer is not None and merged.delta is not None:
            observer.restore(merged.delta, merged.path_ids)
        return ShardedExploration(
            exploration=merged.exploration, observer=observer,
            path_ids=merged.path_ids,
            worker_solver_stats=merged.solver_stats, shards=self.shards,
            steals=steals, cache_entries_shipped=shipped)

    # -- worker fleet --------------------------------------------------------

    def _fan_out(self, frontier: list[Prefix],
                 ) -> tuple[list[ShardOutcome], int, int]:
        """Partition ``frontier`` across the fleet; broker steals."""
        snapshot = (self.engine.query_cache.snapshot()
                    if self.ship_cache else None)
        session = WorkerSession(
            setup=self.setup, setup_args=self.setup_args,
            engine_config=self.engine_config, cache_snapshot=snapshot)
        self.transport.start(self.shards, session)
        try:
            outcomes, steals = self._coordinate(frontier)
        finally:
            self.transport.stop()
        return outcomes, steals, len(snapshot or ())

    def _coordinate(self, frontier) -> tuple[list[ShardOutcome], int]:
        transport = self.transport
        count = self.shards
        pending: deque[Prefix] = deque(frontier)
        idle = set(range(count))
        steal_pending: set[int] = set()
        # Last assignment shipped to each busy worker — what the error
        # names when a worker dies holding it.
        assigned: dict[int, list[Prefix]] = {}
        outcomes: list[ShardOutcome] = []
        steals = 0
        dead_polls = 0
        self._assign(pending, idle, assigned)

        while len(idle) < count or pending:
            message = transport.recv(_POLL_SECONDS)
            if message is None:
                # Liveness: a worker that died without reporting (OOM
                # kill, hard crash, lost host — MSG_ERROR only covers
                # Python exceptions) would leave this loop polling
                # forever. A few empty polls of grace let a just-dead
                # worker's last in-flight message drain first.
                dead = [wid for wid in range(count)
                        if wid not in idle and not transport.alive(wid)]
                if dead:
                    dead_polls += 1
                    if dead_polls >= 5:
                        raise SymexError(self._death_report(dead, assigned))
                else:
                    dead_polls = 0
                self._request_steal(idle, steal_pending)
                continue
            dead_polls = 0
            kind, wid, payload = message
            if kind == MSG_DONE:
                outcomes.append(payload)
                idle.add(wid)
                assigned.pop(wid, None)
                steal_pending.discard(wid)
                transport.acknowledge_done(wid)
                if pending:
                    self._assign(pending, idle, assigned)
                else:
                    self._request_steal(idle, steal_pending)
            elif kind == MSG_DONATE:
                steal_pending.discard(wid)
                if payload:
                    steals += 1
                    pending.extend(payload)
                self._assign(pending, idle, assigned)
            elif kind == MSG_ERROR:
                raise SymexError(
                    f"shard worker {transport.describe(wid)} failed:\n"
                    f"{payload}")
            else:  # pragma: no cover - internal protocol
                raise SymexError(f"unknown shard message kind {kind!r}")
        return outcomes, steals

    def _death_report(self, dead: list[int],
                      assigned: dict[int, list[Prefix]]) -> str:
        """Name the dead workers and the assignments that died with them."""
        lines = []
        for wid in dead:
            prefixes = assigned.get(wid, [])
            rendered = ", ".join(
                "".join("T" if d else "F" for d in p) or "<root>"
                for p in prefixes[:4])
            more = len(prefixes) - 4
            lines.append(
                f"  {self.transport.describe(wid)} holding "
                f"{len(prefixes)} prefix(es) "
                f"[{rendered}{f', +{more} more' if more > 0 else ''}]")
        detail = "\n".join(lines)
        return ("shard worker(s) died without reporting a result "
                f"(killed? lost host?); the lost assignment(s):\n{detail}\n"
                "sharded exploration cannot complete")

    def _assign(self, pending: deque, idle: set[int],
                assigned: dict[int, list[Prefix]]) -> None:
        """Split the pending prefixes evenly across the idle workers."""
        while pending and idle:
            takers = sorted(idle)[:len(pending)]
            base, extra = divmod(len(pending), len(takers))
            for position, wid in enumerate(takers):
                size = base + (1 if position < extra else 0)
                assignment = [pending.popleft() for _ in range(size)]
                idle.discard(wid)
                assigned[wid] = assignment
                self.transport.assign(wid, assignment)

    def _request_steal(self, idle: set[int],
                       steal_pending: set[int]) -> None:
        """Raise one loaded worker's steal flag when someone is idle."""
        if not idle:
            return
        busy = [wid for wid in range(self.shards)
                if wid not in idle and wid not in steal_pending]
        if busy:
            target = busy[0]
            steal_pending.add(target)
            self.transport.request_steal(target)
