"""Shard-side primitives: exploration controls and the worker main loop.

A *shard* is one worker process owning a private engine (and therefore a
private solver pipeline). It is driven by the coordinator through two
queues and a steal flag — see the package docstring for the protocol and
:mod:`repro.explore.scheduler` for the coordinator side.
"""

from __future__ import annotations

import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.solver.solver import SolverStats
from repro.symex.engine import Engine, EngineConfig, ExploreControl
from repro.symex.observers import ObserverDelta
from repro.symex.state import PathResult

#: A worker setup callable: ``setup(engine, *args) -> (program, observer)``.
#: It runs once per assignment inside the worker process (and once on the
#: coordinator for the seed phase), so it must be picklable under the
#: ``spawn`` start method — a module-level function plus picklable args.
ShardSetup = Callable

#: Decision prefix identifying an unexplored subtree.
Prefix = tuple[bool, ...]

# result-queue message kinds (worker -> coordinator)
MSG_DONE = "done"
MSG_DONATE = "donate"
MSG_ERROR = "error"


@dataclass
class ShardOutcome:
    """Everything one exploration (seed phase or worker assignment) produced.

    Attributes:
        executed: ``(decisions, verdict)`` per executed path, local
            execution order — the renumbering record.
        paths: the finished :class:`PathResult` list (local path ids).
        stats: this exploration's counters.
        solver_stats: the engine's solver counters accumulated during
            this exploration only (reset per assignment, so the
            coordinator folds exact deltas).
        delta: the observer's findings snapshot, or None when the run
            had no observer.
    """

    executed: list[tuple[Prefix, str]] = field(default_factory=list)
    paths: list[PathResult] = field(default_factory=list)
    stats: object = None
    solver_stats: SolverStats = field(default_factory=SolverStats)
    delta: ObserverDelta | None = None


class FrontierControl(ExploreControl):
    """Stop exploring once the worklist holds ``target`` fork prefixes.

    The coordinator's seed phase runs under this control: the worklist
    left behind is the frontier that gets partitioned across shards.
    """

    def __init__(self, target: int):
        self.target = max(1, target)

    def checkpoint(self, worklist: deque) -> bool:
        return len(worklist) < self.target


class StealControl(ExploreControl):
    """Donate worklist entries when the coordinator requests a steal.

    ``flag`` is a :class:`multiprocessing.Event` the coordinator sets;
    at the next between-paths checkpoint the worker pops the shallowest
    half of its worklist (the oldest forks — for DFS those are the
    biggest unexplored subtrees) and hands it to ``donate``. An empty
    donation is still sent so the coordinator knows this worker had
    nothing to give and can ask another.
    """

    def __init__(self, flag, donate: Callable[[list[Prefix]], None]):
        self.flag = flag
        self.donate = donate
        self.donations = 0

    def checkpoint(self, worklist: deque) -> bool:
        if self.flag.is_set():
            self.flag.clear()
            share = [worklist.popleft() for _ in range(len(worklist) // 2)]
            self.donations += 1
            self.donate(share)
        return True


def run_assignment(engine: Engine, setup: ShardSetup, setup_args: tuple,
                   prefixes: list[Prefix],
                   control: ExploreControl | None = None) -> ShardOutcome:
    """Explore ``prefixes`` to exhaustion on ``engine``; return the outcome.

    A fresh ``(program, observer)`` pair is built per assignment (the
    observer must start empty so its delta covers exactly this
    assignment) while the engine — and with it the warm canonical cache
    and frame stack — persists across assignments. Solver counters are
    reset first so the outcome ships an exact per-assignment delta.
    """
    program, observer = setup(engine, *setup_args)
    engine.solver.stats = SolverStats()
    result = engine.explore(program, observer, roots=prefixes,
                            control=control)
    delta = None
    if observer is not None:
        observer.finalize()
        delta = observer.delta()
    return ShardOutcome(executed=result.executed, paths=result.paths,
                        stats=result.stats, solver_stats=engine.solver.stats,
                        delta=delta)


def shard_worker(worker_id: int, setup: ShardSetup, setup_args: tuple,
                 engine_config: EngineConfig, task_queue, result_queue,
                 steal_flag) -> None:
    """Worker process main loop (one per shard).

    Blocks on ``task_queue`` for prefix assignments, explores each to
    exhaustion (donating through ``steal_flag``/``result_queue`` when
    asked) and ships a :class:`ShardOutcome` per assignment. ``None``
    shuts the worker down. Any exception is reported as an
    :data:`MSG_ERROR` message instead of dying silently.
    """
    try:
        engine = Engine(engine_config)
        control = StealControl(
            steal_flag,
            lambda share: result_queue.put((MSG_DONATE, worker_id, share)))
        while True:
            assignment = task_queue.get()
            if assignment is None:
                return
            outcome = run_assignment(engine, setup, setup_args, assignment,
                                     control)
            result_queue.put((MSG_DONE, worker_id, outcome))
    except Exception:  # pragma: no cover - exercised via scheduler tests
        result_queue.put((MSG_ERROR, worker_id, traceback.format_exc()))
