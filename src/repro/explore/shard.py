"""Shard-side primitives: exploration controls and the worker main loop.

A *shard* is one worker process owning a private engine (and therefore a
private solver pipeline). It is driven by the coordinator through two
queues and a steal flag — see the package docstring for the protocol and
:mod:`repro.explore.scheduler` for the coordinator side.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import trace as obs_trace
from repro.obs.trace import TraceDelta
from repro.solver.solver import SolverStats
from repro.symex.engine import Engine, ExploreControl
from repro.symex.observers import ObserverDelta
from repro.symex.state import PathResult

#: A worker setup callable: ``setup(engine, *args) -> (program, observer)``.
#: It runs once per assignment inside the worker process (and once on the
#: coordinator for the seed phase), so it must be picklable under the
#: ``spawn`` start method — a module-level function plus picklable args.
ShardSetup = Callable

#: Decision prefix identifying an unexplored subtree.
Prefix = tuple[bool, ...]

# result-queue message kinds (worker -> coordinator)
MSG_DONE = "done"
MSG_DONATE = "donate"
MSG_ERROR = "error"
MSG_HEARTBEAT = "heartbeat"


def extends(prefix: Prefix, ancestor: Prefix) -> bool:
    """True when ``prefix`` lies inside ``ancestor``'s subtree.

    A prefix extends its ancestor when it replays the same decisions up
    to the ancestor's depth (equal prefixes count: a subtree contains its
    own root).
    """
    return len(prefix) >= len(ancestor) and prefix[:len(ancestor)] == ancestor


@dataclass(frozen=True)
class Assignment:
    """One unit of work shipped to a shard worker.

    Attributes:
        roots: decision prefixes whose subtrees the worker explores to
            exhaustion.
        exclude: decision prefixes carved *out* of those subtrees. Empty
            on a first-time assignment; non-empty when the coordinator
            reassigns a dead worker's region — the parts the dead worker
            had already donated belong to other workers now, and
            re-exploring them would double-merge their paths.
    """

    roots: tuple[Prefix, ...]
    exclude: tuple[Prefix, ...] = ()


@dataclass
class ShardOutcome:
    """Everything one exploration (seed phase or worker assignment) produced.

    Attributes:
        executed: ``(decisions, verdict)`` per executed path, local
            execution order — the renumbering record.
        paths: the finished :class:`PathResult` list (local path ids).
        stats: this exploration's counters.
        solver_stats: the engine's solver counters accumulated during
            this exploration only (reset per assignment, so the
            coordinator folds exact deltas).
        delta: the observer's findings snapshot, or None when the run
            had no observer.
        trace: the worker tracer's span records for this assignment
            (:class:`~repro.obs.trace.TraceDelta`), or None when tracing
            was off. Purely observational — stripped by the coordinator
            before merge, never part of the determinism contract.
    """

    executed: list[tuple[Prefix, str]] = field(default_factory=list)
    paths: list[PathResult] = field(default_factory=list)
    stats: object = None
    solver_stats: SolverStats = field(default_factory=SolverStats)
    delta: ObserverDelta | None = None
    trace: TraceDelta | None = None


class FrontierControl(ExploreControl):
    """Stop exploring once the worklist holds ``target`` fork prefixes.

    The coordinator's seed phase runs under this control: the worklist
    left behind is the frontier that gets partitioned across shards.
    """

    def __init__(self, target: int):
        self.target = max(1, target)

    def checkpoint(self, worklist: deque) -> bool:
        return len(worklist) < self.target


class StealControl(ExploreControl):
    """Donate worklist entries when the coordinator requests a steal.

    ``flag`` is a :class:`multiprocessing.Event` the coordinator sets;
    at the next between-paths checkpoint the worker pops the shallowest
    half of its worklist (the oldest forks — for DFS those are the
    biggest unexplored subtrees) and hands it to ``donate``. An empty
    donation is still sent so the coordinator knows this worker had
    nothing to give and can ask another.
    """

    def __init__(self, flag, donate: Callable[[list[Prefix]], None]):
        self.flag = flag
        self.donate = donate
        self.donations = 0

    def checkpoint(self, worklist: deque) -> bool:
        if self.flag.is_set():
            self.flag.clear()
            share = [worklist.popleft() for _ in range(len(worklist) // 2)]
            self.donations += 1
            self.donate(share)
        return True


class ExcludeControl(ExploreControl):
    """Drop worklist entries that descend into excluded subtrees.

    A reclaimed assignment re-runs a dead worker's roots, but subtrees
    that worker had *donated* before dying are owned (possibly already
    completed) by other workers; re-exploring them would make the merge
    reject the run for overlapping paths. Filtering the worklist between
    paths is sufficient to carve those subtrees out exactly: replay is
    deterministic, and an executing path only enters an excluded subtree
    by popping a schedule that extends the excluded prefix — at the fork
    that *pushed* the excluded prefix, the continuing execution took the
    other direction.

    Runs before ``inner`` (the steal control on a worker), so donations
    drawn from the filtered worklist are exclusion-free by construction.
    """

    def __init__(self, exclude: tuple[Prefix, ...],
                 inner: ExploreControl | None = None):
        self.exclude = tuple(exclude)
        self.inner = inner

    def checkpoint(self, worklist: deque) -> bool:
        if self.exclude:
            kept = [p for p in worklist
                    if not any(extends(p, d) for d in self.exclude)]
            if len(kept) != len(worklist):
                worklist.clear()
                worklist.extend(kept)
        if self.inner is not None:
            return self.inner.checkpoint(worklist)
        return True


class HeartbeatControl(ExploreControl):
    """Emit periodic liveness gauges between paths (``--progress``).

    At each between-paths checkpoint, once ``interval`` seconds have
    elapsed since the last beat, ``emit`` receives a plain dict of
    gauges: cumulative paths popped, current worklist depth, and (with
    an engine attached) the private query cache's hit/miss counters —
    enough for the coordinator to derive paths/sec and hit rates.
    Purely observational: it never touches the worklist and always
    returns True, so findings are unchanged by its presence.

    Chains ``inner`` like :class:`ExcludeControl`, so one long-lived
    heartbeat (its counters span assignments) wraps each assignment's
    own steal/exclude controls.
    """

    def __init__(self, interval: float, emit: Callable[[dict], None],
                 engine: Engine | None = None,
                 inner: ExploreControl | None = None,
                 clock=time.monotonic):
        self.interval = interval
        self.emit = emit
        self.engine = engine
        self.inner = inner
        self.clock = clock
        self.paths = 0
        self.sent = 0
        self._last = clock()

    def checkpoint(self, worklist: deque) -> bool:
        self.paths += 1
        now = self.clock()
        if now - self._last >= self.interval:
            self._last = now
            payload = {"paths": self.paths, "worklist": len(worklist)}
            if self.engine is not None:
                stats = self.engine.query_cache.stats
                payload["cache_hits"] = stats.hits
                payload["cache_misses"] = stats.misses
            self.sent += 1
            self.emit(payload)
        if self.inner is not None:
            return self.inner.checkpoint(worklist)
        return True


def run_assignment(engine: Engine, setup: ShardSetup, setup_args: tuple,
                   prefixes: list[Prefix],
                   control: ExploreControl | None = None) -> ShardOutcome:
    """Explore ``prefixes`` to exhaustion on ``engine``; return the outcome.

    A fresh ``(program, observer)`` pair is built per assignment (the
    observer must start empty so its delta covers exactly this
    assignment) while the engine — and with it the warm canonical cache
    and frame stack — persists across assignments. Solver counters are
    reset first so the outcome ships an exact per-assignment delta.
    """
    program, observer = setup(engine, *setup_args)
    engine.solver.stats = SolverStats()
    result = engine.explore(program, observer, roots=prefixes,
                            control=control)
    delta = None
    if observer is not None:
        observer.finalize()
        delta = observer.delta()
    return ShardOutcome(executed=result.executed, paths=result.paths,
                        stats=result.stats, solver_stats=engine.solver.stats,
                        delta=delta)


def worker_loop(session, get_task: Callable, put_message: Callable,
                steal_flag) -> None:
    """Transport-agnostic worker main loop (one per shard).

    The shared heart of both transports: ``get_task()`` blocks for the
    next prefix assignment (None shuts the loop down), ``put_message``
    ships ``(kind, payload)`` messages back to the coordinator, and
    ``steal_flag`` is any object with ``is_set``/``clear`` — a
    ``multiprocessing.Event`` for local workers, a ``threading.Event``
    fed by the socket reader for TCP workers. The engine (and with it
    the warm canonical cache and frame stack) persists across
    assignments; the coordinator's cache snapshot, when shipped, is
    absorbed once before the first assignment. Any exception is reported
    as an :data:`MSG_ERROR` message instead of dying silently.

    Args:
        session: a :class:`~repro.explore.transport.WorkerSession`.
    """
    try:
        engine = Engine(session.engine_config)
        if session.cache_snapshot is not None:
            engine.query_cache.absorb(session.cache_snapshot)
        tracer = None
        if getattr(session, "trace", False):
            # A forked worker inherits the coordinator's tracer binding;
            # replace it with a fresh worker-sourced one.
            obs_trace.deactivate()
            tracer = obs_trace.activate(source="worker")
        heartbeat = None
        interval = getattr(session, "heartbeat_interval", 0.0)
        if interval:
            heartbeat = HeartbeatControl(
                interval,
                lambda payload: put_message(MSG_HEARTBEAT, payload),
                engine=engine)
        steal = StealControl(
            steal_flag, lambda share: put_message(MSG_DONATE, share))
        while True:
            assignment = get_task()
            if assignment is None:
                return
            # A steal request that raced a previous DONE must not leak
            # into this assignment.
            steal_flag.clear()
            if isinstance(assignment, Assignment):
                roots = list(assignment.roots)
                exclude = assignment.exclude
            else:  # bare prefix list (direct transport callers, old tests)
                roots = list(assignment)
                exclude = ()
            control = (ExcludeControl(exclude, steal) if exclude else steal)
            if heartbeat is not None:
                heartbeat.inner = control
                control = heartbeat
            if tracer is None:
                outcome = run_assignment(engine, session.setup,
                                         session.setup_args, roots, control)
            else:
                with tracer.span("worker.assignment", roots=len(roots),
                                 exclude=len(exclude)):
                    outcome = run_assignment(engine, session.setup,
                                             session.setup_args, roots,
                                             control)
                outcome.trace = tracer.take_delta()
            put_message(MSG_DONE, outcome)
    except Exception:  # pragma: no cover - exercised via scheduler tests
        put_message(MSG_ERROR, traceback.format_exc())


def shard_worker(worker_id: int, session, task_queue, result_queue,
                 steal_flag) -> None:
    """``multiprocessing`` entry point: :func:`worker_loop` over queues."""
    worker_loop(
        session,
        get_task=task_queue.get,
        put_message=lambda kind, payload: result_queue.put(
            (kind, worker_id, payload)),
        steal_flag=steal_flag)
