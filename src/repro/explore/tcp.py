"""TCP transport: the shard protocol over sockets, for multi-host fleets.

This is the networked sibling of
:class:`~repro.explore.transport.LocalTransport`: the same
coordinator↔worker protocol (session init, prefix assignments, steal
flags, outcome/donation/error returns), but the workers are
``python -m repro worker --listen HOST:PORT`` daemons that may live on
other machines. Everything crossing the wire is a *frame* — a 4-byte
big-endian length prefix followed by a pickled ``(kind, payload)`` tuple
— and every expression inside a payload re-interns into the receiving
process's hash-consed arena on unpickle, with canonical forms anchored
by the process-stable sha256 structural fingerprints, so remote-computed
feasibility answers, deltas and witness models are byte-identical to
locally-computed ones.

Protocol, per session (one coordinator connection to one daemon):

1. worker → ``hello`` (protocol version; the coordinator rejects a
   mismatched or non-worker endpoint with a clear error),
2. coordinator → ``init`` carrying the pickled
   :class:`~repro.explore.transport.WorkerSession` (setup callable,
   engine config, query-cache snapshot),
3. coordinator → ``task`` / ``steal`` / ``stop`` frames; worker →
   ``done`` / ``donate`` / ``error`` frames, exactly the local
   transport's message kinds.

The daemon handles each session in a forked child process when the
platform has ``fork`` (real CPU parallelism when one daemon serves
several coordinator connections — that is how 4 shards run against 2
hosts), falling back to a thread per session elsewhere. Within a session
the worker owns a warm private pipeline: engine, canonical cache and
frame stack persist across assignments just like a local shard process.

Failure semantics: a worker-side exception travels back as an ``error``
frame with the traceback; a killed worker/host surfaces as EOF on the
socket, which the coordinator reports as a :class:`SymexError` naming
the assignment that died with it. Frames are pickles, so run workers
only on hosts and networks you trust — the coordinator and daemon
mutually execute each other's pickled payloads by design (the setup
callable must be importable on the worker anyway).
"""

from __future__ import annotations

import os
import pickle
import random
import select
import socket
import struct
import threading
import time

from repro.errors import SymexError
from repro.explore.shard import Assignment, Prefix
from repro.explore.transport import Transport, WorkerSession

#: Bumped on any incompatible frame/protocol change; the hello handshake
#: rejects mismatches instead of failing deep inside an unpickle.
#: v2: ``task`` frames may carry an :class:`Assignment` (roots +
#: exclusions for reclaimed work) instead of a bare prefix list.
PROTOCOL_VERSION = 2

# coordinator -> worker frame kinds (worker -> coordinator kinds are the
# queue message kinds MSG_DONE/MSG_DONATE/MSG_ERROR from explore.shard).
MSG_HELLO = "hello"
MSG_INIT = "init"
MSG_TASK = "task"
MSG_STEAL = "steal"
MSG_STOP = "stop"

_HEADER = struct.Struct(">I")

#: Refuse frames beyond this size (64 MiB): a corrupt/foreign header
#: would otherwise ask us to allocate gigabytes before failing.
_MAX_FRAME = 64 * 1024 * 1024


def parse_hostport(spec: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with a clear error on junk."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise SymexError(
            f"bad worker address {spec!r}: expected 'host:port'")
    try:
        return host, int(port)
    except ValueError:
        raise SymexError(
            f"bad worker address {spec!r}: port {port!r} is not an integer")


def send_frame(sock: socket.socket, kind: str, payload: object) -> None:
    """Ship one length-prefixed pickled ``(kind, payload)`` frame."""
    body = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(body)) + body)


class FrameReader:
    """Incremental frame decoder over one socket.

    Socket reads land in an internal buffer; :meth:`pending` says whether
    a complete frame is buffered (a single ``recv`` can deliver several
    frames, which a bare ``select`` loop would miss), :meth:`feed` pulls
    more bytes (False on EOF), and :meth:`next_frame` pops one decoded
    ``(kind, payload)`` tuple.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self._buf = bytearray()

    def pending(self) -> bool:
        if len(self._buf) < _HEADER.size:
            return False
        (length,) = _HEADER.unpack_from(self._buf)
        if length > _MAX_FRAME:
            raise SymexError(
                f"oversized frame ({length} bytes): not a repro worker "
                "endpoint, or a corrupted stream")
        return len(self._buf) >= _HEADER.size + length

    def feed(self) -> bool:
        """Read whatever the socket has; False when the peer closed."""
        data = self.sock.recv(1 << 16)
        if not data:
            return False
        self._buf.extend(data)
        return True

    def next_frame(self) -> tuple[str, object]:
        (length,) = _HEADER.unpack_from(self._buf)
        end = _HEADER.size + length
        body = bytes(self._buf[_HEADER.size:end])
        del self._buf[:end]
        return pickle.loads(body)

    def partial(self) -> bool:
        """True while the buffer holds an incomplete frame (bytes arrived
        but no frame is decodable yet) — the stalled-stream signal the
        coordinator's per-worker recv deadline watches."""
        return bool(self._buf) and not self.pending()

    def buffered(self) -> int:
        """Bytes currently buffered — the coordinator's stall clock
        restarts whenever this grows (a slow frame is not a dead one)."""
        return len(self._buf)

    def recv_blocking(self, timeout: float | None = None) -> tuple | None:
        """Block for the next frame; None on EOF.

        Raises :class:`SymexError` when ``timeout`` (seconds) elapses
        first — used for the handshake, where a silent peer should fail
        fast rather than hang the coordinator. The socket's previous
        timeout mode is restored on every exit (success, EOF, timeout,
        error) — callers that configured their own timeout keep it.
        """
        previous = self.sock.gettimeout()
        self.sock.settimeout(timeout)
        try:
            while not self.pending():
                if not self.feed():
                    return None
        except socket.timeout:
            raise SymexError(
                f"timed out after {timeout}s waiting for a frame from "
                f"{_peer_name(self.sock)}")
        finally:
            self.sock.settimeout(previous)
        return self.next_frame()


def _peer_name(sock: socket.socket) -> str:
    try:
        peer = sock.getpeername()
    except OSError:  # pragma: no cover - racing a closed socket
        return "<disconnected>"
    if isinstance(peer, tuple) and len(peer) >= 2:
        return f"{peer[0]}:{peer[1]}"
    return repr(peer) if peer else "<unnamed peer>"  # e.g. AF_UNIX


# -- coordinator side ----------------------------------------------------------


class TcpTransport(Transport):
    """Shard workers as remote ``repro worker`` daemons over TCP.

    Args:
        hosts: ``"host:port"`` addresses of running daemons. When the
            shard count exceeds the host count, sessions are assigned
            round-robin — each daemon serves its extra sessions in
            separate forked processes, so 4 shards on 2 hosts still run
            4-wide.
        connect_timeout: total seconds to keep retrying each initial
            connection before failing (daemons may still be starting).
        retry_interval: initial sleep between connection attempts; each
            failed attempt doubles it (capped at ``retry_max_delay``)
            with jitter, so a fleet reconnecting to a recovering daemon
            does not hammer it in lockstep.
        retry_max_delay: backoff cap for the sleep between attempts.
        recv_deadline: seconds a *partially received* frame may go
            without a single new byte before the sender is declared
            dead. A worker host that drops off the network mid-frame
            delivers no EOF; without this deadline the coordinator
            would buffer the torso forever. A large frame that merely
            takes long to transfer keeps resetting the clock as its
            bytes arrive.
    """

    def __init__(self, hosts, connect_timeout: float = 10.0,
                 retry_interval: float = 0.1,
                 retry_max_delay: float = 2.0,
                 recv_deadline: float = 60.0):
        if not hosts:
            raise SymexError("TcpTransport needs at least one 'host:port'")
        self.hosts = [parse_hostport(h) if isinstance(h, str) else tuple(h)
                      for h in hosts]
        self.connect_timeout = connect_timeout
        self.retry_interval = retry_interval
        self.retry_max_delay = retry_max_delay
        self.recv_deadline = recv_deadline
        self._socks: list[socket.socket] = []
        self._readers: list[FrameReader] = []
        self._dead: set[int] = set()
        self._host_of_wid: dict[int, int] = {}
        self._init_frame: bytes | None = None
        # Per-worker stall clock: (buffered bytes last seen, when that
        # count was first seen). Reset whenever the buffer grows.
        self._partial_since: dict[int, tuple[int, float]] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self, count: int, session: WorkerSession) -> None:
        self.worker_count = count
        body = pickle.dumps((MSG_INIT, session),
                            protocol=pickle.HIGHEST_PROTOCOL)
        self._init_frame = _HEADER.pack(len(body)) + body
        try:
            for wid in range(count):
                index = wid % len(self.hosts)
                self._host_of_wid[wid] = index
                sock = self._connect(*self.hosts[index])
                self._socks.append(sock)
                self._readers.append(FrameReader(sock))
                self._handshake(wid)
                sock.sendall(self._init_frame)
        except Exception:
            self.stop()
            raise

    def _connect(self, host: str, port: int) -> socket.socket:
        # Capped exponential backoff with jitter: the first attempt is
        # immediate, then sleeps double from retry_interval up to
        # retry_max_delay, each scaled by a random factor in [0.5, 1.0).
        deadline = time.monotonic() + self.connect_timeout
        delay = self.retry_interval
        attempts = 0
        last_error: Exception | None = None
        while True:
            attempts += 1
            try:
                sock = socket.create_connection((host, port), timeout=5.0)
                sock.settimeout(None)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                return sock
            except OSError as error:
                last_error = error
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(remaining, delay * (0.5 + random.random() / 2)))
            delay = min(delay * 2, self.retry_max_delay)
        raise SymexError(
            f"cannot reach shard worker at {host}:{port} after "
            f"{attempts} attempt(s) over {self.connect_timeout:.1f}s "
            f"(exponential backoff): {last_error} — is "
            f"`python -m repro worker --listen {host}:{port}` running?")

    def _handshake(self, wid: int) -> None:
        frame = self._readers[wid].recv_blocking(timeout=self.connect_timeout)
        if frame is None:
            raise SymexError(
                f"shard worker at {self.describe(wid)} closed the "
                "connection before the hello handshake")
        kind, version = frame
        if kind != MSG_HELLO or version != PROTOCOL_VERSION:
            raise SymexError(
                f"endpoint at {self.describe(wid)} is not a compatible "
                f"repro worker (got {kind!r} v{version!r}, expected "
                f"{MSG_HELLO!r} v{PROTOCOL_VERSION})")

    def stop(self) -> None:
        for wid, sock in enumerate(self._socks):
            if wid not in self._dead:
                try:
                    send_frame(sock, MSG_STOP, None)
                except OSError:
                    pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - double close
                pass
        self._socks = []
        self._readers = []
        self._dead = set()
        self._host_of_wid = {}
        self._init_frame = None
        self._partial_since = {}

    # -- shard protocol ------------------------------------------------------

    def assign(self, wid: int, prefixes) -> None:
        roots = (list(prefixes.roots) if isinstance(prefixes, Assignment)
                 else list(prefixes))
        try:
            send_frame(self._socks[wid], MSG_TASK, prefixes)
        except OSError as error:
            self._dead.add(wid)
            raise SymexError(
                f"shard worker at {self.describe(wid)} became unreachable "
                f"while being assigned {len(roots)} prefix(es) "
                f"{_preview(roots)}: {error}")

    def request_steal(self, wid: int) -> None:
        try:
            send_frame(self._socks[wid], MSG_STEAL, None)
        except OSError:
            # Not fatal by itself: the liveness check surfaces the death
            # together with whatever assignment the worker held.
            self._dead.add(wid)

    def acknowledge_done(self, wid: int) -> None:
        """No-op: a TCP worker clears its own steal flag at assignment
        start (the coordinator cannot reach into its Event)."""

    def recv(self, timeout: float) -> tuple[str, int, object] | None:
        deadline = time.monotonic() + timeout
        while True:
            # Serve buffered frames first: one socket read can deliver
            # several frames, and select() would not re-report them.
            for wid, reader in enumerate(self._readers):
                if wid in self._dead:
                    continue
                try:
                    if not reader.pending():
                        continue
                    kind, payload = reader.next_frame()
                except Exception:
                    # An oversized header or an undecodable pickle means
                    # the stream is desynced — nothing after this point
                    # can be framed. Equivalent to losing the worker.
                    self._dead.add(wid)
                    continue
                return kind, wid, payload
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            by_fd = {self._socks[wid].fileno(): wid
                     for wid in range(len(self._socks))
                     if wid not in self._dead}
            if not by_fd:
                return None
            readable, _, _ = select.select(list(by_fd), [], [], remaining)
            for fd in readable:
                wid = by_fd[fd]
                try:
                    if not self._readers[wid].feed():
                        self._dead.add(wid)
                except OSError:
                    self._dead.add(wid)
            self._check_stalls()

    def _check_stalls(self) -> None:
        """Per-worker recv deadline: a frame torso that stops growing for
        ``recv_deadline`` seconds means the host dropped off the network
        without an EOF — declare the worker dead instead of buffering the
        partial frame forever. The clock restarts every time the buffer
        grows, so a large frame that simply takes longer than the
        deadline to transfer is never mistaken for a death."""
        now = time.monotonic()
        for wid, reader in enumerate(self._readers):
            if wid in self._dead:
                self._partial_since.pop(wid, None)
                continue
            try:
                stalled = reader.partial()
            except SymexError:
                continue  # oversized header; the frame scan handles it
            if not stalled:
                self._partial_since.pop(wid, None)
                continue
            size = reader.buffered()
            mark = self._partial_since.get(wid)
            if mark is None or size > mark[0]:
                self._partial_since[wid] = (size, now)
            elif now - mark[1] > self.recv_deadline:
                self._dead.add(wid)

    def alive(self, wid: int) -> bool:
        return wid not in self._dead

    def respawn(self, wid: int) -> bool:
        """Open a replacement session for ``wid``, preferring the *next*
        listed host (a spare daemon) and falling back around the ring to
        the original. The old socket is closed first, so a still-running
        remote session child sees EOF and exits."""
        if self._init_frame is None:  # pragma: no cover - not started
            return False
        try:
            self._socks[wid].close()
        except OSError:  # pragma: no cover - already closed
            pass
        start_index = self._host_of_wid.get(wid, wid % len(self.hosts))
        for step in range(1, len(self.hosts) + 1):
            index = (start_index + step) % len(self.hosts)
            host, port = self.hosts[index]
            try:
                sock = self._connect(host, port)
            except SymexError:
                continue
            self._socks[wid] = sock
            self._readers[wid] = FrameReader(sock)
            self._host_of_wid[wid] = index
            self._dead.discard(wid)
            self._partial_since.pop(wid, None)
            try:
                self._handshake(wid)
                sock.sendall(self._init_frame)
            except (SymexError, OSError):
                self._dead.add(wid)
                try:
                    sock.close()
                except OSError:  # pragma: no cover - double close
                    pass
                continue
            return True
        return False

    def describe(self, wid: int) -> str:
        index = self._host_of_wid.get(wid, wid % len(self.hosts))
        host, port = self.hosts[index]
        return f"{host}:{port} (session {wid})"


def _preview(prefixes: list[Prefix], limit: int = 3) -> str:
    """First few prefixes of a lost assignment, for error messages."""
    shown = ", ".join(
        "".join("T" if d else "F" for d in p) or "<root>"
        for p in prefixes[:limit])
    more = len(prefixes) - limit
    return f"[{shown}{f', +{more} more' if more > 0 else ''}]"


# -- worker daemon -------------------------------------------------------------


def _session_reader(reader: FrameReader, tasks, steal_flag) -> None:
    """Socket → worker-loop adapter thread.

    Turns incoming frames into exactly what
    :func:`repro.explore.shard.worker_loop` consumes: ``task`` payloads
    land in the local task queue, ``steal`` sets the (threading) steal
    flag mid-assignment, and ``stop``/EOF enqueue the shutdown sentinel.
    """
    try:
        while True:
            if not reader.pending() and not reader.feed():
                break
            while reader.pending():
                kind, payload = reader.next_frame()
                if kind == MSG_TASK:
                    tasks.put(payload)
                elif kind == MSG_STEAL:
                    steal_flag.set()
                elif kind == MSG_STOP:
                    return
                else:
                    raise SymexError(
                        f"unknown coordinator frame kind {kind!r}")
    except OSError:  # pragma: no cover - coordinator vanished mid-read
        pass
    finally:
        tasks.put(None)


def handle_session(sock: socket.socket) -> None:
    """Serve one coordinator connection to completion.

    Sends the hello, waits for the session init, then runs the shared
    :func:`~repro.explore.shard.worker_loop` with a reader thread
    translating frames — so assignment execution, stealing and error
    reporting behave identically to a local shard worker.
    """
    import queue

    from repro.explore.shard import worker_loop

    try:
        with sock:
            reader = FrameReader(sock)
            send_frame(sock, MSG_HELLO, PROTOCOL_VERSION)
            frame = reader.recv_blocking()
            if frame is None:
                return
            kind, session = frame
            if kind != MSG_INIT or not isinstance(session, WorkerSession):
                raise SymexError(
                    f"expected an {MSG_INIT!r} frame to open the session, "
                    f"got {kind!r}")
            tasks: queue.Queue = queue.Queue()
            steal_flag = threading.Event()
            thread = threading.Thread(
                target=_session_reader, args=(reader, tasks, steal_flag),
                daemon=True)
            thread.start()
            worker_loop(
                session,
                get_task=tasks.get,
                put_message=lambda kind, payload: send_frame(
                    sock, kind, payload),
                steal_flag=steal_flag)
    except (OSError, BrokenPipeError):  # pragma: no cover - peer vanished
        pass


def serve_worker(listen: str, max_sessions: int | None = None,
                 ready_stream=None) -> None:
    """Run the ``python -m repro worker`` daemon: accept and serve sessions.

    Binds ``listen`` (``"host:port"``; port 0 picks a free port) and
    serves coordinator sessions until ``max_sessions`` have completed
    (forever by default). On platforms with ``fork`` each session runs
    in its own child process — concurrent sessions then explore on
    separate cores, which is how one daemon serves several shards of the
    same run; elsewhere sessions fall back to threads (correct, but
    GIL-serialized). Prints a parseable ``READY host port`` line once
    listening so scripts and tests can wait on it.

    ``SIGTERM`` drains rather than kills: the listener closes (new
    coordinators get connection-refused and fail over to other hosts)
    while in-flight sessions run to completion before the daemon exits —
    a rolling restart never looks like a mid-assignment crash.
    """
    import multiprocessing
    import signal as signal_module
    import sys

    host, port = parse_hostport(listen)
    server = socket.create_server((host, port))
    actual_host, actual_port = server.getsockname()[:2]
    stream = ready_stream or sys.stdout
    print(f"READY {actual_host} {actual_port}", file=stream, flush=True)

    draining = threading.Event()

    def _start_drain(signum=None, frame=None):
        draining.set()
        try:
            server.close()  # pending accept() raises OSError, loop exits
        except OSError:  # pragma: no cover - already closed
            pass

    previous_handler = None
    try:
        previous_handler = signal_module.signal(
            signal_module.SIGTERM, _start_drain)
    except ValueError:  # pragma: no cover - not the main thread (tests)
        pass

    fork_ctx = (multiprocessing.get_context("fork")
                if "fork" in multiprocessing.get_all_start_methods()
                else None)
    children: list = []
    threads: list = []
    served = 0
    try:
        while max_sessions is None or served < max_sessions:
            try:
                conn, addr = server.accept()
            except OSError:
                if draining.is_set():
                    break
                raise
            served += 1
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            children[:] = [c for c in children if c.is_alive()]
            if fork_ctx is not None:
                child = fork_ctx.Process(target=_serve_forked, args=(conn,),
                                         daemon=False)
                child.start()
                children.append(child)
                conn.close()  # the child owns its inherited copy
            else:  # pragma: no cover - non-fork platforms
                thread = threading.Thread(target=handle_session, args=(conn,),
                                          daemon=True)
                thread.start()
                threads.append(thread)
    finally:
        try:
            server.close()
        except OSError:  # pragma: no cover - double close
            pass
        # Drain: in-flight sessions (forked children / threads) finish
        # their assignments and see the coordinator's stop frame before
        # the daemon exits.
        for child in children:
            child.join()
        for thread in threads:  # pragma: no cover - non-fork platforms
            thread.join(timeout=60.0)
        if previous_handler is not None:
            try:
                signal_module.signal(signal_module.SIGTERM, previous_handler)
            except ValueError:  # pragma: no cover - not the main thread
                pass


def _serve_forked(conn: socket.socket) -> None:  # pragma: no cover - child
    """Forked session child: serve one session, then exit hard.

    ``os._exit`` skips the parent's inherited atexit/multiprocessing
    teardown — the child must not touch the listener it forked with.
    """
    try:
        handle_session(conn)
    finally:
        os._exit(0)
