"""The coordinator↔worker transport abstraction for sharded exploration.

The shard protocol was deliberately transport-shaped from the start: the
coordinator assigns decision-prefix lists, raises steal flags, and folds
back ``ShardOutcome``/donation/error messages — nothing in it requires
the workers to live on the same host. :class:`Transport` names that
protocol as an interface; two interchangeable implementations ship:

* :class:`LocalTransport` — worker processes on this machine, driven
  over ``multiprocessing`` queues and ``Event`` steal flags. The default
  and exactly the pre-transport behaviour.
* :class:`~repro.explore.tcp.TcpTransport` — workers are
  ``python -m repro worker`` daemons on arbitrary hosts, driven over
  length-prefixed pickled frames on TCP sockets.

The scheduler (:mod:`repro.explore.scheduler`) is written purely against
this interface, so findings are byte-identical on either transport: the
deterministic canonical-order merge never sees which wire carried an
outcome. Parity is pinned by ``tests/explore/test_transport_parity.py``.

Message flow, coordinator side:

1. :meth:`Transport.start` launches/connects ``count`` workers and hands
   each one the :class:`WorkerSession` (setup callable, engine config,
   and the read-only :class:`~repro.solver.cache.QueryCache` snapshot).
2. :meth:`Transport.assign` ships a prefix list to one worker;
   :meth:`Transport.request_steal` raises its steal flag.
3. :meth:`Transport.recv` polls for the next ``(kind, wid, payload)``
   message (``MSG_DONE``/``MSG_DONATE``/``MSG_ERROR``), returning None
   on timeout so the scheduler can run its liveness checks via
   :meth:`Transport.alive`.
4. :meth:`Transport.stop` shuts every worker down (idempotent).

Failure semantics are uniform: a worker that raises reports
``MSG_ERROR`` with its traceback; a worker that dies silently (SIGKILL,
lost host) is detected by ``alive()`` going False while the worker still
holds an assignment. What happens next is the scheduler's
``on_worker_loss`` policy: ``"fail"`` (default) raises naming the lost
assignment, ``"recover"`` reclaims the assignment and asks the transport
to :meth:`Transport.respawn` a replacement worker — a fresh local
process seeded with the same :class:`WorkerSession`, or a new TCP
session against the next listed host. See the ROADMAP architecture note
(layer 6) for when to use which transport.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass, field

from repro.errors import SymexError
from repro.explore.shard import Prefix, ShardSetup, shard_worker
from repro.symex.engine import EngineConfig


@dataclass
class WorkerSession:
    """Everything a worker needs to serve one sharded run.

    This is the session-init payload both transports hand to every
    worker before the first assignment; all of it must be picklable
    (the TCP transport literally puts it on the wire).

    Attributes:
        setup: module-level ``setup(engine, *args) -> (program, observer)``
            callable, rebuilt per assignment inside the worker.
        setup_args: picklable arguments for ``setup``.
        engine_config: exploration limits for the worker's private engine.
        cache_snapshot: read-only snapshot of the coordinator's canonical
            query cache (:meth:`repro.solver.cache.QueryCache.snapshot`),
            absorbed into the worker's cache at session start so shard
            workers do not re-solve what phase 1 and the seed phase
            already answered. None ships no warm-up.
        trace: when True the worker activates a local tracer and ships
            a :class:`~repro.obs.trace.TraceDelta` on every result
            frame. Off by default — tracing must cost nothing unless a
            run asks for it.
        heartbeat_interval: seconds between liveness-gauge heartbeats
            (:data:`~repro.explore.shard.MSG_HEARTBEAT` messages);
            0 (the default) sends none.
    """

    setup: ShardSetup
    setup_args: tuple = ()
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    cache_snapshot: dict | None = None
    trace: bool = False
    heartbeat_interval: float = 0.0


class Transport:
    """Coordinator-side interface over one fleet of shard workers.

    Implementations own the full worker lifecycle: :meth:`start` brings
    the fleet up (or connects to it), the messaging methods carry the
    shard protocol, and :meth:`stop` tears it down. All methods are
    called from the coordinator thread only.
    """

    #: Number of workers this transport was started with.
    worker_count: int = 0

    def start(self, count: int, session: WorkerSession) -> None:
        """Bring up ``count`` workers, each initialized with ``session``."""
        raise NotImplementedError

    def assign(self, wid: int,
               prefixes: "list[Prefix] | object") -> None:
        """Ship an assignment (an :class:`~repro.explore.shard.Assignment`
        or a bare prefix list); raises :class:`SymexError` if the worker
        is unreachable (the assignment would otherwise be silently lost)."""
        raise NotImplementedError

    def request_steal(self, wid: int) -> None:
        """Raise ``wid``'s steal flag (best effort on a dying worker)."""
        raise NotImplementedError

    def acknowledge_done(self, wid: int) -> None:
        """Called when ``wid`` reports done: clear any stale steal state."""
        raise NotImplementedError

    def recv(self, timeout: float) -> tuple[str, int, object] | None:
        """Next ``(kind, wid, payload)`` message, or None on timeout."""
        raise NotImplementedError

    def alive(self, wid: int) -> bool:
        """True while the worker can still deliver messages."""
        raise NotImplementedError

    def respawn(self, wid: int) -> bool:
        """Try to replace a dead worker with a fresh one for the same
        session (new process / new connection, same ``WorkerSession``).

        Returns True when slot ``wid`` is live again and ready for an
        assignment; False when this transport cannot (or could not)
        bring a replacement up — the scheduler then reassigns the lost
        work to the surviving workers instead. Messages from the retired
        worker must never surface under ``wid`` afterwards (its partial
        results were discarded; delivering them would double-merge).
        The base implementation never respawns.
        """
        return False

    def describe(self, wid: int) -> str:
        """Human-readable worker identity for error messages."""
        return f"worker {wid}"

    def stop(self) -> None:
        """Shut every worker down; idempotent, never raises."""
        raise NotImplementedError

    def abort(self) -> None:
        """Tear every worker down *now* — the run is aborting and any
        in-flight assignment is doomed, so there is nothing worth
        draining. Defaults to the graceful :meth:`stop`."""
        self.stop()


class LocalTransport(Transport):
    """Shard workers as local ``multiprocessing`` processes.

    The default transport, preserving the original scheduler plumbing
    verbatim: one task queue and one steal ``Event`` per worker, one
    shared result queue back, daemon processes joined (and terminated as
    a hang safety net) on :meth:`stop`.
    """

    #: Grace given to workers to drain their queues at shutdown (seconds).
    SHUTDOWN_GRACE = 10.0

    def __init__(self):
        self._ctx = None
        self._session: WorkerSession | None = None
        # Worker ids are stable for the scheduler; processes are not
        # (respawn replaces them). A *slot* is one process + its task
        # queue + steal flag; ``_slot_of_wid`` maps the scheduler's wid
        # to its current slot, and workers tag result-queue messages
        # with their slot id so late messages from a terminated
        # predecessor (which shares the result queue) are recognized and
        # dropped instead of being credited to the replacement.
        self._workers: list = []
        self._task_queues: list = []
        self._steal_flags: list = []
        self._result_queue = None
        self._slot_of_wid: list[int] = []
        self._wid_of_slot: dict[int, int] = {}

    def start(self, count: int, session: WorkerSession) -> None:
        import multiprocessing

        # Same policy as the solver service: fork inherits the interned
        # AST arena copy-on-write; spawn re-interns on unpickle.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self.worker_count = count
        self._session = session
        self._result_queue = self._ctx.Queue()
        self._slot_of_wid = list(range(count))
        self._wid_of_slot = {slot: slot for slot in range(count)}
        for _ in range(count):
            self._spawn_slot()

    def _spawn_slot(self) -> int:
        """Fork one fresh worker process in a new slot; returns the slot."""
        slot = len(self._workers)
        self._task_queues.append(self._ctx.Queue())
        self._steal_flags.append(self._ctx.Event())
        worker = self._ctx.Process(
            target=shard_worker,
            args=(slot, self._session, self._task_queues[slot],
                  self._result_queue, self._steal_flags[slot]),
            daemon=True)
        self._workers.append(worker)
        worker.start()
        return slot

    def assign(self, wid: int, prefixes) -> None:
        self._task_queues[self._slot_of_wid[wid]].put(prefixes)

    def request_steal(self, wid: int) -> None:
        self._steal_flags[self._slot_of_wid[wid]].set()

    def acknowledge_done(self, wid: int) -> None:
        # An unanswered steal request must not leak into the worker's
        # next assignment (the worker also clears defensively on its
        # side at assignment start).
        self._steal_flags[self._slot_of_wid[wid]].clear()

    def recv(self, timeout: float) -> tuple[str, int, object] | None:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            try:
                kind, slot, payload = self._result_queue.get(
                    timeout=max(0.0, remaining))
            except queue_module.Empty:
                return None
            wid = self._wid_of_slot.get(slot)
            if wid is None:
                # A retired slot's late message: its worker was declared
                # dead and its assignment reclaimed — merging this too
                # would double-count the subtree.
                continue
            return kind, wid, payload

    def alive(self, wid: int) -> bool:
        return self._workers[self._slot_of_wid[wid]].is_alive()

    def respawn(self, wid: int) -> bool:
        old_slot = self._slot_of_wid[wid]
        self._wid_of_slot.pop(old_slot, None)
        worker = self._workers[old_slot]
        if worker.is_alive():
            # "Dead" here is the scheduler's verdict (e.g. an injected
            # fault severed the worker); make it true before replacing.
            worker.terminate()
        worker.join(timeout=self.SHUTDOWN_GRACE)
        slot = self._spawn_slot()
        self._slot_of_wid[wid] = slot
        self._wid_of_slot[slot] = wid
        return True

    def describe(self, wid: int) -> str:
        pid = self._workers[self._slot_of_wid[wid]].pid
        return f"local worker {wid} (pid {pid})"

    def stop(self) -> None:
        for slot, task_queue in enumerate(self._task_queues):
            if slot in self._wid_of_slot:
                try:
                    task_queue.put(None)
                except Exception:  # pragma: no cover - queue already broken
                    pass
        deadline = time.monotonic() + self.SHUTDOWN_GRACE
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.is_alive():  # pragma: no cover - hang safety net
                worker.terminate()
                worker.join()
        self._forget_workers()

    def abort(self) -> None:
        # A worker mid-assignment would keep exploring until it next
        # polls its task queue — up to SHUTDOWN_GRACE of doomed work on
        # the graceful path. The run is being thrown away; kill instead.
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=self.SHUTDOWN_GRACE)
        self._forget_workers()

    def _forget_workers(self) -> None:
        self._workers = []
        self._task_queues = []
        self._steal_flags = []
        self._result_queue = None
        self._slot_of_wid = []
        self._wid_of_slot = {}
        self._session = None


def resolve_transport(transport, hosts=()) -> Transport:
    """Build the transport a caller asked for.

    Args:
        transport: a ready :class:`Transport` instance (used as-is), the
            string ``"local"`` / ``"tcp"``, or None (meaning ``"tcp"``
            when ``hosts`` are given, ``"local"`` otherwise).
        hosts: ``"host:port"`` strings of running ``repro worker``
            daemons, required for (and only meaningful with) ``"tcp"``.

    Raises:
        SymexError: unknown transport name, ``"tcp"`` without hosts, or
            hosts given with an explicitly local transport.
    """
    if isinstance(transport, Transport):
        return transport
    if transport is None:
        transport = "tcp" if hosts else "local"
    if transport == "local":
        if hosts:
            raise SymexError(
                "transport='local' does not take hosts; pass "
                "transport='tcp' to use them")
        return LocalTransport()
    if transport == "tcp":
        if not hosts:
            raise SymexError(
                "transport='tcp' needs at least one 'host:port' of a "
                "running `python -m repro worker` daemon")
        from repro.explore.tcp import TcpTransport

        return TcpTransport(hosts)
    raise SymexError(
        f"unknown transport {transport!r}: expected 'local', 'tcp', or a "
        "Transport instance")
