"""The coordinator↔worker transport abstraction for sharded exploration.

The shard protocol was deliberately transport-shaped from the start: the
coordinator assigns decision-prefix lists, raises steal flags, and folds
back ``ShardOutcome``/donation/error messages — nothing in it requires
the workers to live on the same host. :class:`Transport` names that
protocol as an interface; two interchangeable implementations ship:

* :class:`LocalTransport` — worker processes on this machine, driven
  over ``multiprocessing`` queues and ``Event`` steal flags. The default
  and exactly the pre-transport behaviour.
* :class:`~repro.explore.tcp.TcpTransport` — workers are
  ``python -m repro worker`` daemons on arbitrary hosts, driven over
  length-prefixed pickled frames on TCP sockets.

The scheduler (:mod:`repro.explore.scheduler`) is written purely against
this interface, so findings are byte-identical on either transport: the
deterministic canonical-order merge never sees which wire carried an
outcome. Parity is pinned by ``tests/explore/test_transport_parity.py``.

Message flow, coordinator side:

1. :meth:`Transport.start` launches/connects ``count`` workers and hands
   each one the :class:`WorkerSession` (setup callable, engine config,
   and the read-only :class:`~repro.solver.cache.QueryCache` snapshot).
2. :meth:`Transport.assign` ships a prefix list to one worker;
   :meth:`Transport.request_steal` raises its steal flag.
3. :meth:`Transport.recv` polls for the next ``(kind, wid, payload)``
   message (``MSG_DONE``/``MSG_DONATE``/``MSG_ERROR``), returning None
   on timeout so the scheduler can run its liveness checks via
   :meth:`Transport.alive`.
4. :meth:`Transport.stop` shuts every worker down (idempotent).

Failure semantics are uniform: a worker that raises reports
``MSG_ERROR`` with its traceback; a worker that dies silently (SIGKILL,
lost host) is detected by ``alive()`` going False while the worker still
holds an assignment, and the scheduler fails loudly naming the lost
assignment. See the ROADMAP architecture note (layer 6) for when to use
which transport.
"""

from __future__ import annotations

import queue as queue_module
import time
from dataclasses import dataclass, field

from repro.errors import SymexError
from repro.explore.shard import Prefix, ShardSetup, shard_worker
from repro.symex.engine import EngineConfig


@dataclass
class WorkerSession:
    """Everything a worker needs to serve one sharded run.

    This is the session-init payload both transports hand to every
    worker before the first assignment; all of it must be picklable
    (the TCP transport literally puts it on the wire).

    Attributes:
        setup: module-level ``setup(engine, *args) -> (program, observer)``
            callable, rebuilt per assignment inside the worker.
        setup_args: picklable arguments for ``setup``.
        engine_config: exploration limits for the worker's private engine.
        cache_snapshot: read-only snapshot of the coordinator's canonical
            query cache (:meth:`repro.solver.cache.QueryCache.snapshot`),
            absorbed into the worker's cache at session start so shard
            workers do not re-solve what phase 1 and the seed phase
            already answered. None ships no warm-up.
    """

    setup: ShardSetup
    setup_args: tuple = ()
    engine_config: EngineConfig = field(default_factory=EngineConfig)
    cache_snapshot: dict | None = None


class Transport:
    """Coordinator-side interface over one fleet of shard workers.

    Implementations own the full worker lifecycle: :meth:`start` brings
    the fleet up (or connects to it), the messaging methods carry the
    shard protocol, and :meth:`stop` tears it down. All methods are
    called from the coordinator thread only.
    """

    #: Number of workers this transport was started with.
    worker_count: int = 0

    def start(self, count: int, session: WorkerSession) -> None:
        """Bring up ``count`` workers, each initialized with ``session``."""
        raise NotImplementedError

    def assign(self, wid: int, prefixes: list[Prefix]) -> None:
        """Ship an assignment; raises :class:`SymexError` if the worker
        is unreachable (the assignment would otherwise be silently lost)."""
        raise NotImplementedError

    def request_steal(self, wid: int) -> None:
        """Raise ``wid``'s steal flag (best effort on a dying worker)."""
        raise NotImplementedError

    def acknowledge_done(self, wid: int) -> None:
        """Called when ``wid`` reports done: clear any stale steal state."""
        raise NotImplementedError

    def recv(self, timeout: float) -> tuple[str, int, object] | None:
        """Next ``(kind, wid, payload)`` message, or None on timeout."""
        raise NotImplementedError

    def alive(self, wid: int) -> bool:
        """True while the worker can still deliver messages."""
        raise NotImplementedError

    def describe(self, wid: int) -> str:
        """Human-readable worker identity for error messages."""
        return f"worker {wid}"

    def stop(self) -> None:
        """Shut every worker down; idempotent, never raises."""
        raise NotImplementedError


class LocalTransport(Transport):
    """Shard workers as local ``multiprocessing`` processes.

    The default transport, preserving the original scheduler plumbing
    verbatim: one task queue and one steal ``Event`` per worker, one
    shared result queue back, daemon processes joined (and terminated as
    a hang safety net) on :meth:`stop`.
    """

    #: Grace given to workers to drain their queues at shutdown (seconds).
    SHUTDOWN_GRACE = 10.0

    def __init__(self):
        self._workers: list = []
        self._task_queues: list = []
        self._steal_flags: list = []
        self._result_queue = None

    def start(self, count: int, session: WorkerSession) -> None:
        import multiprocessing

        # Same policy as the solver service: fork inherits the interned
        # AST arena copy-on-write; spawn re-interns on unpickle.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        self.worker_count = count
        self._result_queue = ctx.Queue()
        self._task_queues = [ctx.Queue() for _ in range(count)]
        self._steal_flags = [ctx.Event() for _ in range(count)]
        self._workers = [
            ctx.Process(
                target=shard_worker,
                args=(wid, session, self._task_queues[wid],
                      self._result_queue, self._steal_flags[wid]),
                daemon=True)
            for wid in range(count)
        ]
        for worker in self._workers:
            worker.start()

    def assign(self, wid: int, prefixes: list[Prefix]) -> None:
        self._task_queues[wid].put(prefixes)

    def request_steal(self, wid: int) -> None:
        self._steal_flags[wid].set()

    def acknowledge_done(self, wid: int) -> None:
        # An unanswered steal request must not leak into the worker's
        # next assignment (the worker also clears defensively on its
        # side at assignment start).
        self._steal_flags[wid].clear()

    def recv(self, timeout: float) -> tuple[str, int, object] | None:
        try:
            return self._result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return None

    def alive(self, wid: int) -> bool:
        return self._workers[wid].is_alive()

    def describe(self, wid: int) -> str:
        pid = self._workers[wid].pid
        return f"local worker {wid} (pid {pid})"

    def stop(self) -> None:
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        deadline = time.monotonic() + self.SHUTDOWN_GRACE
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.is_alive():  # pragma: no cover - hang safety net
                worker.terminate()
                worker.join()
        self._workers = []
        self._task_queues = []
        self._steal_flags = []
        self._result_queue = None


def resolve_transport(transport, hosts=()) -> Transport:
    """Build the transport a caller asked for.

    Args:
        transport: a ready :class:`Transport` instance (used as-is), the
            string ``"local"`` / ``"tcp"``, or None (meaning ``"tcp"``
            when ``hosts`` are given, ``"local"`` otherwise).
        hosts: ``"host:port"`` strings of running ``repro worker``
            daemons, required for (and only meaningful with) ``"tcp"``.

    Raises:
        SymexError: unknown transport name, ``"tcp"`` without hosts, or
            hosts given with an explicitly local transport.
    """
    if isinstance(transport, Transport):
        return transport
    if transport is None:
        transport = "tcp" if hosts else "local"
    if transport == "local":
        if hosts:
            raise SymexError(
                "transport='local' does not take hosts; pass "
                "transport='tcp' to use them")
        return LocalTransport()
    if transport == "tcp":
        if not hosts:
            raise SymexError(
                "transport='tcp' needs at least one 'host:port' of a "
                "running `python -m repro worker` daemon")
        from repro.explore.tcp import TcpTransport

        return TcpTransport(hosts)
    raise SymexError(
        f"unknown transport {transport!r}: expected 'local', 'tcp', or a "
        "Transport instance")
