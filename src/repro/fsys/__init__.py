"""In-memory filesystem with FSP-style globbing.

The FSP server performs real filesystem actions on behalf of clients; the
impact experiments (§6.3) need those actions to be observable and
resettable. :class:`~repro.fsys.memfs.MemFS` is a small hierarchical
filesystem, and :mod:`repro.fsys.glob` implements the exact globbing
dialect the FSP clients use — ``*`` and ``?`` wildcards with **no escape
character**, which is the root cause of the wildcard Trojan.
"""

from repro.fsys.glob import expand, glob_match, has_wildcard
from repro.fsys.memfs import MemFS

__all__ = ["MemFS", "expand", "glob_match", "has_wildcard"]
