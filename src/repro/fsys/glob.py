"""FSP-dialect globbing: ``*`` and ``?``, no escaping.

This mirrors the behaviour Achilles exposed in FSP (§6.3): the client
expands wildcards in *source* paths before sending, and there is no way to
escape a wildcard — ``rm file\\*`` matches names starting with ``file\\``,
it does not match the literal name ``file*``. The server, by contrast,
treats ``*`` like any printable character.
"""

from __future__ import annotations

from typing import Iterable


def has_wildcard(name: str) -> bool:
    """True when ``name`` contains a glob metacharacter."""
    return "*" in name or "?" in name


def glob_match(pattern: str, name: str) -> bool:
    """Match ``name`` against ``pattern``.

    ``*`` matches any (possibly empty) character sequence, ``?`` matches
    exactly one character. Every other character — including backslash —
    matches only itself: there is deliberately no escape syntax.
    """
    return _match(pattern, 0, name, 0)


def _match(pattern: str, pi: int, name: str, ni: int) -> bool:
    while pi < len(pattern):
        ch = pattern[pi]
        if ch == "*":
            # Collapse consecutive stars, then try every split point.
            while pi + 1 < len(pattern) and pattern[pi + 1] == "*":
                pi += 1
            if pi == len(pattern) - 1:
                return True
            for split in range(ni, len(name) + 1):
                if _match(pattern, pi + 1, name, split):
                    return True
            return False
        if ni >= len(name):
            return False
        if ch != "?" and ch != name[ni]:
            return False
        pi += 1
        ni += 1
    return ni == len(name)


def expand(pattern: str, names: Iterable[str]) -> list[str]:
    """Names matching ``pattern``, sorted; like shell expansion over a dir.

    Following UNIX shell convention (and FSP's client), a pattern that
    matches nothing expands to itself — this is how a literal ``file*``
    ends up on the wire when no file matches, and why the wildcard Trojan
    is reachable at all from a *faulty* (but unmodified) client.
    """
    matches = sorted(name for name in names if glob_match(pattern, name))
    return matches if matches else [pattern]
