"""A small hierarchical in-memory filesystem.

Backs the FSP server in both symbolic analysis (as concrete local state,
§3.4) and the concrete impact experiments (§6.3). Paths are ``/``-separated
strings; any printable byte — including ``*`` — is legal in a component,
exactly like a POSIX filesystem, which is what makes the FSP wildcard bug
expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FileSystemError
from repro.fsys.glob import glob_match


@dataclass
class _Node:
    """One directory entry: a file with content, or a directory."""

    is_dir: bool
    content: bytes = b""
    children: dict[str, "_Node"] = field(default_factory=dict)


def _split(path: str) -> list[str]:
    parts = [p for p in path.split("/") if p]
    if not parts and path.strip("/") == "" and path != "/":
        raise FileSystemError(f"invalid path {path!r}")
    return parts


class MemFS:
    """In-memory filesystem with files, directories, and rename.

    All mutating operations raise :class:`FileSystemError` on conflicts
    (missing parents, wrong node kinds, existing targets) rather than
    guessing, since the impact experiments assert on exact outcomes.
    """

    def __init__(self):
        self._root = _Node(is_dir=True)

    # -- lookup -----------------------------------------------------------------

    def _walk(self, parts: list[str]) -> _Node | None:
        node = self._root
        for part in parts:
            if not node.is_dir:
                return None
            child = node.children.get(part)
            if child is None:
                return None
            node = child
        return node

    def _parent_of(self, path: str) -> tuple[_Node, str]:
        parts = _split(path)
        if not parts:
            raise FileSystemError("the root directory has no parent")
        parent = self._walk(parts[:-1])
        if parent is None or not parent.is_dir:
            raise FileSystemError(f"no such directory: /{'/'.join(parts[:-1])}")
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        return self._walk(_split(path)) is not None

    def is_file(self, path: str) -> bool:
        node = self._walk(_split(path))
        return node is not None and not node.is_dir

    def is_dir(self, path: str) -> bool:
        node = self._walk(_split(path))
        return node is not None and node.is_dir

    # -- file operations ----------------------------------------------------------

    def write_file(self, path: str, content: bytes = b"") -> None:
        """Create or overwrite a file; the parent directory must exist."""
        parent, name = self._parent_of(path)
        existing = parent.children.get(name)
        if existing is not None and existing.is_dir:
            raise FileSystemError(f"{path!r} is a directory")
        parent.children[name] = _Node(is_dir=False, content=bytes(content))

    def read_file(self, path: str) -> bytes:
        node = self._walk(_split(path))
        if node is None:
            raise FileSystemError(f"no such file: {path!r}")
        if node.is_dir:
            raise FileSystemError(f"{path!r} is a directory")
        return node.content

    def delete(self, path: str) -> None:
        """Remove a file or an *empty* directory."""
        parent, name = self._parent_of(path)
        node = parent.children.get(name)
        if node is None:
            raise FileSystemError(f"no such entry: {path!r}")
        if node.is_dir and node.children:
            raise FileSystemError(f"directory not empty: {path!r}")
        del parent.children[name]

    def rename(self, source: str, target: str) -> None:
        """Move ``source`` to ``target``; overwrites an existing target file."""
        src_parent, src_name = self._parent_of(source)
        node = src_parent.children.get(src_name)
        if node is None:
            raise FileSystemError(f"no such entry: {source!r}")
        dst_parent, dst_name = self._parent_of(target)
        existing = dst_parent.children.get(dst_name)
        if existing is not None and existing.is_dir:
            raise FileSystemError(f"target is a directory: {target!r}")
        del src_parent.children[src_name]
        dst_parent.children[dst_name] = node

    # -- directory operations ----------------------------------------------------

    def mkdir(self, path: str) -> None:
        parent, name = self._parent_of(path)
        if name in parent.children:
            raise FileSystemError(f"entry exists: {path!r}")
        parent.children[name] = _Node(is_dir=True)

    def listdir(self, path: str = "/") -> list[str]:
        node = self._walk(_split(path)) if path != "/" else self._root
        if node is None:
            raise FileSystemError(f"no such directory: {path!r}")
        if not node.is_dir:
            raise FileSystemError(f"{path!r} is not a directory")
        return sorted(node.children)

    def glob(self, directory: str, pattern: str) -> list[str]:
        """Entries of ``directory`` matching ``pattern`` (FSP dialect)."""
        return [n for n in self.listdir(directory) if glob_match(pattern, n)]

    # -- bulk helpers --------------------------------------------------------------

    def tree(self) -> dict[str, bytes | None]:
        """Flat snapshot: path -> file content, or None for directories."""
        snapshot: dict[str, bytes | None] = {}

        def visit(node: _Node, prefix: str) -> None:
            for name, child in sorted(node.children.items()):
                path = f"{prefix}/{name}"
                snapshot[path] = None if child.is_dir else child.content
                if child.is_dir:
                    visit(child, path)

        visit(self._root, "")
        return snapshot

    def populate(self, entries: dict[str, bytes | None]) -> None:
        """Create files/directories from a :meth:`tree`-style dict."""
        for path in sorted(entries, key=lambda p: p.count("/")):
            content = entries[path]
            if content is None:
                self.mkdir(path)
            else:
                self.write_file(path, content)
