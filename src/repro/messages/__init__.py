"""Wire-message layouts and field views.

Achilles reasons about messages as flat byte vectors (one solver expression
per wire byte) while its negate operator, ``differentFrom`` matrix and masks
all work per *field* (§3.2-§3.3). This package provides the bridge:

* :class:`MessageLayout` — named, sized, ordered fields over a byte buffer;
* :class:`FieldView` / :func:`field_expr` — slice a byte vector into a
  per-field bitvector expression;
* :class:`MessageBuilder` — compose a wire message from field values
  (client side);
* concrete encode/decode helpers for the simulated deployments.
"""

from repro.messages.layout import Field, FieldView, MessageLayout
from repro.messages.symbolic import (
    MessageBuilder,
    field_bytes,
    field_expr,
    fresh_message,
    message_vars,
    wire_equalities,
)
from repro.messages.concrete import (
    decode,
    decode_ints,
    encode,
    pack_int,
    unpack_int,
)

__all__ = [
    "Field",
    "FieldView",
    "MessageBuilder",
    "MessageLayout",
    "decode",
    "decode_ints",
    "encode",
    "field_bytes",
    "field_expr",
    "fresh_message",
    "message_vars",
    "pack_int",
    "unpack_int",
    "wire_equalities",
]
