"""Concrete message encoding for the simulated deployments.

The fault-injection side of the evaluation (§6.3) runs nodes *concretely*:
Achilles concretizes a Trojan expression into real bytes and the harness
injects those bytes into a running deployment. These helpers convert
between field dictionaries and wire byte strings using the same layouts as
the symbolic side, so both sides agree on offsets and endianness.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import MessageError
from repro.messages.layout import MessageLayout


def pack_int(value: int, size: int) -> bytes:
    """Big-endian fixed-size encoding of an unsigned int."""
    if size <= 0:
        raise MessageError("size must be positive")
    if value < 0 or value >= (1 << (8 * size)):
        raise MessageError(f"value {value} does not fit in {size} bytes")
    return value.to_bytes(size, "big")

def unpack_int(data: bytes) -> int:
    """Big-endian decoding of an unsigned int."""
    return int.from_bytes(data, "big")


def encode(layout: MessageLayout, fields: Mapping[str, int | bytes | Sequence[int]]) -> bytes:
    """Encode a field dictionary into wire bytes.

    Int values are packed big-endian to the field size; bytes / int
    sequences must match the field size exactly. Every field of the layout
    must be present.
    """
    missing = set(layout.field_names) - set(fields)
    if missing:
        raise MessageError(f"missing fields: {', '.join(sorted(missing))}")
    extra = set(fields) - set(layout.field_names)
    if extra:
        raise MessageError(f"unknown fields: {', '.join(sorted(extra))}")
    out = bytearray()
    for view in layout.views():
        value = fields[view.name]
        if isinstance(value, int):
            out += pack_int(value, view.size)
            continue
        raw = bytes(value)
        if len(raw) != view.size:
            raise MessageError(
                f"field {view.name!r} needs {view.size} bytes, got {len(raw)}")
        out += raw
    return bytes(out)


def decode(layout: MessageLayout, data: bytes) -> dict[str, bytes]:
    """Split wire bytes into per-field byte strings."""
    if len(data) != layout.total_size:
        raise MessageError(
            f"layout {layout.name!r} is {layout.total_size} bytes, "
            f"got {len(data)}")
    return {view.name: data[view.offset:view.end] for view in layout.views()}


def decode_ints(layout: MessageLayout, data: bytes) -> dict[str, int]:
    """Split wire bytes into per-field big-endian unsigned ints."""
    return {name: unpack_int(raw) for name, raw in decode(layout, data).items()}
