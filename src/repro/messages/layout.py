"""Message layouts: named fields over a flat byte buffer.

A layout is an ordered sequence of fixed-size fields, optionally followed by
one variable-length tail field (FSP's ``buf``, PBFT's ``command``). For the
analyses in this repo the tail is always *bounded*: callers instantiate the
layout with a concrete tail size before building messages (the paper bounds
message sizes the same way, §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MessageError

#: Sentinel size for the single allowed variable-length tail field.
VARIABLE = -1


@dataclass(frozen=True)
class Field:
    """One named field of a wire message.

    Attributes:
        name: field identifier, unique within a layout.
        size: width in bytes, or :data:`VARIABLE` for the tail field.
    """

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size != VARIABLE and self.size <= 0:
            raise MessageError(f"field {self.name!r} must have positive size")

    @property
    def is_variable(self) -> bool:
        return self.size == VARIABLE


@dataclass(frozen=True)
class FieldView:
    """Resolved location of a field inside a concrete-size message."""

    name: str
    offset: int
    size: int

    @property
    def end(self) -> int:
        return self.offset + self.size

    @property
    def byte_range(self) -> range:
        return range(self.offset, self.end)

    @property
    def bit_width(self) -> int:
        return 8 * self.size


class MessageLayout:
    """Ordered field layout of one message type.

    Only the last field may be variable-length; :meth:`bind` produces a
    fully-fixed layout once the tail size is chosen.

    Args:
        name: human-readable layout name (used in reports).
        fields: ordered field declarations.
    """

    def __init__(self, name: str, fields: list[Field] | tuple[Field, ...]):
        fields = tuple(fields)
        if not fields:
            raise MessageError("a layout needs at least one field")
        seen: set[str] = set()
        for index, field in enumerate(fields):
            if field.name in seen:
                raise MessageError(f"duplicate field name {field.name!r}")
            seen.add(field.name)
            if field.is_variable and index != len(fields) - 1:
                raise MessageError(
                    f"variable field {field.name!r} must be last in the layout")
        self.name = name
        self.fields = fields

    # -- shape -----------------------------------------------------------------

    @property
    def has_variable_tail(self) -> bool:
        return self.fields[-1].is_variable

    @property
    def fixed_size(self) -> int:
        """Total size of the fixed-size prefix, in bytes."""
        return sum(f.size for f in self.fields if not f.is_variable)

    def bind(self, tail_size: int) -> "MessageLayout":
        """Fix the variable tail to ``tail_size`` bytes.

        Returns ``self`` unchanged when the layout is already fixed and
        ``tail_size`` is not needed.
        """
        if not self.has_variable_tail:
            raise MessageError(f"layout {self.name!r} has no variable tail")
        if tail_size <= 0:
            raise MessageError("tail_size must be positive")
        tail = self.fields[-1]
        return MessageLayout(
            self.name, self.fields[:-1] + (Field(tail.name, tail_size),))

    @property
    def total_size(self) -> int:
        """Total message size in bytes (requires a fixed layout)."""
        if self.has_variable_tail:
            raise MessageError(
                f"layout {self.name!r} has an unbound variable tail; "
                "call bind(tail_size) first")
        return self.fixed_size

    # -- lookup ----------------------------------------------------------------

    def view(self, name: str) -> FieldView:
        """Resolve a field's byte range. Raises on unknown names."""
        offset = 0
        for field in self.fields:
            if field.name == name:
                if field.is_variable:
                    raise MessageError(
                        f"field {name!r} is unbound; call bind() first")
                return FieldView(name, offset, field.size)
            if field.is_variable:
                raise MessageError(
                    f"layout {self.name!r} has an unbound variable tail")
            offset += field.size
        raise MessageError(f"layout {self.name!r} has no field {name!r}")

    def views(self) -> list[FieldView]:
        """All field views in wire order (requires a fixed layout)."""
        return [self.view(f.name) for f in self.fields]

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field_of_byte(self, index: int) -> FieldView:
        """The field that byte ``index`` belongs to."""
        if index < 0 or index >= self.total_size:
            raise MessageError(
                f"byte {index} out of range for layout {self.name!r} "
                f"({self.total_size} bytes)")
        for view in self.views():
            if index in view.byte_range:
                return view
        raise MessageError(f"byte {index} not covered by any field")

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{f.name}:{'*' if f.is_variable else f.size}" for f in self.fields)
        return f"MessageLayout({self.name!r}, {parts})"
