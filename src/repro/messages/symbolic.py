"""Symbolic views over wire messages.

The server side of Achilles feeds an *unconstrained symbolic message* to the
node under test (§3.1): one fresh 8-bit variable per wire byte, produced by
:func:`fresh_message`. The client side composes messages from expressions
with :class:`MessageBuilder`. Both sides meet in
:func:`wire_equalities`, which equates a server message variable vector
with a client payload expression vector (the ``msgS = msgC = msg``
combination of §3.2).

Multi-byte fields use network byte order (big-endian) throughout.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import MessageError
from repro.messages.layout import FieldView, MessageLayout
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext


def fresh_message(ctx: ExecutionContext, layout: MessageLayout,
                  name: str = "msg") -> tuple[Expr, ...]:
    """One fresh symbolic byte per wire byte of ``layout``.

    This is the paper's "unconstrained symbolic message" handed to the
    server's receive call.
    """
    return tuple(ctx.fresh_bytes(name, layout.total_size))


def message_vars(layout: MessageLayout, name: str = "msg") -> tuple[Expr, ...]:
    """Engine-independent variant of :func:`fresh_message`.

    Used by analyses that need the message variable vector without an
    execution context (e.g. combining predicates after exploration).
    """
    return tuple(
        ast.bv_var(f"{name}[{i}]", 8) for i in range(layout.total_size))


def field_expr(wire: Sequence[Expr], view: FieldView) -> Expr:
    """The field's value as a single big-endian bitvector expression."""
    if view.end > len(wire):
        raise MessageError(
            f"field {view.name!r} ends at byte {view.end} but the wire "
            f"message has only {len(wire)} bytes")
    result = wire[view.offset]
    for index in range(view.offset + 1, view.end):
        result = ast.concat(result, wire[index])
    return result


def field_bytes(wire: Sequence[Expr], view: FieldView) -> tuple[Expr, ...]:
    """The field's individual byte expressions, in wire order."""
    return tuple(wire[i] for i in view.byte_range)


def wire_equalities(server_msg: Sequence[Expr],
                    client_payload: Sequence[Expr]) -> list[Expr]:
    """Byte-wise equality constraints ``msgS = msgC`` (§3.2).

    Messages of different lengths cannot be equal; this returns a single
    unsatisfiable constraint in that case so callers can treat length
    mismatch uniformly through the solver.
    """
    if len(server_msg) != len(client_payload):
        return [ast.FALSE]
    return [ast.eq(s, c) for s, c in zip(server_msg, client_payload)]


class MessageBuilder:
    """Compose a wire message field-by-field (the client's send path).

    Values may be Python ints (encoded big-endian into the field's bytes)
    or solver expressions whose width matches the field.

    Example::

        builder = MessageBuilder(layout)
        builder.set("cmd", CC_GET_FILE)
        builder.set("address", addr_expr)          # 32-bit expression
        builder.set_bytes("buf", path_bytes)       # per-byte expressions
        ctx.send("server", builder.wire())
    """

    def __init__(self, layout: MessageLayout):
        self._layout = layout
        self._bytes: list[Expr | None] = [None] * layout.total_size

    @property
    def layout(self) -> MessageLayout:
        return self._layout

    def set(self, field: str, value: Expr | int) -> "MessageBuilder":
        """Assign a whole field from an int or a matching-width expression."""
        view = self._layout.view(field)
        if isinstance(value, int):
            self._store_int(view, value)
            return self
        if not isinstance(value, Expr):
            raise MessageError(
                f"field {field!r} value must be an int or expression")
        if value.width != view.bit_width:
            raise MessageError(
                f"field {field!r} is {view.bit_width} bits but the value "
                f"expression is {value.width} bits")
        for position, index in enumerate(view.byte_range):
            hi = view.bit_width - 8 * position - 1
            self._bytes[index] = ast.extract(value, hi, hi - 7)
        return self

    def set_bytes(self, field: str,
                  values: Sequence[Expr | int]) -> "MessageBuilder":
        """Assign a field from per-byte values (ints or 8-bit expressions)."""
        view = self._layout.view(field)
        if len(values) != view.size:
            raise MessageError(
                f"field {field!r} needs {view.size} bytes, got {len(values)}")
        for index, value in zip(view.byte_range, values):
            if isinstance(value, int):
                value = ast.bv_const(value, 8)
            elif value.width != 8:
                raise MessageError(
                    f"per-byte values for field {field!r} must be 8-bit")
            self._bytes[index] = value
        return self

    def get(self, field: str) -> Expr:
        """The field's current value as one big-endian expression."""
        view = self._layout.view(field)
        missing = [i for i in view.byte_range if self._bytes[i] is None]
        if missing:
            raise MessageError(f"field {field!r} is not fully assigned")
        return field_expr(self._bytes, view)  # type: ignore[arg-type]

    def prefix_bytes(self, before_field: str) -> tuple[Expr, ...]:
        """All assigned bytes preceding ``before_field`` (checksum spans).

        Raises when any byte in the prefix is still unassigned, so
        checksums cannot silently cover holes.
        """
        view = self._layout.view(before_field)
        prefix = self._bytes[:view.offset]
        missing = [i for i, b in enumerate(prefix) if b is None]
        if missing:
            names = sorted({self._layout.field_of_byte(i).name for i in missing})
            raise MessageError(
                f"prefix of {before_field!r} has unassigned fields: "
                f"{', '.join(names)}")
        return tuple(prefix)  # type: ignore[arg-type]

    def wire(self) -> tuple[Expr, ...]:
        """The complete wire message; raises if any byte is unassigned."""
        missing = [i for i, b in enumerate(self._bytes) if b is None]
        if missing:
            names = sorted({self._layout.field_of_byte(i).name for i in missing})
            raise MessageError(
                f"unassigned fields in {self._layout.name!r}: {', '.join(names)}")
        return tuple(self._bytes)  # type: ignore[arg-type]

    def _store_int(self, view: FieldView, value: int) -> None:
        limit = 1 << view.bit_width
        if value < 0 or value >= limit:
            raise MessageError(
                f"value {value} does not fit field {view.name!r} "
                f"({view.size} bytes)")
        for position, index in enumerate(view.byte_range):
            shift = 8 * (view.size - position - 1)
            self._bytes[index] = ast.bv_const((value >> shift) & 0xFF, 8)
