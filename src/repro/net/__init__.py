"""Simulated network and concrete node runtime.

Achilles produces *concrete* Trojan examples precisely so testers can
inject them into a live deployment and watch the effect (§4.1, "live fire
drills"). This package is that deployment substrate:

* :class:`Node` / :class:`Network` — named nodes exchanging byte-string
  messages over in-order queues, driven to quiescence by
  :meth:`Network.run`;
* :class:`Trace` — every send/deliver event, queryable by the impact
  experiments;
* :class:`Injector` — spoof-capable message injection plus a campaign
  helper that replays Achilles findings against a running system.
"""

from repro.net.network import Network, Node
from repro.net.trace import Trace, TraceEvent
from repro.net.inject import InjectionOutcome, Injector

__all__ = [
    "InjectionOutcome",
    "Injector",
    "Network",
    "Node",
    "Trace",
    "TraceEvent",
]
