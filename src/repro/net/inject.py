"""Fault injection: replay Achilles findings against a live deployment.

The paper's usage model (§4.1): Achilles emits a concrete example for every
Trojan expression; testers inject those concrete messages into a real
deployment and observe the effect, weeding out harmless ones. The
:class:`Injector` does exactly that against the simulated network — it can
spoof any sender name, so a Trojan "from" a correct client can be placed on
the wire without that client's code being able to produce it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.net.network import Network


@dataclass(frozen=True)
class InjectionOutcome:
    """Observed effect of injecting one message.

    Attributes:
        payload: the injected wire bytes.
        note: label carried into the network trace.
        delivered: number of deliveries the injection caused (including
            cascades) before the network went quiet.
        probe_before / probe_after: snapshots from the caller's probe
            function around the injection.
    """

    payload: bytes
    note: str
    delivered: int
    probe_before: object
    probe_after: object

    @property
    def changed_state(self) -> bool:
        return self.probe_before != self.probe_after


class Injector:
    """Inject crafted messages into a :class:`~repro.net.network.Network`.

    Args:
        network: the live deployment.
        destination: node that receives the injected messages.
        spoof_source: sender name to forge on the wire.
        probe: zero-argument callable snapshotting whatever state the
            experiment cares about (filesystem tree, replica counters, …).
            Defaults to a constant, making ``changed_state`` always False.
    """

    def __init__(self, network: Network, destination: str, spoof_source: str,
                 probe: Callable[[], object] | None = None):
        self._network = network
        self._destination = destination
        self._spoof_source = spoof_source
        self._probe = probe or (lambda: None)

    def inject(self, payload: bytes, note: str = "injected") -> InjectionOutcome:
        """Place one message on the wire and run the network to quiescence."""
        before = self._probe()
        deliveries_before = self._network.trace.count("deliver")
        self._network.send(self._spoof_source, self._destination, payload,
                           note=note)
        self._network.run()
        after = self._probe()
        delivered = self._network.trace.count("deliver") - deliveries_before
        return InjectionOutcome(bytes(payload), note, delivered, before, after)

    def campaign(self, payloads: Sequence[bytes],
                 note: str = "trojan") -> list[InjectionOutcome]:
        """Inject each payload in turn (the paper's fire-drill loop)."""
        return [self.inject(p, note=f"{note}#{i}")
                for i, p in enumerate(payloads)]
