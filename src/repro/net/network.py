"""Named nodes exchanging byte messages over in-order queues.

The scheduler is deterministic: messages are delivered strictly in global
send order (a single FIFO), which keeps the impact experiments reproducible.
Message *reordering* is out of scope, as in the paper ("we currently ignore
the order in which messages are received", §7).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import NetworkError
from repro.net.trace import DELIVER, DROP, SEND, Trace


class Node:
    """Base class for concretely-running nodes.

    Subclasses implement :meth:`handle`; they reply (or gossip) by calling
    ``network.send(self.name, destination, payload)``.
    """

    def __init__(self, name: str):
        self.name = name

    def handle(self, source: str, payload: bytes, network: "Network") -> None:
        """Process one delivered message."""
        raise NotImplementedError

    def on_attach(self, network: "Network") -> None:
        """Hook invoked when the node joins a network."""


class Network:
    """A deterministic single-FIFO message network.

    Args:
        trace: optional shared :class:`Trace`; a fresh one is created by
            default and exposed as :attr:`trace`.
    """

    def __init__(self, trace: Trace | None = None):
        self._nodes: dict[str, Node] = {}
        self._queue: deque[tuple[str, str, bytes]] = deque()
        self.trace = trace or Trace()
        self.drop_filter: Callable[[str, str, bytes], bool] | None = None

    # -- topology -----------------------------------------------------------------

    def attach(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise NetworkError(f"node name {node.name!r} already attached")
        self._nodes[node.name] = node
        node.on_attach(self)
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"no node named {name!r}") from None

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    # -- messaging ----------------------------------------------------------------

    def send(self, source: str, destination: str, payload: bytes,
             note: str = "") -> None:
        """Enqueue a message; delivery happens during :meth:`run`."""
        if destination not in self._nodes:
            raise NetworkError(f"no node named {destination!r}")
        self.trace.record(SEND, source, destination, payload, note)
        if self.drop_filter is not None and self.drop_filter(
                source, destination, payload):
            self.trace.record(DROP, source, destination, payload, "drop_filter")
            return
        self._queue.append((source, destination, bytes(payload)))

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Deliver one message. Returns False when the queue is empty."""
        if not self._queue:
            return False
        source, destination, payload = self._queue.popleft()
        self.trace.record(DELIVER, source, destination, payload)
        self._nodes[destination].handle(source, payload, self)
        return True

    def run(self, max_steps: int = 100_000) -> int:
        """Deliver messages until quiescence. Returns steps taken.

        Raises:
            NetworkError: when ``max_steps`` deliveries did not reach
                quiescence (a livelock guard for the recovery protocols).
        """
        steps = 0
        while self.step():
            steps += 1
            if steps >= max_steps:
                raise NetworkError(f"network still busy after {max_steps} steps")
        return steps
