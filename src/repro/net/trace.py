"""Network event traces.

Every message movement in the simulated network is recorded as a
:class:`TraceEvent`; the impact experiments assert on these (e.g. "a bad-MAC
request triggered a view change broadcast").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

#: Event kinds.
SEND = "send"
DELIVER = "deliver"
DROP = "drop"


@dataclass(frozen=True)
class TraceEvent:
    """One network event.

    Attributes:
        step: global sequence number (monotone, shared by all kinds).
        kind: ``send``, ``deliver`` or ``drop``.
        source: sending node name (spoofed injections carry the spoofed name).
        destination: receiving node name.
        payload: raw wire bytes.
        note: free-form annotation (injection ids, drop reasons).
    """

    step: int
    kind: str
    source: str
    destination: str
    payload: bytes
    note: str = ""


class Trace:
    """Append-only list of :class:`TraceEvent` with query helpers."""

    def __init__(self):
        self._events: list[TraceEvent] = []
        self._counter = 0

    def record(self, kind: str, source: str, destination: str,
               payload: bytes, note: str = "") -> TraceEvent:
        event = TraceEvent(self._counter, kind, source, destination,
                           bytes(payload), note)
        self._counter += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self._events if predicate(e)]

    def sends(self, source: str | None = None) -> list[TraceEvent]:
        return self.filter(
            lambda e: e.kind == SEND and (source is None or e.source == source))

    def deliveries(self, destination: str | None = None) -> list[TraceEvent]:
        return self.filter(
            lambda e: e.kind == DELIVER
            and (destination is None or e.destination == destination))

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def clear(self) -> None:
        self._events.clear()
