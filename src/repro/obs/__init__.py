"""Observability: run tracing, metrics, structured logs, live progress.

The subsystem is dark by default. A run that passes ``trace_dir``
activates the module-global :class:`~repro.obs.trace.Tracer` (and the
metrics registry riding on it); instrumented hot paths guard on the
module global being ``None``, so the disabled cost is one attribute
load per call site. Workers ship their spans home as
:class:`~repro.obs.trace.TraceDelta` payloads riding the existing
result frames, and the coordinator merges everything into one
CRC-framed ``trace.jsonl`` (the diskcache segment framing, so a torn
trace salvages like a torn cache segment).
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressMeter
from repro.obs.trace import TraceDelta, Tracer

__all__ = [
    "MetricsRegistry",
    "ProgressMeter",
    "TraceDelta",
    "Tracer",
]
