"""The ``repro`` logger: structured events for warnings and recovery.

Library code logs through :func:`get_logger` / :func:`log_event`;
nothing is printed unless the application configures handlers (the CLI
calls :func:`configure`, mapping ``--verbose``/``--quiet`` onto
levels). Events carry structured ``key=value`` fields rendered in
sorted order so log lines are grep- and diff-stable.
"""

from __future__ import annotations

import logging
import sys

ROOT_NAME = "repro"

_handler: logging.Handler | None = None


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (e.g. ``repro.solver``)."""
    return logging.getLogger(ROOT_NAME if not name
                             else f"{ROOT_NAME}.{name}")


def kv(fields: dict) -> str:
    """Render structured fields as stable, sorted ``key=value`` pairs."""
    parts = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, float):
            value = f"{value:.3f}"
        text = str(value)
        if " " in text:
            text = repr(text)
        parts.append(f"{key}={text}")
    return " ".join(parts)


def log_event(logger: logging.Logger, level: int, event: str,
              **fields) -> None:
    """Log ``event key=value ...`` at ``level`` (lazy: formatting only
    happens if the level is enabled)."""
    if logger.isEnabledFor(level):
        message = event if not fields else f"{event} {kv(fields)}"
        logger.log(level, "%s", message)


def configure(verbosity: int = 0, stream=None) -> logging.Logger:
    """Install one stderr handler on the ``repro`` root logger.

    ``verbosity``: -1 (``--quiet``) shows only errors, 0 (default)
    warnings, 1 (``--verbose``) info, 2+ debug. Idempotent — repeat
    calls retune the existing handler instead of stacking new ones.
    """
    global _handler
    root = logging.getLogger(ROOT_NAME)
    if _handler is None or _handler not in root.handlers:
        _handler = logging.StreamHandler(stream or sys.stderr)
        _handler.setFormatter(logging.Formatter(
            "[%(name)s] %(levelname)s %(message)s"))
        root.addHandler(_handler)
    elif stream is not None:
        _handler.setStream(stream)
    root.propagate = False
    if verbosity <= -1:
        root.setLevel(logging.ERROR)
    elif verbosity == 0:
        root.setLevel(logging.WARNING)
    elif verbosity == 1:
        root.setLevel(logging.INFO)
    else:
        root.setLevel(logging.DEBUG)
    return root
