"""Counters, gauges and latency histograms for the solver pipeline.

The registry makes per-layer latency distributions and hit rates
first-class: every solver layer (canonicalization, the canonical query
cache, the incremental frame stack, the from-scratch fallback, the
batch-dispatch service) feeds a histogram via the tracer's span exit,
and run-level counters/gauges are folded in at snapshot time.

Like tracing, metrics are off unless activated; snapshots are plain
JSON-able dicts so worker registries ship home inside a
:class:`~repro.obs.trace.TraceDelta` and fold into the coordinator's
with :func:`merge_snapshots`.
"""

from __future__ import annotations

#: Histogram bucket upper bounds, in seconds (the last bucket is
#: open-ended). Powers of ~4 from 10us to 40s cover a solver query to a
#: whole phase.
BUCKET_BOUNDS = (1e-5, 4e-5, 1.6e-4, 6.4e-4, 2.56e-3, 1.024e-2,
                 4.096e-2, 0.16384, 0.65536, 2.62144, 10.48576, 41.94304)

#: The module-global active registry; ``None`` means metrics are off.
active: "MetricsRegistry | None" = None


def activate() -> "MetricsRegistry":
    global active
    if active is None:
        active = MetricsRegistry()
    return active


def deactivate() -> "MetricsRegistry | None":
    global active
    registry, active = active, None
    return registry


class Counter:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """count/sum/min/max plus fixed log-spaced buckets."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = 0.0
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(BUCKET_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": list(self.buckets)}


class MetricsRegistry:
    """Named counters, gauges and histograms with mergeable snapshots."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- access (creating on first use) --------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        return histogram

    # -- hot-path helpers ----------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        self.histogram(name).observe(seconds)

    def add(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            "counters": {name: c.value
                         for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value
                       for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.snapshot()
                           for name, h in sorted(self._histograms.items())},
        }

    def drain(self) -> dict:
        """Snapshot and reset — each worker assignment ships its own
        increment, summed at the coordinator."""
        snapshot = self.snapshot()
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        return snapshot

    def absorb(self, snapshot: dict) -> None:
        """Fold a shipped snapshot into this registry's live state."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, histo in snapshot.get("histograms", {}).items():
            target = self.histogram(name)
            target.count += histo.get("count", 0)
            target.total += histo.get("total", 0.0)
            low = histo.get("min")
            if low is not None and (target.min is None or low < target.min):
                target.min = low
            target.max = max(target.max, histo.get("max", 0.0))
            for index, n in enumerate(histo.get("buckets", ())):
                if index < len(target.buckets):
                    target.buckets[index] += n


def merge_snapshots(base: dict, extra: dict) -> dict:
    """Pure-dict fold of two snapshots (counters sum, gauges take the
    newer value, histograms combine)."""
    registry = MetricsRegistry()
    registry.absorb(base or {})
    registry.absorb(extra or {})
    return registry.snapshot()
