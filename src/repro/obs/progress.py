"""Live one-line fleet status for long hunts (``--progress``).

A :class:`ProgressMeter` aggregates worker heartbeats (paths/sec,
worklist depth, cache hit rate) plus coordinator-side counts (pending
regions, steals, failures) and prints a single status line to stderr at
a fixed cadence. It deliberately has no repro imports: the serial
control below duck-types the engine's ``ExploreControl`` protocol
(``checkpoint(worklist) -> bool``), so this module can sit below every
layer it observes.
"""

from __future__ import annotations

import sys
import time


class ProgressMeter:
    """Renders ``[hunt] 12.4s paths=1534 (123.4/s) ...`` lines."""

    def __init__(self, stream=None, interval: float = 1.0,
                 clock=time.monotonic, label: str = "hunt"):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.clock = clock
        self.label = label
        self.started = clock()
        self._last_render = self.started
        self._last_paths = 0
        self._last_rate_at = self.started
        self._fleet: dict[int, dict] = {}
        self.lines_rendered = 0
        self.coordinator: dict = {}

    # -- inputs ---------------------------------------------------------

    def heartbeat(self, wid: int, payload: dict) -> None:
        """Record one worker heartbeat (a plain dict of gauges)."""
        if isinstance(payload, dict):
            self._fleet[wid] = payload

    def note(self, **fields) -> None:
        """Update coordinator-side fields (pending, busy, steals...)."""
        self.coordinator.update(fields)

    # -- rendering ------------------------------------------------------

    def _totals(self) -> dict:
        paths = sum(hb.get("paths", 0) for hb in self._fleet.values())
        paths += self.coordinator.get("paths", 0)
        worklist = sum(hb.get("worklist", 0) for hb in self._fleet.values())
        worklist += self.coordinator.get("worklist", 0)
        hits = sum(hb.get("cache_hits", 0) for hb in self._fleet.values())
        misses = sum(hb.get("cache_misses", 0) for hb in self._fleet.values())
        hits += self.coordinator.get("cache_hits", 0)
        misses += self.coordinator.get("cache_misses", 0)
        return {"paths": paths, "worklist": worklist,
                "cache_hits": hits, "cache_misses": misses}

    def status_line(self) -> str:
        now = self.clock()
        totals = self._totals()
        elapsed = now - self.started
        window = max(now - self._last_rate_at, 1e-9)
        rate = (totals["paths"] - self._last_paths) / window
        self._last_paths = totals["paths"]
        self._last_rate_at = now
        parts = [f"[{self.label}] {elapsed:6.1f}s",
                 f"paths={totals['paths']}", f"({rate:.1f}/s)"]
        if self._fleet or "workers" in self.coordinator:
            workers = self.coordinator.get("workers", len(self._fleet))
            busy = self.coordinator.get("busy")
            parts.append(f"workers={workers}"
                         + (f" busy={busy}" if busy is not None else ""))
        if "pending" in self.coordinator:
            parts.append(f"pending={self.coordinator['pending']}")
        parts.append(f"worklist={totals['worklist']}")
        queries = totals["cache_hits"] + totals["cache_misses"]
        if queries:
            parts.append(f"cache={totals['cache_hits'] / queries:.1%}")
        for key in ("steals", "failures"):
            if self.coordinator.get(key):
                parts.append(f"{key}={self.coordinator[key]}")
        return " ".join(parts)

    def maybe_render(self, **fields) -> bool:
        """Render one status line if the cadence interval has elapsed."""
        if fields:
            self.note(**fields)
        now = self.clock()
        if now - self._last_render < self.interval:
            return False
        self._last_render = now
        print(self.status_line(), file=self.stream, flush=True)
        self.lines_rendered += 1
        return True

    def close(self) -> None:
        """Final status line so short runs show at least one."""
        print(self.status_line(), file=self.stream, flush=True)
        self.lines_rendered += 1

    # -- serial runs ----------------------------------------------------

    def serial_control(self, engine=None, inner=None) -> "ProgressControl":
        """An ``ExploreControl`` that feeds this meter from an
        in-process (unsharded) exploration."""
        return ProgressControl(self, engine=engine, inner=inner)


class ProgressControl:
    """Duck-typed ExploreControl: counts popped paths and worklist depth
    for the meter; purely observational (always returns True)."""

    def __init__(self, meter: ProgressMeter, engine=None, inner=None):
        self.meter = meter
        self.engine = engine
        self.inner = inner
        self.paths = 0

    def checkpoint(self, worklist) -> bool:
        self.paths += 1
        fields = {"paths": self.paths, "worklist": len(worklist)}
        if self.engine is not None:
            stats = self.engine.query_cache.stats
            fields["cache_hits"] = stats.hits
            fields["cache_misses"] = stats.misses
        self.meter.maybe_render(**fields)
        if self.inner is not None:
            return self.inner.checkpoint(worklist)
        return True
