"""Low-overhead structured tracing for analysis runs.

A :class:`Tracer` records *spans* (named, timed, nestable regions) and
*point events* into an in-memory buffer. Tracing is off unless a run
activates the module-global tracer; every instrumented call site guards
on ``trace.active is None``, so the disabled cost is one module
attribute load and a pointer comparison.

Hot solver layers fire hundreds of thousands of spans per run, far more
than a readable trace wants. Each span name therefore has a recording
*budget*: the first :data:`DEFAULT_SPAN_BUDGET` occurrences are kept as
individual spans, the rest are folded into one aggregate record per
name (count + total duration), so the trace stays bounded while the
aggregates still account for all the time.

Workers trace locally and ship a picklable :class:`TraceDelta` home on
the result frame of each assignment; the coordinator merges its own
records with every worker's deltas in a deterministic order (coordinator
first, then workers by id, each in local sequence order), so the merged
trace file is stable regardless of message arrival order or shard
count.

The on-disk format is CRC-framed JSONL using the diskcache segment
framing — one JSON object per frame — so a torn trace file salvages
its valid prefix exactly like a torn cache segment.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import metrics as obs_metrics

#: File name used for merged traces inside a trace directory.
TRACE_FILE_NAME = "trace.jsonl"

#: Individually recorded spans per name before aggregation kicks in.
DEFAULT_SPAN_BUDGET = 512

#: Hard cap on buffered records per tracer (backstop, not a tuning knob).
MAX_RECORDS = 200_000

#: The module-global active tracer. ``None`` means tracing is off; hot
#: call sites read this exact attribute, so rebinding here is the whole
#: on/off switch.
active: "Tracer | None" = None


def activate(source: str = "coordinator", *,
             span_budget: int = DEFAULT_SPAN_BUDGET) -> "Tracer":
    """Turn tracing on (idempotent) and return the active tracer."""
    global active
    if active is None:
        active = Tracer(source=source, span_budget=span_budget,
                        metrics=obs_metrics.activate())
    return active


def deactivate() -> "Tracer | None":
    """Turn tracing off; returns the tracer that was active, if any."""
    global active
    tracer, active = active, None
    obs_metrics.deactivate()
    return tracer


@dataclass(frozen=True)
class TraceDelta:
    """A worker's trace records for one assignment, shipped on the
    result frame. Plain tuples/dicts of JSON-able values — picklable
    for the local queue and the TCP frame alike."""

    source: str
    records: tuple = ()
    dropped: int = 0
    metrics: dict | None = None


class Tracer:
    """Buffers spans and events; near-zero cost when not active."""

    def __init__(self, source: str = "coordinator", *,
                 span_budget: int = DEFAULT_SPAN_BUDGET,
                 metrics: "obs_metrics.MetricsRegistry | None" = None):
        self.source = source
        self.span_budget = span_budget
        self.metrics = metrics
        self.records: list[dict] = []
        self.dropped = 0
        self._seq = 0
        self._depth = 0
        self._name_counts: dict[str, int] = {}
        self._overflow: dict[str, list] = {}  # name -> [count, total_dur]

    # -- recording -----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Time a named region. Nesting is tracked via a depth field;
        the Chrome exporter reconstructs the flame from ts/dur."""
        depth = self._depth
        self._depth = depth + 1
        wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self._depth = depth
            self._finish_span(name, wall, duration, depth, attrs)

    def _finish_span(self, name, wall, duration, depth, attrs) -> None:
        metrics = self.metrics
        if metrics is not None:
            metrics.observe(name, duration)
        used = self._name_counts.get(name, 0)
        if used < self.span_budget and len(self.records) < MAX_RECORDS:
            self._name_counts[name] = used + 1
            record = {"seq": self._seq, "kind": "span", "name": name,
                      "ts": wall, "dur": duration, "depth": depth,
                      "src": self.source}
            if attrs:
                record["attrs"] = attrs
            self.records.append(record)
            self._seq += 1
        else:
            slot = self._overflow.get(name)
            if slot is None:
                self._overflow[name] = [1, duration]
            else:
                slot[0] += 1
                slot[1] += duration

    def event(self, name: str, **attrs) -> None:
        """Record a point event (no duration)."""
        if len(self.records) >= MAX_RECORDS:
            self.dropped += 1
            return
        record = {"seq": self._seq, "kind": "event", "name": name,
                  "ts": time.time(), "depth": self._depth,
                  "src": self.source}
        if attrs:
            record["attrs"] = attrs
        self.records.append(record)
        self._seq += 1

    # -- snapshotting --------------------------------------------------

    def flush_aggregates(self) -> None:
        """Fold over-budget span tallies into ``agg`` records and reset
        the per-name budgets (so e.g. each assignment gets fresh ones)."""
        for name in sorted(self._overflow):
            count, total = self._overflow[name]
            self.records.append({
                "seq": self._seq, "kind": "agg", "name": name,
                "ts": time.time(), "src": self.source,
                "attrs": {"count": count, "total_dur": total},
            })
            self._seq += 1
        self._overflow.clear()
        self._name_counts.clear()

    def take_delta(self) -> TraceDelta:
        """Drain buffered records into a shippable delta. The sequence
        counter keeps running, so successive deltas from one tracer
        stay totally ordered."""
        self.flush_aggregates()
        metrics = self.metrics.drain() if self.metrics is not None else None
        delta = TraceDelta(source=self.source,
                           records=tuple(self.records),
                           dropped=self.dropped, metrics=metrics)
        self.records = []
        self.dropped = 0
        return delta


# -- merging -----------------------------------------------------------


def merge_traces(coordinator_records,
                 worker_deltas: dict[int, list] | None = None,
                 extra_records=()) -> list[dict]:
    """Deterministically merge coordinator records with worker deltas.

    Order is: coordinator records (local order), then workers by id,
    each worker's deltas in arrival order (per-worker arrival order is
    deterministic — result frames are FIFO per worker), records inside a
    delta in local order. Sequence numbers are renumbered per source, so
    a respawned worker restarting its counter cannot collide. The output
    is therefore identical however the deltas interleaved in real time.
    """
    merged: list[dict] = []
    for seq, record in enumerate(coordinator_records):
        out = dict(record)
        out["src"] = "coordinator"
        out["seq"] = seq
        merged.append(out)
    for wid in sorted(worker_deltas or ()):
        seq = 0
        for delta in worker_deltas[wid]:
            for record in delta.records:
                out = dict(record)
                out["src"] = f"worker-{wid}"
                out["seq"] = seq
                seq += 1
                merged.append(out)
    merged.extend(dict(record) for record in extra_records)
    return merged


def metrics_record(snapshot: dict) -> dict:
    """A trailer record carrying the merged metrics snapshot."""
    return {"kind": "metrics", "name": "metrics", "src": "coordinator",
            "ts": time.time(), "attrs": snapshot}


# -- file I/O ----------------------------------------------------------


@dataclass
class TraceFile:
    """A parsed trace file; ``damaged`` mirrors the segment salvage."""

    records: list[dict] = field(default_factory=list)
    damaged: bool = False
    reason: str | None = None


def write_trace(path, records) -> Path:
    """Write records as a CRC-framed JSONL segment (atomic rename)."""
    from repro.solver.diskcache import write_segment

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payloads = [
        json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
        for record in records
    ]
    write_segment(path, payloads)
    return path


def read_trace(path) -> TraceFile:
    """Read a trace file, salvaging the valid prefix of a damaged one."""
    from repro.solver.diskcache import scan_frames

    data = Path(path).read_bytes()
    scan = scan_frames(data)
    records = [json.loads(payload) for payload in scan.payloads]
    return TraceFile(records=records, damaged=scan.damaged,
                     reason=scan.reason)


# -- Chrome trace-event export ----------------------------------------


def _thread_ids(records) -> dict[str, int]:
    """Stable tid per source: coordinator first, workers by id."""
    sources = {record.get("src", "coordinator") for record in records}
    ordered = sorted(sources, key=lambda s: (s != "coordinator", s))
    return {source: tid for tid, source in enumerate(ordered)}

def to_chrome_trace(records) -> dict:
    """Records -> Chrome trace-event JSON (the Perfetto/chrome://tracing
    format): one pid, one tid per source, ``X`` complete events for
    spans, ``i`` instants for events, timestamps normalized to the run
    start in microseconds."""
    tids = _thread_ids(records)
    timestamps = [r["ts"] for r in records if "ts" in r]
    base = min(timestamps) if timestamps else 0.0
    events = [
        {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
         "args": {"name": source}}
        for source, tid in sorted(tids.items(), key=lambda kv: kv[1])
    ]
    for record in records:
        tid = tids[record.get("src", "coordinator")]
        kind = record.get("kind", "span")
        ts = (record.get("ts", base) - base) * 1e6
        args = dict(record.get("attrs", ()))
        if kind == "span":
            events.append({"ph": "X", "pid": 1, "tid": tid,
                           "name": record["name"], "cat": "span",
                           "ts": ts, "dur": record.get("dur", 0.0) * 1e6,
                           "args": args})
        elif kind == "agg":
            args.setdefault("note", "aggregate of over-budget spans")
            events.append({"ph": "i", "pid": 1, "tid": tid, "s": "t",
                           "name": f"{record['name']} (agg)",
                           "cat": "agg", "ts": ts, "args": args})
        elif kind == "event":
            events.append({"ph": "i", "pid": 1, "tid": tid, "s": "t",
                           "name": record["name"], "cat": "event",
                           "ts": ts, "args": args})
        elif kind == "metrics":
            events.append({"ph": "i", "pid": 1, "tid": tid, "s": "g",
                           "name": "metrics", "cat": "metrics",
                           "ts": ts, "args": args})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -- summaries ---------------------------------------------------------


def summarize(records) -> dict:
    """Aggregate a trace: per-source record counts, per-name span stats
    (individual spans plus their over-budget aggregates), event counts,
    and the metrics trailer if present."""
    sources: dict[str, int] = {}
    spans: dict[str, dict] = {}
    events: dict[str, int] = {}
    metrics: dict = {}
    for record in records:
        source = record.get("src", "coordinator")
        sources[source] = sources.get(source, 0) + 1
        kind = record.get("kind", "span")
        if kind == "span":
            stat = spans.setdefault(record["name"],
                                    {"count": 0, "total_s": 0.0, "max_s": 0.0})
            stat["count"] += 1
            stat["total_s"] += record.get("dur", 0.0)
            stat["max_s"] = max(stat["max_s"], record.get("dur", 0.0))
        elif kind == "agg":
            attrs = record.get("attrs", {})
            stat = spans.setdefault(record["name"],
                                    {"count": 0, "total_s": 0.0, "max_s": 0.0})
            stat["count"] += attrs.get("count", 0)
            stat["total_s"] += attrs.get("total_dur", 0.0)
        elif kind == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1
        elif kind == "metrics":
            metrics = obs_metrics.merge_snapshots(metrics,
                                                  record.get("attrs", {}))
    return {"records": len(records), "sources": sources, "spans": spans,
            "events": events, "metrics": metrics}


def format_summary(summary: dict, *, damaged: bool = False,
                   reason: str | None = None) -> str:
    """Human-readable rendering of :func:`summarize` output."""
    lines = [f"records: {summary['records']}"]
    if damaged:
        lines.append(f"damaged tail salvaged ({reason})")
    lines.append("sources:")
    for source in sorted(summary["sources"]):
        lines.append(f"  {source}: {summary['sources'][source]} records")
    if summary["spans"]:
        lines.append("spans (name, count, total, max):")
        by_total = sorted(summary["spans"].items(),
                          key=lambda kv: -kv[1]["total_s"])
        for name, stat in by_total:
            lines.append(f"  {name}: {stat['count']}"
                         f"  total {stat['total_s'] * 1e3:.1f}ms"
                         f"  max {stat['max_s'] * 1e3:.2f}ms")
    if summary["events"]:
        lines.append("events:")
        for name in sorted(summary["events"]):
            lines.append(f"  {name}: {summary['events'][name]}")
    counters = summary.get("metrics", {}).get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name}: {counters[name]}")
    return "\n".join(lines)
