"""Bitvector/boolean constraint solver — the repo's Z3/STP substitute.

Public surface:

* Expression construction: :func:`bv_const`, :func:`bv_var`,
  :func:`bool_var`, the operator overloads on :class:`Expr`, and the
  combinators in :mod:`repro.solver.ast` (``and_``, ``or_``, ``not_``,
  ``ite``, ``zext``, ``concat``, …).
* Satisfiability: :func:`check` / :class:`Solver` returning
  :class:`SatResult` with a verified model.
* Canonicalization: :func:`canonicalize` /
  :func:`canonical_constraint_set` (:mod:`repro.solver.simplify`) collapse
  syntactic variants of a query onto one shape; :class:`QueryCache`
  (:mod:`repro.solver.cache`) memoizes satisfiability answers keyed on the
  canonical frozen constraint set.
* Incremental solving: :class:`IncrementalSolver`
  (:mod:`repro.solver.incremental`) — a push/pop assertion stack where
  each frame extends the interval-propagation fixpoint and popping undoes
  it in O(changes) via the domain write trail
  (:class:`~repro.solver.propagate.TrailDomains`).
* Enumeration: :func:`count_models` / :func:`iter_models` for bounded
  spaces (used by the evaluation benchmarks).
* Batched dispatch: :class:`SolverService` (:mod:`repro.solver.service`)
  answers bulk independent queries — ``check_batch`` / ``probe_batch`` /
  ``iter_models_batch`` — on a serial in-process backend or a
  ``multiprocessing`` worker pool, each worker owning a private cache +
  frame stack, with results in input order and per-worker stats merged
  deterministically.

Query pipeline, outermost layer first — each layer only sees what the
previous one could not answer: **canonicalize** (syntactic variants
collapse) → **query cache** (identical queries) → **incremental frame
stack** (prefix-sharing queries: reused propagation + verified-candidate /
contradiction fast paths) → **propagation + backtracking search**
(everything else, from scratch).
"""

from repro.solver.ast import (
    Expr,
    FALSE,
    TRUE,
    all_of,
    and_,
    any_of,
    bool_const,
    bool_var,
    bv_const,
    bv_var,
    bytes_to_exprs,
    concat,
    eq,
    extract,
    iff,
    implies,
    ite,
    ne,
    not_,
    or_,
    sext,
    sge,
    sgt,
    sle,
    slt,
    uge,
    ugt,
    ule,
    ult,
    zext,
)
from repro.solver.cache import CacheStats, QueryCache
from repro.solver.enumerate import count_models, iter_models
from repro.solver.evalmodel import all_hold, evaluate, holds
from repro.solver.incremental import IncrementalSolver
from repro.solver.propagate import TrailDomains, build_var_index, propagate_delta
from repro.solver.service import SolverService, default_worker_count
from repro.solver.simplify import canonical_constraint_set, canonicalize
from repro.solver.solver import SAT, UNSAT, SatResult, Solver, SolverStats, check, is_satisfiable
from repro.solver.sorts import BOOL, BV8, BV16, BV32, BV64, BitVecSort, bitvec_sort
from repro.solver.walk import collect_vars, collect_vars_all, expr_size, simplify, substitute

__all__ = [
    "BOOL", "BV8", "BV16", "BV32", "BV64", "BitVecSort", "CacheStats",
    "Expr", "FALSE", "IncrementalSolver", "QueryCache", "SAT", "SatResult",
    "Solver", "SolverService", "SolverStats", "TRUE", "TrailDomains",
    "UNSAT", "all_hold", "default_worker_count",
    "all_of", "and_", "any_of", "bitvec_sort", "bool_const", "bool_var",
    "build_var_index", "bv_const", "bv_var", "bytes_to_exprs",
    "canonical_constraint_set",
    "canonicalize", "check", "collect_vars",
    "collect_vars_all", "concat", "count_models", "eq", "evaluate",
    "expr_size", "extract", "holds", "iff", "implies", "is_satisfiable",
    "ite", "iter_models", "ne", "not_", "or_", "propagate_delta", "sext",
    "sge", "sgt",
    "simplify", "sle", "slt", "substitute", "uge", "ugt", "ule", "ult",
    "zext",
]
