"""Expression AST for the bitvector/boolean constraint language.

This module is the foundation of the solver subsystem, which substitutes for
the Z3/STP solvers used by the Achilles paper. Expressions are immutable,
structurally hashable trees. Light simplification (constant folding and
algebraic identities) happens at construction time so that the rest of the
system can build expressions freely without ballooning formulas.

Expressions are **hash-consed**: constructing a node that is structurally
identical to a live one returns the existing instance, so structural
equality coincides with ``is`` identity and dict/set/cache lookups on
expressions run at pointer speed. The intern table holds weak references
only — nodes are reclaimed as soon as no formula references them.

Conventions
-----------
* Bitvector values are stored unsigned, in ``[0, 2**width)``.
* Python's comparison operators on bitvector expressions build **unsigned**
  comparisons (message fields are byte-oriented). Use :meth:`Expr.slt` and
  friends for signed comparisons.
* ``==`` on :class:`Expr` is *structural* equality (needed for hashing and
  caching); use :meth:`Expr.eq` / :meth:`Expr.ne` to build symbolic equality
  predicates. Because of interning, structural equality is decided by a
  single identity comparison.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Iterable, Sequence

from repro.errors import SortError
from repro.solver.sorts import BOOL, BitVecSort, Sort, bitvec_sort

# Operator name constants. Grouped by family; the solver's propagation and
# evaluation switch on these strings.
OP_CONST = "const"
OP_VAR = "var"

BV_UNARY_OPS = frozenset({"neg", "bvnot"})
BV_BINARY_OPS = frozenset(
    {"add", "sub", "mul", "udiv", "urem", "bvand", "bvor", "bvxor", "shl", "lshr", "ashr"}
)
BV_COMPARISON_OPS = frozenset({"eq", "ult", "ule", "slt", "sle"})
BOOL_OPS = frozenset({"and", "or", "not", "implies"})
WIDTH_OPS = frozenset({"zext", "sext", "extract", "concat"})

_COMMUTATIVE_OPS = frozenset({"add", "mul", "bvand", "bvor", "bvxor", "eq"})


#: Global intern table: (op, sort, args, params) -> live Expr instance.
_INTERN_TABLE: "weakref.WeakValueDictionary[tuple, Expr]" = weakref.WeakValueDictionary()

#: Monotone creation serial; canonical orderings sort interned nodes by it.
_NEXT_SERIAL = itertools.count()


class Expr:
    """An immutable, interned expression node.

    Attributes:
        op: operator name (one of the ``OP_*`` / op-set constants above).
        sort: the sort of the expression's value.
        args: child expressions.
        params: non-expression parameters (constant value, variable name,
            extract bounds, extension width).
    """

    __slots__ = ("op", "sort", "args", "params", "_hash", "_serial", "__weakref__")

    def __new__(cls, op: str, sort: Sort, args: tuple["Expr", ...] = (), params: tuple = ()):
        key = (op, sort, args, params)
        cached = _INTERN_TABLE.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self.op = op
        self.sort = sort
        self.args = args
        self.params = params
        self._hash = hash(key)
        self._serial = next(_NEXT_SERIAL)
        _INTERN_TABLE[key] = self
        return self

    # -- structural identity ------------------------------------------------
    #
    # Interning makes structural equality an identity check: every
    # construction of the same (op, sort, args, params) returns the same
    # instance, and copy/pickle round-trips re-enter __new__.

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            if isinstance(other, (int, bool)):
                # Catch the classic mistake of writing `expr == 5` expecting
                # a symbolic predicate; `==` is structural identity.
                raise SortError(
                    "`==` on expressions is structural; use .eq()/.ne() to "
                    "build symbolic (in)equality predicates")
            return NotImplemented
        return False

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __copy__(self) -> "Expr":
        return self

    def __deepcopy__(self, memo) -> "Expr":
        return self

    def __reduce__(self):
        return (Expr, (self.op, self.sort, self.args, self.params))

    # -- inspection helpers --------------------------------------------------

    @property
    def is_const(self) -> bool:
        return self.op == OP_CONST

    @property
    def is_var(self) -> bool:
        return self.op == OP_VAR

    @property
    def value(self) -> int:
        """Concrete value of a constant node (bool constants are 0/1)."""
        if self.op != OP_CONST:
            raise SortError(f"value requested from non-constant expression {self.op}")
        return self.params[0]

    @property
    def name(self) -> str:
        """Name of a variable node."""
        if self.op != OP_VAR:
            raise SortError(f"name requested from non-variable expression {self.op}")
        return self.params[0]

    @property
    def width(self) -> int:
        """Width of a bitvector expression."""
        if not isinstance(self.sort, BitVecSort):
            raise SortError(f"width requested from non-bitvector expression of sort {self.sort}")
        return self.sort.width

    @property
    def is_true(self) -> bool:
        return self.op == OP_CONST and self.sort == BOOL and self.params[0] == 1

    @property
    def is_false(self) -> bool:
        return self.op == OP_CONST and self.sort == BOOL and self.params[0] == 0

    def __repr__(self) -> str:
        from repro.solver.printer import to_string

        return to_string(self)

    def __bool__(self) -> bool:
        raise SortError(
            "symbolic expressions have no concrete truth value; route branches "
            "through ctx.branch() or use the solver"
        )

    # -- bitvector operator sugar ---------------------------------------------

    def _coerce(self, other) -> "Expr":
        if isinstance(other, Expr):
            if other.sort != self.sort:
                raise SortError(f"sort mismatch: {self.sort} vs {other.sort}")
            return other
        if isinstance(other, int) and isinstance(self.sort, BitVecSort):
            return bv_const(other, self.sort.width)
        raise SortError(f"cannot coerce {other!r} to sort {self.sort}")

    def __add__(self, other) -> "Expr":
        return add(self, self._coerce(other))

    def __radd__(self, other) -> "Expr":
        return add(self._coerce(other), self)

    def __sub__(self, other) -> "Expr":
        return sub(self, self._coerce(other))

    def __rsub__(self, other) -> "Expr":
        return sub(self._coerce(other), self)

    def __mul__(self, other) -> "Expr":
        return mul(self, self._coerce(other))

    def __rmul__(self, other) -> "Expr":
        return mul(self._coerce(other), self)

    def __and__(self, other) -> "Expr":
        if self.sort == BOOL:
            return and_(self, other)
        return bvand(self, self._coerce(other))

    def __rand__(self, other) -> "Expr":
        return self.__and__(other)

    def __or__(self, other) -> "Expr":
        if self.sort == BOOL:
            return or_(self, other)
        return bvor(self, self._coerce(other))

    def __ror__(self, other) -> "Expr":
        return self.__or__(other)

    def __xor__(self, other) -> "Expr":
        return bvxor(self, self._coerce(other))

    def __rxor__(self, other) -> "Expr":
        return self.__xor__(other)

    def __lshift__(self, other) -> "Expr":
        return shl(self, self._coerce(other))

    def __rshift__(self, other) -> "Expr":
        return lshr(self, self._coerce(other))

    def __invert__(self) -> "Expr":
        if self.sort == BOOL:
            return not_(self)
        return bvnot(self)

    def __neg__(self) -> "Expr":
        return neg(self)

    # Unsigned comparisons via Python operators (see module docstring).

    def __lt__(self, other) -> "Expr":
        return ult(self, self._coerce(other))

    def __le__(self, other) -> "Expr":
        return ule(self, self._coerce(other))

    def __gt__(self, other) -> "Expr":
        return ult(self._coerce(other), self)

    def __ge__(self, other) -> "Expr":
        return ule(self._coerce(other), self)

    # Signed comparisons and symbolic (in)equality as methods.

    def slt(self, other) -> "Expr":
        return slt(self, self._coerce(other))

    def sle(self, other) -> "Expr":
        return sle(self, self._coerce(other))

    def sgt(self, other) -> "Expr":
        return slt(self._coerce(other), self)

    def sge(self, other) -> "Expr":
        return sle(self._coerce(other), self)

    def eq(self, other) -> "Expr":
        return eq(self, self._coerce(other))

    def ne(self, other) -> "Expr":
        return not_(eq(self, self._coerce(other)))


# -- leaf constructors --------------------------------------------------------

TRUE = Expr(OP_CONST, BOOL, params=(1,))
FALSE = Expr(OP_CONST, BOOL, params=(0,))


def bool_const(value: bool) -> Expr:
    return TRUE if value else FALSE


def bv_const(value: int, width: int) -> Expr:
    """A bitvector constant; ``value`` is wrapped into the unsigned range."""
    sort = bitvec_sort(width)
    return Expr(OP_CONST, sort, params=(sort.wrap(value),))


def bv_var(name: str, width: int) -> Expr:
    """A bitvector variable. Variables are identified by (name, sort)."""
    return Expr(OP_VAR, bitvec_sort(width), params=(name,))


def bool_var(name: str) -> Expr:
    return Expr(OP_VAR, BOOL, params=(name,))


# -- concrete semantics (shared with the evaluator) ---------------------------


def fold_binary(op: str, a: int, b: int, sort: BitVecSort) -> int:
    """Concrete semantics of binary bitvector operators (unsigned in/out)."""
    if op == "add":
        return sort.wrap(a + b)
    if op == "sub":
        return sort.wrap(a - b)
    if op == "mul":
        return sort.wrap(a * b)
    if op == "udiv":
        # SMT-LIB semantics: division by zero yields all-ones.
        return sort.mask if b == 0 else a // b
    if op == "urem":
        return a if b == 0 else a % b
    if op == "bvand":
        return a & b
    if op == "bvor":
        return a | b
    if op == "bvxor":
        return a ^ b
    if op == "shl":
        return sort.wrap(a << b) if b < sort.width else 0
    if op == "lshr":
        return a >> b if b < sort.width else 0
    if op == "ashr":
        signed = sort.to_signed(a)
        shift = min(b, sort.width - 1)
        return sort.from_signed(signed >> shift)
    raise SortError(f"unknown binary bitvector operator {op}")


def fold_comparison(op: str, a: int, b: int, sort: BitVecSort) -> bool:
    """Concrete semantics of comparison operators on unsigned values."""
    if op == "eq":
        return a == b
    if op == "ult":
        return a < b
    if op == "ule":
        return a <= b
    if op == "slt":
        return sort.to_signed(a) < sort.to_signed(b)
    if op == "sle":
        return sort.to_signed(a) <= sort.to_signed(b)
    raise SortError(f"unknown comparison operator {op}")


# -- bitvector constructors ----------------------------------------------------


def _check_bv_pair(a: Expr, b: Expr) -> BitVecSort:
    if not isinstance(a.sort, BitVecSort) or a.sort != b.sort:
        raise SortError(f"operands must share a bitvector sort, got {a.sort} and {b.sort}")
    return a.sort


def _binary(op: str, a: Expr, b: Expr) -> Expr:
    sort = _check_bv_pair(a, b)
    if a.is_const and b.is_const:
        return bv_const(fold_binary(op, a.value, b.value, sort), sort.width)
    # Canonical order: constants on the right for commutative operators, so
    # that propagation rules only need to match one shape.
    if op in _COMMUTATIVE_OPS and a.is_const and not b.is_const:
        a, b = b, a
    return Expr(op, sort, args=(a, b))


def add(a: Expr, b: Expr) -> Expr:
    sort = _check_bv_pair(a, b)
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    # Re-associate (x + c1) + c2 into x + (c1 + c2).
    if b.is_const and a.op == "add" and a.args[1].is_const:
        folded = bv_const(fold_binary("add", a.args[1].value, b.value, sort), sort.width)
        return add(a.args[0], folded)
    return _binary("add", a, b)


def sub(a: Expr, b: Expr) -> Expr:
    if b.is_const and b.value == 0:
        return a
    if a == b:
        return bv_const(0, a.width)
    return _binary("sub", a, b)


def mul(a: Expr, b: Expr) -> Expr:
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, y.width)
            if x.value == 1:
                return y
    return _binary("mul", a, b)


def udiv(a: Expr, b: Expr) -> Expr:
    if b.is_const and b.value == 1:
        return a
    return _binary("udiv", a, b)


def urem(a: Expr, b: Expr) -> Expr:
    return _binary("urem", a, b)


def bvand(a: Expr, b: Expr) -> Expr:
    sort = _check_bv_pair(a, b)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return bv_const(0, sort.width)
            if x.value == sort.mask:
                return y
    if a == b:
        return a
    return _binary("bvand", a, b)


def bvor(a: Expr, b: Expr) -> Expr:
    sort = _check_bv_pair(a, b)
    for x, y in ((a, b), (b, a)):
        if x.is_const:
            if x.value == 0:
                return y
            if x.value == sort.mask:
                return bv_const(sort.mask, sort.width)
    if a == b:
        return a
    return _binary("bvor", a, b)


def bvxor(a: Expr, b: Expr) -> Expr:
    if a == b:
        return bv_const(0, a.width)
    for x, y in ((a, b), (b, a)):
        if x.is_const and x.value == 0:
            return y
    return _binary("bvxor", a, b)


def shl(a: Expr, b: Expr) -> Expr:
    if b.is_const and b.value == 0:
        return a
    return _binary("shl", a, b)


def lshr(a: Expr, b: Expr) -> Expr:
    if b.is_const and b.value == 0:
        return a
    return _binary("lshr", a, b)


def ashr(a: Expr, b: Expr) -> Expr:
    if b.is_const and b.value == 0:
        return a
    return _binary("ashr", a, b)


def neg(a: Expr) -> Expr:
    if a.is_const:
        return bv_const(-a.value, a.width)
    return Expr("neg", a.sort, args=(a,))


def bvnot(a: Expr) -> Expr:
    if a.is_const:
        return bv_const(~a.value, a.width)
    if a.op == "bvnot":
        return a.args[0]
    return Expr("bvnot", a.sort, args=(a,))


def zext(a: Expr, width: int) -> Expr:
    """Zero-extend ``a`` to ``width`` bits."""
    if not isinstance(a.sort, BitVecSort):
        raise SortError("zext applies to bitvectors")
    if width < a.width:
        raise SortError(f"cannot zero-extend {a.width}-bit value to {width} bits")
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(a.value, width)
    return Expr("zext", bitvec_sort(width), args=(a,), params=(width,))


def sext(a: Expr, width: int) -> Expr:
    """Sign-extend ``a`` to ``width`` bits."""
    if not isinstance(a.sort, BitVecSort):
        raise SortError("sext applies to bitvectors")
    if width < a.width:
        raise SortError(f"cannot sign-extend {a.width}-bit value to {width} bits")
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(bitvec_sort(width).from_signed(a.sort.to_signed(a.value)), width)
    return Expr("sext", bitvec_sort(width), args=(a,), params=(width,))


def extract(a: Expr, hi: int, lo: int) -> Expr:
    """Extract bits ``hi..lo`` (inclusive, zero-indexed from LSB).

    Rewrites extraction over ``concat``/``extract``/``zext`` structurally,
    which lets the solver's byte-splitting pass reduce wide-variable
    arithmetic to byte-level expressions.
    """
    if not isinstance(a.sort, BitVecSort):
        raise SortError("extract applies to bitvectors")
    if not (0 <= lo <= hi < a.width):
        raise SortError(f"invalid extract bounds [{hi}:{lo}] on width {a.width}")
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.is_const:
        return bv_const(a.value >> lo, width)
    if a.op == "concat":
        hi_part, lo_part = a.args
        low_width = lo_part.width
        if hi < low_width:
            return extract(lo_part, hi, lo)
        if lo >= low_width:
            return extract(hi_part, hi - low_width, lo - low_width)
        return concat(extract(hi_part, hi - low_width, 0),
                      extract(lo_part, low_width - 1, lo))
    if a.op == "extract":
        inner_lo = a.params[1]
        return extract(a.args[0], inner_lo + hi, inner_lo + lo)
    if a.op == "zext":
        inner = a.args[0]
        if hi < inner.width:
            return extract(inner, hi, lo)
        if lo >= inner.width:
            return bv_const(0, width)
        return concat(bv_const(0, hi - inner.width + 1),
                      extract(inner, inner.width - 1, lo))
    return Expr("extract", bitvec_sort(width), args=(a,), params=(hi, lo))


def concat(hi: Expr, lo: Expr) -> Expr:
    """Concatenate two bitvectors; ``hi`` occupies the most significant bits."""
    if not isinstance(hi.sort, BitVecSort) or not isinstance(lo.sort, BitVecSort):
        raise SortError("concat applies to bitvectors")
    width = hi.width + lo.width
    if hi.is_const and lo.is_const:
        return bv_const((hi.value << lo.width) | lo.value, width)
    return Expr("concat", bitvec_sort(width), args=(hi, lo))


# -- comparisons ----------------------------------------------------------------


def _comparison(op: str, a: Expr, b: Expr) -> Expr:
    sort = _check_bv_pair(a, b)
    if a.is_const and b.is_const:
        return bool_const(fold_comparison(op, a.value, b.value, sort))
    if op in _COMMUTATIVE_OPS and a.is_const and not b.is_const:
        a, b = b, a
    return Expr(op, BOOL, args=(a, b))


def eq(a: Expr, b: Expr) -> Expr:
    if a.sort == BOOL and b.sort == BOOL:
        return iff(a, b)
    if a == b:
        return TRUE
    # Structural decomposition: equality of concatenations splits into
    # per-part equalities when the split points line up, turning wide
    # message-field comparisons into byte-level constraints.
    if a.op == "concat" and b.op == "concat":
        if a.args[1].width == b.args[1].width:
            return and_(eq(a.args[0], b.args[0]), eq(a.args[1], b.args[1]))
    if a.op == "concat" and b.is_const:
        low_width = a.args[1].width
        return and_(eq(a.args[0], bv_const(b.value >> low_width,
                                           a.args[0].width)),
                    eq(a.args[1], bv_const(b.value, low_width)))
    if b.op == "concat" and a.is_const:
        return eq(b, a)
    return _comparison("eq", a, b)


def ne(a: Expr, b: Expr) -> Expr:
    return not_(eq(a, b))


def ult(a: Expr, b: Expr) -> Expr:
    if a == b:
        return FALSE
    if b.is_const and b.value == 0:
        return FALSE
    return _comparison("ult", a, b)


def ule(a: Expr, b: Expr) -> Expr:
    if a == b:
        return TRUE
    if a.is_const and a.value == 0:
        return TRUE
    return _comparison("ule", a, b)


def ugt(a: Expr, b: Expr) -> Expr:
    return ult(b, a)


def uge(a: Expr, b: Expr) -> Expr:
    return ule(b, a)


def slt(a: Expr, b: Expr) -> Expr:
    if a == b:
        return FALSE
    return _comparison("slt", a, b)


def sle(a: Expr, b: Expr) -> Expr:
    if a == b:
        return TRUE
    return _comparison("sle", a, b)


def sgt(a: Expr, b: Expr) -> Expr:
    return slt(b, a)


def sge(a: Expr, b: Expr) -> Expr:
    return sle(b, a)


# -- boolean connectives ----------------------------------------------------------


def _check_bool(a: Expr) -> None:
    if a.sort != BOOL:
        raise SortError(f"boolean operand required, got sort {a.sort}")


def not_(a: Expr) -> Expr:
    _check_bool(a)
    if a.is_true:
        return FALSE
    if a.is_false:
        return TRUE
    if a.op == "not":
        return a.args[0]
    return Expr("not", BOOL, args=(a,))


def and_(*operands: Expr) -> Expr:
    """N-ary conjunction with constant shortcuts and flattening."""
    flat: list[Expr] = []
    for operand in operands:
        _check_bool(operand)
        if operand.is_false:
            return FALSE
        if operand.is_true:
            continue
        if operand.op == "and":
            flat.extend(operand.args)
        else:
            flat.append(operand)
    # Deduplicate while preserving order.
    seen: set[Expr] = set()
    unique = [e for e in flat if not (e in seen or seen.add(e))]
    if not unique:
        return TRUE
    if len(unique) == 1:
        return unique[0]
    return Expr("and", BOOL, args=tuple(unique))


def or_(*operands: Expr) -> Expr:
    """N-ary disjunction with constant shortcuts and flattening."""
    flat: list[Expr] = []
    for operand in operands:
        _check_bool(operand)
        if operand.is_true:
            return TRUE
        if operand.is_false:
            continue
        if operand.op == "or":
            flat.extend(operand.args)
        else:
            flat.append(operand)
    seen: set[Expr] = set()
    unique = [e for e in flat if not (e in seen or seen.add(e))]
    if not unique:
        return FALSE
    if len(unique) == 1:
        return unique[0]
    return Expr("or", BOOL, args=tuple(unique))


def implies(a: Expr, b: Expr) -> Expr:
    return or_(not_(a), b)


def iff(a: Expr, b: Expr) -> Expr:
    _check_bool(a)
    _check_bool(b)
    if a == b:
        return TRUE
    if a.is_true:
        return b
    if b.is_true:
        return a
    if a.is_false:
        return not_(b)
    if b.is_false:
        return not_(a)
    return and_(implies(a, b), implies(b, a))


def ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr:
    _check_bool(cond)
    if then.sort != otherwise.sort:
        raise SortError(f"ite branches must share a sort: {then.sort} vs {otherwise.sort}")
    if cond.is_true:
        return then
    if cond.is_false:
        return otherwise
    if then == otherwise:
        return then
    return Expr("ite", then.sort, args=(cond, then, otherwise))


def all_of(operands: Iterable[Expr]) -> Expr:
    return and_(*operands)


def any_of(operands: Iterable[Expr]) -> Expr:
    return or_(*operands)


def bytes_to_exprs(data: bytes | Sequence[int]) -> list[Expr]:
    """Lift concrete bytes into a list of 8-bit constant expressions."""
    return [bv_const(b, 8) for b in data]
