"""Canonical query cache shared across solver clients.

The Achilles pipeline re-poses near-identical satisfiability queries at
every appended server constraint (`pathS ∧ pathC_i`, `pathS ∧ ⋀ negations`)
and across both analysis phases. :class:`QueryCache` memoizes answers keyed
on the *canonical* frozen constraint set
(:func:`repro.solver.simplify.canonical_constraint_set`), so syntactic
variants of the same query — reordered conjuncts, commuted operands,
negated-vs-flipped comparisons, re-derived duplicates — all hit the same
entry. One cache instance is intended to be shared by every
:class:`~repro.symex.engine.Engine` of a run (phase 1 client extraction and
phase 2 server search), which is how cross-phase reuse happens.

Feasibility answers and models are cached separately: a feasibility probe
stores only the boolean, a model query stores the model and implies the
feasibility bit. Hit/miss counters live in :class:`CacheStats` and are
surfaced through ``SolverStats`` and ``AchillesReport``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import trace as obs_trace
from repro.solver.ast import FALSE, Expr
from repro.solver.simplify import canonical_constraint_set

#: Cache key: the canonical frozen constraint set.
QueryKey = frozenset

#: Raw-tuple key-memo bound; ~400k keeps a full FSP run memoized with
#: room to spare while capping memory on long-lived shared caches.
_KEY_MEMO_LIMIT = 400_000


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`QueryCache`.

    ``disk_hits`` is the subset of ``hits`` answered by entries that a
    :class:`~repro.solver.diskcache.DiskCacheStore` loaded from a
    previous run; ``salvaged_records``/``dropped_records`` describe
    what that load recovered from (respectively refused out of)
    damaged segment files. All three stay 0 for a purely in-memory
    cache.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    salvaged_records: int = 0
    dropped_records: int = 0

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.queries
        return self.hits / total if total else 0.0


@dataclass
class QueryCache:
    """Satisfiability answers keyed on canonical frozen constraint sets."""

    stats: CacheStats = field(default_factory=CacheStats)
    _feasible: dict[QueryKey, bool] = field(default_factory=dict)
    _models: dict[QueryKey, dict[Expr, int] | None] = field(default_factory=dict)
    _key_memo: dict[tuple[Expr, ...], QueryKey] = field(default_factory=dict)
    # Disk persistence (both None/empty for a plain in-memory cache):
    # the attached DiskCacheStore receiving new answers, and the keys
    # whose answers were loaded from disk (feeds ``stats.disk_hits``).
    _store: object | None = None
    _disk_keys: set = field(default_factory=set)

    def key(self, constraints: Iterable[Expr]) -> QueryKey:
        """Canonical cache key for a constraint conjunction.

        Keys are memoized on the raw constraint tuple: the exploration
        engine re-poses the same tuples constantly (path replays, the
        per-predicate probe loops), and tuple hashing over interned
        expressions is far cheaper than re-canonicalizing every conjunct.
        Exactness comes from hash-consing — tuple equality is per-element
        identity, so distinct-but-equal ASTs cannot alias.

        The memo holds strong references to the raw tuples (which pin
        their expressions in the weak intern arena), so it is bounded:
        past :data:`_KEY_MEMO_LIMIT` entries it is dropped wholesale and
        re-warms — the lookup traffic is ~97% repeats, so recovery is
        fast and memory stays flat on arbitrarily long runs.
        """
        if not isinstance(constraints, tuple):
            constraints = tuple(constraints)
        cached = self._key_memo.get(constraints)
        if cached is None:
            if len(self._key_memo) >= _KEY_MEMO_LIMIT:
                self._key_memo.clear()
            tracer = obs_trace.active
            if tracer is None:
                cached = canonical_constraint_set(constraints)
            else:
                with tracer.span("solver.canonicalize",
                                 conjuncts=len(constraints)):
                    cached = canonical_constraint_set(constraints)
            self._key_memo[constraints] = cached
        return cached

    @staticmethod
    def is_trivially_unsat(key: QueryKey) -> bool:
        """True when canonicalization already proved the query unsat."""
        return FALSE in key

    # -- feasibility ---------------------------------------------------------

    def get_feasible(self, key: QueryKey) -> bool | None:
        """Cached feasibility for ``key``, or None on a miss (counted)."""
        cached = self._feasible.get(key)
        if cached is not None:
            self.stats.hits += 1
            if self._disk_keys and key in self._disk_keys:
                self.stats.disk_hits += 1
            return cached
        self.stats.misses += 1
        return None

    def put_feasible(self, key: QueryKey, feasible: bool) -> None:
        self._feasible[key] = feasible
        if self._store is not None:
            self._store.record_feasible(key, feasible)

    # -- models --------------------------------------------------------------

    def get_model(self, key: QueryKey) -> tuple[bool, dict[Expr, int] | None]:
        """Cached model lookup: ``(hit, model)``; the miss is counted.

        The stored model covers the variables of the query that *populated*
        the entry; a canonically-equal variant may mention variables that
        were simplified away there, so callers should default missing
        variables to 0 (unconstrained).
        """
        if key in self._models:
            self.stats.hits += 1
            if self._disk_keys and key in self._disk_keys:
                self.stats.disk_hits += 1
            return True, self._models[key]
        self.stats.misses += 1
        return False, None

    def peek_model(self, key: QueryKey) -> dict[Expr, int] | None:
        """Stored model for ``key`` without touching the hit/miss counters.

        For bookkeeping re-reads of an entry the caller just stored (e.g.
        batch followers completing their leader's model); returns None
        both for unsat entries and absent keys.
        """
        return self._models.get(key)

    def put_model(self, key: QueryKey, model: dict[Expr, int] | None) -> None:
        self._models[key] = model
        self._feasible[key] = model is not None
        if self._store is not None:
            self._store.record_model(key, model)

    # -- cross-process shipping ----------------------------------------------

    def snapshot(self) -> dict[QueryKey, bool]:
        """Read-only copy of the feasibility map, for shipping to workers.

        Only the boolean feasibility entries travel: SAT/UNSAT is a pure
        function of the canonical query, so pre-loading another cache
        with these answers can never change what that cache's owner
        computes — it only saves the re-solve. Models are deliberately
        excluded: a model stored for a canonically-equal *variant* could
        otherwise change which witness a remote worker reports (the same
        reason the solver service never serves models from a canonical
        cache). The canonical keys are frozensets of hash-consed
        expressions, which re-intern on unpickle, so a snapshot crosses
        process and host boundaries intact.
        """
        return dict(self._feasible)

    def absorb(self, snapshot: dict[QueryKey, bool]) -> int:
        """Pre-load feasibility answers from another cache's snapshot.

        Locally-computed entries win on conflict (they are equal anyway —
        both are pure functions of the key); hit/miss counters are not
        touched, so absorbed answers surface as ordinary hits when the
        owner first poses the query. Returns the number of new entries.
        """
        before = len(self._feasible)
        for key, feasible in snapshot.items():
            self._feasible.setdefault(key, feasible)
        return len(self._feasible) - before

    # -- disk persistence ----------------------------------------------------
    #
    # The durable layer lives in :mod:`repro.solver.diskcache`; this
    # cache only knows the narrow contract: an attached store receives
    # every *new* answer (see ``put_feasible``/``put_model``), preloaded
    # answers never overwrite locally computed ones, and disk-loaded
    # keys are remembered so warm hits can be told apart from same-run
    # hits in the stats.

    def attach_store(self, store) -> None:
        """Forward every newly stored answer to ``store`` from now on."""
        self._store = store

    def preload_feasible(self, key: QueryKey, feasible: bool) -> bool:
        """Load one disk feasibility record; local entries win. Returns
        True when the key was new."""
        fresh = key not in self._feasible
        if fresh:
            self._feasible[key] = feasible
        self._disk_keys.add(key)
        return fresh

    def preload_model(self, key: QueryKey,
                      model: dict[Expr, int] | None) -> bool:
        """Load one disk model record; local entries win. Returns True
        when the key was new to the model map."""
        fresh = key not in self._models
        if fresh:
            self._models[key] = model
        self._feasible.setdefault(key, model is not None)
        self._disk_keys.add(key)
        return fresh

    def is_disk_loaded(self, key: QueryKey) -> bool:
        """True when ``key``'s answer came from the attached disk store."""
        return key in self._disk_keys

    def flush_store(self):
        """Persist buffered answers (no-op without an attached store)."""
        if self._store is not None:
            return self._store.flush()
        return None

    # -- maintenance ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._feasible) + len(self._models)

    def clear(self) -> None:
        """Drop all cached answers (counters are kept)."""
        self._feasible.clear()
        self._models.clear()
        self._key_memo.clear()
        self._disk_keys.clear()
