"""Durable, corruption-tolerant disk layer under the canonical query cache.

:class:`DiskCacheStore` persists the :class:`~repro.solver.cache.QueryCache`
across runs (and hosts): feasibility and model answers are keyed on the
canonical frozen constraint set, whose structural sha256 fingerprint
(:func:`repro.solver.simplify.structural_fingerprint`) is a pure function
of the expression DAG — identical in every process — so a record written
by one run is addressable by any later one.

The on-disk format is a directory of immutable *segment* files. Each
segment starts with an 8-byte magic + format-version header and then
frames records as ``u32 length | u32 crc32(payload) | payload``; the
payload pickles ``(kind, key_fingerprint, constraints, value)``. A
segment is only ever produced whole — records buffer in memory and
:meth:`DiskCacheStore.flush` writes them to a temp file, fsyncs, and
atomically renames — so the store on disk is always a sequence of
atomic appends and two processes can never interleave within one file.

Corruption tolerance is the design center, not an afterthought. On load,
every segment is scanned frame by frame and the valid *prefix* is
salvaged: a truncated tail, a torn final write, or a flipped byte stops
the scan at the damage (the CRC catches it) and everything before it is
kept; an unreadable or version-mismatched header drops that one segment.
A salvaged record is only trusted if its stored key fingerprint matches
the fingerprint recomputed over the unpickled (re-interned) constraints —
defense in depth above the CRC. The outcome is always a (partially) cold
cache plus a :class:`LoadReport` and a warning, never a crash and never a
wrong answer.

Models are persisted alongside feasibility bits. That is sound for the
same reason the in-memory cache serves models across canonically-equal
variants within a run: the solver is deterministic, the canonical form is
process-stable, and callers default variables missing from a variant's
model to 0 — so a warm re-run of the same inputs reproduces the cold
run's witnesses byte for byte (the first query to populate a key is the
same query both times). The same framing helpers back the coordinator's
run journal (:mod:`repro.explore.checkpoint`).
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.log import get_logger, log_event
from repro.solver.cache import _KEY_MEMO_LIMIT, QueryCache, QueryKey
from repro.solver.simplify import structural_fingerprint

#: Segment/journal header: magic, one format-version byte, newline.
_log = get_logger("solver.diskcache")

MAGIC = b"ACHSEG"
FORMAT_VERSION = 1
HEADER = MAGIC + bytes([FORMAT_VERSION]) + b"\n"
HEADER_SIZE = len(HEADER)

#: Frame header: payload length, crc32 of the payload.
_FRAME = struct.Struct("<II")
FRAME_HEADER_SIZE = _FRAME.size

#: Segment-count threshold past which :meth:`DiskCacheStore.flush`
#: triggers an automatic compaction, bounding directory growth.
AUTO_COMPACT_SEGMENTS = 64

#: Domain separation for key fingerprints, versioned with the format.
_KEY_SALT = b"achilles-query-key-v1:"

_FEASIBLE = "f"
_MODEL = "m"


def key_fingerprint(key: QueryKey) -> bytes:
    """Content address of a canonical query key.

    Order-independent (the key is a frozenset): the sorted per-conjunct
    structural fingerprints are folded into one sha256. Stable across
    processes and hosts because :func:`structural_fingerprint` is.
    """
    digest = hashlib.sha256(_KEY_SALT)
    for conjunct_digest in sorted(structural_fingerprint(c) for c in key):
        digest.update(conjunct_digest)
    return digest.digest()


# -- framing (shared with the run journal) ------------------------------------


def frame_record(payload: bytes) -> bytes:
    """One framed record: length, crc32, payload."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class SegmentScan:
    """Result of scanning one segment (or journal) file's bytes.

    ``valid_end`` is the offset just past the last intact frame — what a
    resuming writer truncates to before appending. ``damaged`` is True
    whenever anything after that offset had to be abandoned.
    """

    payloads: list[bytes] = field(default_factory=list)
    spans: list[tuple[int, int]] = field(default_factory=list)
    valid_end: int = 0
    damaged: bool = False
    reason: str | None = None


def scan_frames(data: bytes) -> SegmentScan:
    """Salvage the valid prefix of a framed file.

    Stops at the first bad frame (short header, length past EOF, CRC
    mismatch) — the length field of a corrupted frame cannot be trusted,
    so nothing after the damage can be re-framed reliably. A bad or
    version-mismatched file header salvages nothing.
    """
    scan = SegmentScan()
    if len(data) < HEADER_SIZE or data[:len(MAGIC)] != MAGIC:
        scan.damaged = True
        scan.reason = "unrecognized header"
        return scan
    if data[:HEADER_SIZE] != HEADER:
        scan.damaged = True
        scan.reason = (f"format version {data[len(MAGIC)]} "
                       f"(this build reads {FORMAT_VERSION})")
        return scan
    offset = HEADER_SIZE
    scan.valid_end = offset
    total = len(data)
    while offset < total:
        if offset + FRAME_HEADER_SIZE > total:
            scan.damaged = True
            scan.reason = "truncated frame header"
            return scan
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + FRAME_HEADER_SIZE
        end = start + length
        if end > total:
            scan.damaged = True
            scan.reason = "torn final record"
            return scan
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.damaged = True
            scan.reason = "checksum mismatch"
            return scan
        scan.payloads.append(payload)
        scan.spans.append((offset, FRAME_HEADER_SIZE + length))
        offset = end
        scan.valid_end = offset
    return scan


def record_spans(path: str | Path) -> list[tuple[int, int]]:
    """(offset, byte length) of every intact frame in ``path`` — the
    coordinates the deterministic disk faults aim at."""
    return scan_frames(Path(path).read_bytes()).spans


def _fsync_directory(directory: Path) -> None:
    """Make a rename durable; best-effort where dirs can't be opened."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_segment(path: Path, payloads: list[bytes]) -> None:
    """Write a whole segment atomically: temp file, fsync, rename."""
    tmp = path.with_name(f".tmp-{path.name}.{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(HEADER)
        for payload in payloads:
            handle.write(frame_record(payload))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)


# -- the store ----------------------------------------------------------------


@dataclass
class LoadReport:
    """What one load (or verify) pass found on disk.

    ``loaded_records`` came from clean segments, ``salvaged_records``
    are the valid-prefix records recovered from damaged ones, and
    ``dropped_records`` counts what could not be trusted: the damaged
    frame itself, any record whose fingerprint failed to re-verify, and
    one opaque entry per segment whose header was unreadable (its
    record count is unknowable). ``truncated`` is set when loading
    stopped at the in-memory cache bound.
    """

    segments_scanned: int = 0
    segments_damaged: int = 0
    loaded_records: int = 0
    salvaged_records: int = 0
    dropped_records: int = 0
    truncated: bool = False
    warnings: list[str] = field(default_factory=list)

    @property
    def records_applied(self) -> int:
        return self.loaded_records + self.salvaged_records


class DiskCacheStore:
    """Disk persistence for one :class:`QueryCache`.

    Attach with :meth:`load_into`; afterwards every *new* answer the
    cache stores is buffered here and :meth:`flush` (called by the run
    orchestration at checkpoint and phase boundaries) writes one atomic
    segment. Already-persisted keys are never rewritten, so repeated
    warm runs add nothing and segment rotation stays bounded by the
    auto-compaction threshold.
    """

    def __init__(self, directory: str | Path,
                 max_load_entries: int = _KEY_MEMO_LIMIT,
                 auto_compact_segments: int = AUTO_COMPACT_SEGMENTS):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_load_entries = max_load_entries
        self.auto_compact_segments = auto_compact_segments
        self.last_load: LoadReport | None = None
        # (kind, key, value) pending the next flush; keys dedupe so one
        # answer is recorded at most once per kind across the store's
        # lifetime (loaded keys count as recorded).
        self._buffer: list[tuple[str, QueryKey, object]] = []
        self._persisted: set[QueryKey] = set()
        self._model_persisted: set[QueryKey] = set()

    # -- segments ------------------------------------------------------------

    def segment_paths(self) -> list[Path]:
        """Segments in load order (lexicographic == creation order)."""
        return sorted(self.directory.glob("seg-*.qc"))

    def _next_segment_path(self) -> Path:
        indices = [0]
        for path in self.segment_paths():
            try:
                indices.append(int(path.name.split("-")[1]))
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
        return self.directory / (
            f"seg-{max(indices) + 1:08d}-{os.getpid():06d}.qc")

    # -- recording -----------------------------------------------------------

    def record_feasible(self, key: QueryKey, feasible: bool) -> None:
        if key in self._persisted:
            return
        self._persisted.add(key)
        self._buffer.append((_FEASIBLE, key, feasible))

    def record_model(self, key: QueryKey, model) -> None:
        if key in self._model_persisted:
            return
        self._model_persisted.add(key)
        self._persisted.add(key)
        self._buffer.append((_MODEL, key, model))

    def flush(self) -> Path | None:
        """Write buffered records as one atomic segment; None when empty."""
        if not self._buffer:
            return None
        payloads = [self._encode(kind, key, value)
                    for kind, key, value in self._buffer]
        path = self._next_segment_path()
        write_segment(path, payloads)
        self._buffer.clear()
        if len(self.segment_paths()) > self.auto_compact_segments:
            self.compact()
        return path

    @staticmethod
    def _encode(kind: str, key: QueryKey, value) -> bytes:
        # Conjuncts are serialized in fingerprint order so identical
        # caches produce identical segment bytes on any host.
        constraints = tuple(sorted(key, key=structural_fingerprint))
        return pickle.dumps((kind, key_fingerprint(key), constraints, value),
                            protocol=pickle.HIGHEST_PROTOCOL)

    # -- loading -------------------------------------------------------------

    def load_into(self, cache: QueryCache) -> LoadReport:
        """Replay every segment into ``cache`` and attach this store.

        Locally absent entries only (an entry already in the cache
        wins), capped at ``max_load_entries`` total cache entries so a
        long-lived cache dir cannot blow up a fresh process. Loaded keys
        are marked disk-loaded on the cache, which is what the engine's
        ``disk_hits`` counter is built on. Never raises on bad data —
        see the module docstring for the salvage rules.
        """
        report = self._replay(cache)
        cache.attach_store(self)
        cache.stats.salvaged_records += report.salvaged_records
        cache.stats.dropped_records += report.dropped_records
        self.last_load = report
        for message in report.warnings:
            log_event(_log, logging.WARNING, "diskcache.salvage",
                      detail=message)
        return report

    def verify(self) -> LoadReport:
        """Integrity pass: full load into a throwaway cache, no attach."""
        return self._replay(QueryCache())

    def _replay(self, cache: QueryCache) -> LoadReport:
        report = LoadReport()
        for path in self.segment_paths():
            report.segments_scanned += 1
            try:
                data = path.read_bytes()
            except OSError as exc:  # pragma: no cover - races with cleanup
                report.segments_damaged += 1
                report.dropped_records += 1
                report.warnings.append(
                    f"query cache segment {path.name}: unreadable ({exc})")
                continue
            scan = scan_frames(data)
            segment_bad = scan.damaged
            if segment_bad:
                report.segments_damaged += 1
                # The damage itself: one opaque drop for an unreadable
                # header (record count unknowable), one for the frame
                # the scan stopped at otherwise.
                report.dropped_records += 1
            applied = 0
            for payload in scan.payloads:
                if len(cache) >= self.max_load_entries:
                    report.truncated = True
                    break
                outcome = self._apply(cache, payload)
                if outcome is None:
                    segment_bad = True
                    report.dropped_records += 1
                    continue
                applied += 1
                if scan.damaged:
                    report.salvaged_records += 1
                else:
                    report.loaded_records += 1
            if scan.damaged:
                report.warnings.append(
                    f"query cache segment {path.name}: {scan.reason}; "
                    f"salvaged {applied} record(s), rest dropped")
            if report.truncated:
                report.warnings.append(
                    f"query cache load stopped at {self.max_load_entries} "
                    "entries (in-memory bound); compact the cache dir to "
                    "keep the hottest answers")
                break
        return report

    def _apply(self, cache: QueryCache, payload: bytes):
        """Decode + verify one record into ``cache``; None when untrusted."""
        try:
            kind, fingerprint, constraints, value = pickle.loads(payload)
            key = frozenset(constraints)
        except Exception:
            return None
        if kind not in (_FEASIBLE, _MODEL):
            return None
        if key_fingerprint(key) != fingerprint:
            return None
        self._persisted.add(key)
        if kind == _MODEL:
            self._model_persisted.add(key)
            cache.preload_model(key, value)
        else:
            cache.preload_feasible(key, bool(value))
        return key

    # -- maintenance ---------------------------------------------------------

    def compact(self) -> tuple[int, int]:
        """Rewrite every trusted record into one fresh segment.

        Deduplicates across segments (a model record subsumes the same
        key's feasibility record) and drops anything damaged, bounding
        the directory at the in-memory entry limit. Returns (segments
        before, records kept). Atomic: the replacement segment lands via
        rename before the old segments are unlinked, so a crash mid-way
        leaves at worst duplicate records, never lost ones.
        """
        old = self.segment_paths()
        keeper = QueryCache()
        self._replay(keeper)
        payloads = []
        for key, model in keeper._models.items():
            payloads.append(self._encode(_MODEL, key, model))
        for key, feasible in keeper._feasible.items():
            if key not in keeper._models:
                payloads.append(self._encode(_FEASIBLE, key, feasible))
        path = self._next_segment_path()
        write_segment(path, payloads)
        for stale in old:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - races with cleanup
                pass
        _fsync_directory(self.directory)
        return len(old), len(payloads)

    def clear(self) -> int:
        """Delete every segment; returns how many were removed."""
        removed = 0
        for path in self.segment_paths():
            path.unlink()
            removed += 1
        _fsync_directory(self.directory)
        self._buffer.clear()
        self._persisted.clear()
        self._model_persisted.clear()
        return removed

    def stats(self) -> dict:
        """Directory summary for the ``repro cache stats`` subcommand."""
        segments = self.segment_paths()
        report = self.verify()
        return {
            "directory": str(self.directory),
            "segments": len(segments),
            "bytes": sum(path.stat().st_size for path in segments),
            "records": report.records_applied,
            "salvaged_records": report.salvaged_records,
            "dropped_records": report.dropped_records,
            "segments_damaged": report.segments_damaged,
        }
