"""Model enumeration and counting over small finite spaces.

SMT solvers are poor at enumerating all satisfying assignments (the paper
makes this point in §6.2 when discussing why classic symbolic execution
cannot cheaply list Trojan messages). The evaluation benchmarks nevertheless
need exact counts over *bounded* message spaces, so this module provides a
propagation-pruned exhaustive enumerator for that purpose.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SolverError
from repro.solver.ast import Expr
from repro.solver.evalmodel import all_hold
from repro.solver.interval import Interval
from repro.solver.propagate import initial_domains, propagate
from repro.solver.walk import collect_vars_all

_DEFAULT_LIMIT = 1_000_000


def iter_models(constraints: Iterable[Expr], variables: Sequence[Expr],
                limit: int = _DEFAULT_LIMIT) -> Iterator[dict[Expr, int]]:
    """Yield every assignment of ``variables`` satisfying ``constraints``.

    Every variable occurring in the constraints must be listed in
    ``variables`` — otherwise counts would be ambiguous (free inner
    variables would make each yielded assignment a family, not a model).

    Args:
        constraints: boolean expressions.
        variables: the enumeration space; order fixes the search order.
        limit: safety valve on the number of *yielded* models.
    """
    constraint_list = list(constraints)
    var_list = list(variables)
    missing = collect_vars_all(constraint_list) - set(var_list)
    if missing:
        names = ", ".join(sorted(v.params[0] for v in missing))
        raise SolverError(f"iter_models requires all constraint variables "
                          f"to be enumerated; missing: {names}")

    domains = initial_domains(constraint_list)
    for var in var_list:
        domains.setdefault(var, _full_domain(var))

    yielded = 0
    for model in _enumerate(constraint_list, domains, var_list, 0):
        yield model
        yielded += 1
        if yielded >= limit:
            raise SolverError(f"model enumeration exceeded limit of {limit}")


def count_models(constraints: Iterable[Expr], variables: Sequence[Expr],
                 limit: int = _DEFAULT_LIMIT) -> int:
    """Exact number of satisfying assignments of ``variables``."""
    return sum(1 for _ in iter_models(constraints, variables, limit))


def _full_domain(var: Expr) -> Interval:
    from repro.solver.sorts import BOOL

    if var.sort == BOOL:
        return Interval(0, 1)
    return Interval(0, var.sort.mask)


def _enumerate(constraints: list[Expr], domains: dict[Expr, Interval],
               variables: list[Expr], index: int) -> Iterator[dict[Expr, int]]:
    narrowed = propagate(constraints, domains)
    if narrowed is None:
        return
    if index == len(variables):
        model = {var: narrowed.get(var, Interval(0, 0)).lo for var in variables}
        if all_hold(constraints, model):
            yield model
        return
    var = variables[index]
    domain = narrowed.get(var, _full_domain(var))
    for value in domain:
        trial = dict(narrowed)
        trial[var] = Interval(value, value)
        yield from _enumerate(constraints, trial, variables, index + 1)
