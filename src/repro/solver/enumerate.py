"""Model enumeration and counting over small finite spaces.

SMT solvers are poor at enumerating all satisfying assignments (the paper
makes this point in §6.2 when discussing why classic symbolic execution
cannot cheaply list Trojan messages). The evaluation benchmarks nevertheless
need exact counts over *bounded* message spaces, so this module provides a
propagation-pruned exhaustive enumerator for that purpose.

The enumerator shares the incremental machinery of
:mod:`repro.solver.propagate`: one :class:`TrailDomains` carries the
domains down the enumeration tree, each trial value re-propagates only the
constraints watching the pinned variable (:func:`propagate_delta`), and
backtracking undoes the trial's domain writes in O(changes) — the previous
implementation cloned the full domain dict at every node.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.errors import SolverError
from repro.solver.ast import Expr
from repro.solver.evalmodel import all_hold
from repro.solver.interval import Interval
from repro.solver.propagate import (
    TrailDomains,
    VarIndex,
    build_var_index,
    default_pop_budget,
    initial_domains,
    propagate_delta,
)
from repro.solver.walk import collect_vars_all

_DEFAULT_LIMIT = 1_000_000


def iter_models(constraints: Iterable[Expr], variables: Sequence[Expr],
                limit: int = _DEFAULT_LIMIT) -> Iterator[dict[Expr, int]]:
    """Yield every assignment of ``variables`` satisfying ``constraints``.

    Every variable occurring in the constraints must be listed in
    ``variables`` — otherwise counts would be ambiguous (free inner
    variables would make each yielded assignment a family, not a model).

    Args:
        constraints: boolean expressions.
        variables: the enumeration space; order fixes the search order.
        limit: safety valve on the number of *yielded* models. The error
            is raised only when a model beyond the limit actually exists;
            a space holding exactly ``limit`` models enumerates cleanly.
    """
    constraint_list = list(constraints)
    var_list = list(variables)
    missing = collect_vars_all(constraint_list) - set(var_list)
    if missing:
        names = ", ".join(sorted(v.params[0] for v in missing))
        raise SolverError(f"iter_models requires all constraint variables "
                          f"to be enumerated; missing: {names}")

    domains = TrailDomains(initial_domains(constraint_list))
    for var in var_list:
        if var not in domains:
            domains[var] = _full_domain(var)
    var_index = build_var_index(constraint_list)
    budget = default_pop_budget(len(constraint_list))

    if not propagate_delta(domains, var_index, constraint_list, budget):
        return

    yielded = 0
    for model in _enumerate(constraint_list, domains, var_index, var_list,
                            0, budget):
        # Probe-before-raise: the limit trips only when a (limit+1)-th
        # model is actually produced, not merely when the limit-th one was.
        if yielded >= limit:
            raise SolverError(f"model enumeration exceeded limit of {limit}")
        yield model
        yielded += 1


def count_models(constraints: Iterable[Expr], variables: Sequence[Expr],
                 limit: int = _DEFAULT_LIMIT) -> int:
    """Exact number of satisfying assignments of ``variables``."""
    return sum(1 for _ in iter_models(constraints, variables, limit))


def _full_domain(var: Expr) -> Interval:
    from repro.solver.sorts import BOOL

    if var.sort == BOOL:
        return Interval(0, 1)
    return Interval(0, var.sort.mask)


def _enumerate(constraints: list[Expr], domains: TrailDomains,
               var_index: VarIndex, variables: list[Expr], index: int,
               budget: int) -> Iterator[dict[Expr, int]]:
    """Depth-first enumeration; ``domains`` is already at a fixpoint.

    Pinning a trial value re-propagates only the constraints watching the
    pinned variable; the trial's writes are undone through the trail when
    the subtree is exhausted, restoring the parent fixpoint exactly.
    """
    if index == len(variables):
        model = {var: domains.get(var, Interval(0, 0)).lo for var in variables}
        if all_hold(constraints, model):
            yield model
        return
    var = variables[index]
    domain = domains.get(var, _full_domain(var))
    watchers = var_index.get(var, ())
    for value in domain:
        mark = domains.mark()
        domains[var] = Interval(value, value)
        if propagate_delta(domains, var_index, watchers, budget):
            yield from _enumerate(constraints, domains, var_index, variables,
                                  index + 1, budget)
        domains.undo_to(mark)
