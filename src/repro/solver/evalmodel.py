"""Concrete evaluation of expressions under a variable assignment (a model).

The evaluator is the ground truth for the solver: search results are always
verified by evaluating every constraint under the candidate model, so any
unsoundness in interval propagation would surface as a verification failure
rather than a wrong answer.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SolverError
from repro.solver.ast import Expr, fold_binary, fold_comparison
from repro.solver.sorts import BOOL, BitVecSort

Model = Mapping[Expr, int]


def evaluate(expr: Expr, model: Model, cache: dict[Expr, int] | None = None) -> int:
    """Evaluate ``expr`` to an unsigned int (bools evaluate to 0/1).

    Raises:
        SolverError: if a variable in ``expr`` is missing from ``model``.
    """
    if cache is None:
        cache = {}
    return _eval(expr, model, cache)


def _eval(expr: Expr, model: Model, cache: dict[Expr, int]) -> int:
    hit = cache.get(expr)
    if hit is not None:
        return hit
    op = expr.op
    if op == "const":
        result = expr.params[0]
    elif op == "var":
        try:
            result = model[expr]
        except KeyError:
            raise SolverError(f"model has no value for variable {expr.params[0]}") from None
    elif op in ("add", "sub", "mul", "udiv", "urem", "bvand", "bvor", "bvxor",
                "shl", "lshr", "ashr"):
        a = _eval(expr.args[0], model, cache)
        b = _eval(expr.args[1], model, cache)
        result = fold_binary(op, a, b, expr.sort)
    elif op in ("eq", "ult", "ule", "slt", "sle"):
        a = _eval(expr.args[0], model, cache)
        b = _eval(expr.args[1], model, cache)
        result = int(fold_comparison(op, a, b, expr.args[0].sort))
    elif op == "and":
        result = 1
        for arg in expr.args:
            if not _eval(arg, model, cache):
                result = 0
                break
    elif op == "or":
        result = 0
        for arg in expr.args:
            if _eval(arg, model, cache):
                result = 1
                break
    elif op == "not":
        result = 1 - _eval(expr.args[0], model, cache)
    elif op == "neg":
        result = expr.sort.wrap(-_eval(expr.args[0], model, cache))
    elif op == "bvnot":
        result = expr.sort.wrap(~_eval(expr.args[0], model, cache))
    elif op == "zext":
        result = _eval(expr.args[0], model, cache)
    elif op == "sext":
        inner = expr.args[0]
        result = expr.sort.from_signed(inner.sort.to_signed(_eval(inner, model, cache)))
    elif op == "extract":
        hi, lo = expr.params
        result = (_eval(expr.args[0], model, cache) >> lo) & ((1 << (hi - lo + 1)) - 1)
    elif op == "concat":
        hi = _eval(expr.args[0], model, cache)
        lo = _eval(expr.args[1], model, cache)
        result = (hi << expr.args[1].sort.width) | lo
    elif op == "ite":
        cond = _eval(expr.args[0], model, cache)
        result = _eval(expr.args[1] if cond else expr.args[2], model, cache)
    else:
        raise SolverError(f"cannot evaluate unknown operator {op}")
    cache[expr] = result
    return result


def holds(expr: Expr, model: Model, cache: dict[Expr, int] | None = None) -> bool:
    """True iff the boolean ``expr`` evaluates to true under ``model``."""
    if expr.sort != BOOL:
        raise SolverError("holds() requires a boolean expression")
    return bool(evaluate(expr, model, cache))


def all_hold(constraints: Iterable[Expr], model: Model) -> bool:
    """True iff every constraint holds under ``model`` (shared eval cache)."""
    cache: dict[Expr, int] = {}
    return all(holds(c, model, cache) for c in constraints)
