"""Incremental solving: a push/pop assertion stack with propagation reuse.

The exploration hot path almost never poses independent queries: the
symbolic-execution engine extends a path condition by one conjunct per
branch, the Trojan search probes ``pc + probe`` shapes against the same
prefix, and replayed forks rebuild identical prefixes conjunct by conjunct.
:class:`IncrementalSolver` amortizes solving across that structure instead
of restarting :meth:`~repro.solver.solver.Solver.check` from scratch.

Every :meth:`IncrementalSolver.push` creates a *frame* holding the
conjunct's canonicalized form and extends the interval-propagation fixpoint
reached so far: re-propagation is seeded only with the new conjuncts and
driven by a dirty-variable worklist
(:func:`~repro.solver.propagate.propagate_delta`), so constraints untouched
by the new conjunct's variables are never revisited. All domain writes go
through a trail (:class:`~repro.solver.propagate.TrailDomains`), so
:meth:`IncrementalSolver.pop` restores the parent fixpoint in O(changes) —
no dict copies, no recomputation.

:meth:`IncrementalSolver.check_current` resolves most hot-path queries
without the full solver:

* a contradiction found during incremental propagation is a sound UNSAT
  proof (the same soundness argument the from-scratch solver relies on);
* a candidate model assembled from the propagated domain lower bounds —
  with ``var == expr`` definition frames evaluated concretely — is
  *verified* against the original constraints; when every constraint
  holds, that is a sound SAT answer with a complete model;
* everything else falls back to a from-scratch
  :meth:`~repro.solver.solver.Solver.check`, so answers always agree with
  the non-incremental solver by construction.

In the full pipeline the layers hit in this order: canonicalize → query
cache (:mod:`repro.solver.cache`, identical queries) → incremental frame
stack (this module, prefix-sharing queries) → interval propagation →
fallback backtracking search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.obs import trace as obs_trace
from repro.solver import interval as iv
from repro.solver.ast import Expr
from repro.solver.evalmodel import all_hold, evaluate
from repro.solver.propagate import (
    TrailDomains,
    VarIndex,
    default_pop_budget,
    propagate_delta,
)
from repro.solver.simplify import canonicalize
from repro.solver.solver import (
    SAT,
    UNSAT,
    SatResult,
    Solver,
    _as_definition,
    _flatten,
)
from repro.solver.sorts import BOOL
from repro.solver.walk import collect_vars


@dataclass
class _Frame:
    """One pushed conjunct: its canonical form plus undo bookkeeping.

    Attributes:
        raw: the conjunct exactly as pushed (interned, so prefix alignment
            compares at identity speed).
        conjuncts: canonicalized and flattened form actually propagated.
        mark: domain-trail position before this frame's writes.
        indexed: conjuncts registered in the variable index (empty when
            the frame was pushed onto an already-unsat stack).
        definitions: ``var == expr`` shapes among the conjuncts, used to
            complete candidate models concretely.
        extra_vars: variables of the raw conjunct that canonicalization
            simplified away; unconstrained, they default to 0 in models.
        unsat: propagation proved the stack unsatisfiable at (or above)
            this frame.
    """

    raw: Expr
    conjuncts: tuple[Expr, ...]
    mark: int
    indexed: tuple[Expr, ...] = ()
    definitions: tuple[tuple[Expr, Expr], ...] = ()
    extra_vars: tuple[Expr, ...] = ()
    unsat: bool = False


class IncrementalSolver:
    """Push/pop assertion stack reusing propagation across related queries.

    Args:
        solver: fallback satisfiability backend; quick answers and frame
            counters are recorded on its :class:`SolverStats`, so sharing
            the engine's solver keeps one coherent set of counters.
    """

    def __init__(self, solver: Solver | None = None):
        self.solver = solver or Solver()
        self._domains = TrailDomains()
        self._var_index: VarIndex = {}
        self._frames: list[_Frame] = []
        # Running canonical conjunct list across all frames (equivalent to
        # the conjunction of the raw pushes), so verification does not
        # re-flatten the stack on every check.
        self._canon: list[Expr] = []

    # -- stack surface -------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._frames)

    def push(self, conjunct: Expr) -> None:
        """Assert one more conjunct, extending the propagation fixpoint."""
        if not isinstance(conjunct, Expr) or conjunct.sort != BOOL:
            raise SolverError("push() requires a boolean expression")
        mark = self._domains.mark()
        parent_unsat = self._frames[-1].unsat if self._frames else False
        conjuncts = tuple(c for c in _flatten([canonicalize(conjunct)])
                          if not c.is_true)
        frame = _Frame(raw=conjunct, conjuncts=conjuncts, mark=mark)
        self._frames.append(frame)
        self.solver.stats.frames_pushed += 1
        if parent_unsat or any(c.is_false for c in conjuncts):
            # Deeper frames cannot recover satisfiability; skip the
            # bookkeeping so pushes under a contradiction stay O(1).
            frame.unsat = True
            return
        definitions = []
        for constraint in conjuncts:
            for var in collect_vars(constraint):
                if var not in self._domains:
                    self._domains[var] = (iv.BOOL_FULL if var.sort == BOOL
                                          else iv.full(var.sort.width))
                self._var_index.setdefault(var, []).append(constraint)
            definition = _as_definition(constraint)
            if definition is not None:
                definitions.append(definition)
        frame.indexed = conjuncts
        frame.definitions = tuple(definitions)
        frame.extra_vars = tuple(var for var in collect_vars(conjunct)
                                 if var not in self._domains)
        self._canon.extend(conjuncts)
        started = time.perf_counter()
        ok = propagate_delta(self._domains, self._var_index, conjuncts,
                             max_pops=default_pop_budget(len(self._canon)))
        self.solver.stats.propagation_seconds += time.perf_counter() - started
        frame.unsat = not ok

    def pop(self) -> None:
        """Retract the top frame, restoring the parent fixpoint in O(changes)."""
        if not self._frames:
            raise SolverError("pop() on an empty assertion stack")
        frame = self._frames.pop()
        for constraint in reversed(frame.indexed):
            for var in collect_vars(constraint):
                watchers = self._var_index[var]
                watchers.pop()
                if not watchers:
                    del self._var_index[var]
        if frame.indexed:
            del self._canon[len(self._canon) - len(frame.indexed):]
        self._domains.undo_to(frame.mark)

    def align(self, constraints: Sequence[Expr]) -> int:
        """Make the stack hold exactly ``constraints``, one frame each.

        Frames matching a prefix of ``constraints`` are kept (their
        propagation fixpoint is reused as-is); the rest are popped and the
        remaining conjuncts pushed. Returns the number of frames reused;
        also recorded in ``SolverStats.frames_reused``.
        """
        frames = self._frames
        common = 0
        for frame, conjunct in zip(frames, constraints):
            if frame.raw is conjunct or frame.raw == conjunct:
                common += 1
            else:
                break
        while len(frames) > common:
            self.pop()
        for conjunct in constraints[common:]:
            self.push(conjunct)
        self.solver.stats.frames_reused += common
        return common

    # -- solving -------------------------------------------------------------

    def check_current(self) -> SatResult:
        """Decide satisfiability of the current assertion stack.

        Agrees with a from-scratch ``Solver().check(stack)`` on every
        stack: the quick paths are sound (UNSAT only on a propagation
        contradiction, SAT only on a verified model) and everything else
        delegates to :meth:`Solver.check`.
        """
        stats = self.solver.stats
        if self._frames and self._frames[-1].unsat:
            stats.queries += 1
            stats.unsat_answers += 1
            stats.quick_unsats += 1
            return SatResult(UNSAT)
        # Candidate: propagated lower bounds, with definition frames
        # (var == expr) evaluated concretely so checksum-style equalities
        # hold by construction, and simplified-away variables defaulted.
        candidate = {var: domain.lo for var, domain in self._domains.items()}
        for frame in self._frames:
            for var, rhs in frame.definitions:
                candidate[var] = evaluate(rhs, candidate)
            for var in frame.extra_vars:
                candidate.setdefault(var, 0)
        # Verified against the canonical conjuncts — equivalent to the raw
        # conjunction (canonicalization preserves equivalence), so a
        # holding candidate is a sound SAT answer with a complete model.
        if all_hold(self._canon, candidate):
            stats.queries += 1
            stats.sat_answers += 1
            stats.quick_sats += 1
            return SatResult(SAT, candidate)
        stats.incremental_fallbacks += 1
        # The fallback search starts from the frame stack's propagation
        # fixpoint rather than ⊤: every interval in `_domains` is implied
        # by the pushed conjuncts, so handing them over as seeds is sound
        # and saves the from-scratch pass re-deriving the narrowing the
        # stack already paid for. (Solver.check only reads the mapping.)
        return self.solver.check([frame.raw for frame in self._frames],
                                 seed_domains=self._domains)

    def check(self, constraints: Iterable[Expr]) -> SatResult:
        """Align the stack with ``constraints`` and decide satisfiability."""
        constraints = tuple(constraints)
        tracer = obs_trace.active
        if tracer is None:
            self.align(constraints)
            return self.check_current()
        with tracer.span("solver.incremental", conjuncts=len(constraints)):
            self.align(constraints)
            return self.check_current()

    def is_satisfiable(self, constraints: Iterable[Expr]) -> bool:
        return self.check(constraints).is_sat
