"""Unsigned interval arithmetic for bounds propagation.

Intervals are contiguous, inclusive unsigned ranges ``[lo, hi]`` within a
bitvector width. All transfer functions are *sound over-approximations*:
the true result set of an operation is always contained in the returned
interval (falling back to the full range when wrap-around makes the result
non-contiguous). Soundness is what matters — the solver's search verifies
candidate models by concrete evaluation, so precision only affects speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SolverError


@dataclass(frozen=True)
class Interval:
    """Inclusive unsigned range ``[lo, hi]``. Invariant: ``0 <= lo <= hi``."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 0 or self.lo > self.hi:
            raise SolverError(f"malformed interval [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __iter__(self):
        return iter(range(self.lo, self.hi + 1))


def full(width: int) -> Interval:
    return Interval(0, (1 << width) - 1)


def singleton(value: int) -> Interval:
    return Interval(value, value)


BOOL_FULL = Interval(0, 1)


def _wrap_window(lo: int, hi: int, width: int) -> Interval:
    """Normalize a possibly-shifted window [lo, hi] into the unsigned range.

    If the window spans fewer than ``2**width`` values and both endpoints
    fall in the same period, the wrapped set stays contiguous; otherwise the
    only sound contiguous answer is the full range.
    """
    size = 1 << width
    if hi - lo >= size:
        return full(width)
    if 0 <= lo and hi < size:
        return Interval(lo, hi)
    if lo >= size and hi >= size:
        return Interval(lo - size, hi - size)
    if lo < 0 and hi < 0:
        return Interval(lo + size, hi + size)
    return full(width)


def add(a: Interval, b: Interval, width: int) -> Interval:
    return _wrap_window(a.lo + b.lo, a.hi + b.hi, width)


def sub(a: Interval, b: Interval, width: int) -> Interval:
    return _wrap_window(a.lo - b.hi, a.hi - b.lo, width)


def mul(a: Interval, b: Interval, width: int) -> Interval:
    hi = a.hi * b.hi
    if hi < (1 << width):
        return Interval(a.lo * b.lo, hi)
    return full(width)


def udiv(a: Interval, b: Interval, width: int) -> Interval:
    if b.lo == 0:
        # Division by zero yields all-ones in SMT-LIB semantics.
        return full(width)
    return Interval(a.lo // b.hi, a.hi // b.lo)


def urem(a: Interval, b: Interval, width: int) -> Interval:
    # urem(a, b) <= a always (and urem(a, 0) == a). When the divisor is
    # provably nonzero the remainder is also strictly below b.
    if b.lo > 0:
        return Interval(0, min(a.hi, b.hi - 1))
    return Interval(0, a.hi)


def bvand(a: Interval, b: Interval, width: int) -> Interval:
    return Interval(0, min(a.hi, b.hi))


def _bitlen_cap(value: int) -> int:
    """Smallest all-ones value covering ``value`` (e.g. 5 -> 7)."""
    return (1 << value.bit_length()) - 1


def bvor(a: Interval, b: Interval, width: int) -> Interval:
    return Interval(max(a.lo, b.lo), _bitlen_cap(max(a.hi, b.hi)))


def bvxor(a: Interval, b: Interval, width: int) -> Interval:
    return Interval(0, _bitlen_cap(max(a.hi, b.hi)))


def shl(a: Interval, b: Interval, width: int) -> Interval:
    if b.hi >= width:
        return full(width)
    hi = a.hi << b.hi
    if hi < (1 << width):
        return Interval(a.lo << b.lo, hi)
    return full(width)


def lshr(a: Interval, b: Interval, width: int) -> Interval:
    if b.hi >= width:
        return Interval(0, a.hi)
    return Interval(a.lo >> b.hi, a.hi >> b.lo)


def ashr(a: Interval, b: Interval, width: int) -> Interval:
    if a.hi < (1 << (width - 1)):
        # Sign bit is never set; behaves like a logical shift.
        return lshr(a, b, width)
    return full(width)


def neg(a: Interval, width: int) -> Interval:
    return sub(singleton(0), a, width)


def bvnot(a: Interval, width: int) -> Interval:
    mask = (1 << width) - 1
    return Interval(mask - a.hi, mask - a.lo)


def zext(a: Interval, new_width: int) -> Interval:
    return a


def sext(a: Interval, old_width: int, new_width: int) -> Interval:
    sign_threshold = 1 << (old_width - 1)
    shift = (1 << new_width) - (1 << old_width)
    if a.hi < sign_threshold:
        return a
    if a.lo >= sign_threshold:
        return Interval(a.lo + shift, a.hi + shift)
    return full(new_width)


def extract(a: Interval, hi_bit: int, lo_bit: int, old_width: int) -> Interval:
    width = hi_bit - lo_bit + 1
    if lo_bit == 0 and a.hi < (1 << width):
        return a
    return full(width)


def concat(hi_part: Interval, lo_part: Interval, lo_width: int) -> Interval:
    return Interval((hi_part.lo << lo_width) + lo_part.lo, (hi_part.hi << lo_width) + lo_part.hi)


def signed_bounds(a: Interval, width: int) -> tuple[int, int] | None:
    """Signed (lo, hi) if the interval does not straddle the sign boundary."""
    sign_threshold = 1 << (width - 1)
    period = 1 << width
    if a.hi < sign_threshold:
        return (a.lo, a.hi)
    if a.lo >= sign_threshold:
        return (a.lo - period, a.hi - period)
    return None


# Tri-valued comparison outcomes.
TRI_TRUE = 1
TRI_FALSE = 0
TRI_UNKNOWN = -1


def compare(op: str, a: Interval, b: Interval, width: int) -> int:
    """Decide a comparison over intervals, returning a TRI_* outcome."""
    if op == "eq":
        if a.is_singleton and b.is_singleton and a.lo == b.lo:
            return TRI_TRUE
        if a.intersect(b) is None:
            return TRI_FALSE
        return TRI_UNKNOWN
    if op == "ult":
        if a.hi < b.lo:
            return TRI_TRUE
        if a.lo >= b.hi:
            return TRI_FALSE
        return TRI_UNKNOWN
    if op == "ule":
        if a.hi <= b.lo:
            return TRI_TRUE
        if a.lo > b.hi:
            return TRI_FALSE
        return TRI_UNKNOWN
    if op in ("slt", "sle"):
        sa = signed_bounds(a, width)
        sb = signed_bounds(b, width)
        if sa is None or sb is None:
            return TRI_UNKNOWN
        if op == "slt":
            if sa[1] < sb[0]:
                return TRI_TRUE
            if sa[0] >= sb[1]:
                return TRI_FALSE
        else:
            if sa[1] <= sb[0]:
                return TRI_TRUE
            if sa[0] > sb[1]:
                return TRI_FALSE
        return TRI_UNKNOWN
    raise SolverError(f"unknown comparison operator {op}")
