"""Human-readable rendering of solver expressions.

The printer produces a compact SMT-flavoured prefix syntax used by
``repr()``, reports, and test failure messages. It is intentionally
lossless enough for debugging but is not a parser round-trip format.
"""

from __future__ import annotations

from repro.solver.ast import Expr
from repro.solver.sorts import BOOL

_INFIX = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "udiv": "/u",
    "urem": "%u",
    "bvand": "&",
    "bvor": "|",
    "bvxor": "^",
    "shl": "<<",
    "lshr": ">>",
    "ashr": ">>s",
    "eq": "==",
    "ult": "<u",
    "ule": "<=u",
    "slt": "<s",
    "sle": "<=s",
}


def to_string(expr: Expr, max_depth: int = 12) -> str:
    """Render ``expr`` as a readable string, eliding very deep subtrees."""
    return _render(expr, max_depth)


def _render(expr: Expr, depth: int) -> str:
    if depth <= 0:
        return "..."
    if expr.op == "const":
        if expr.sort == BOOL:
            return "true" if expr.params[0] else "false"
        return f"{expr.params[0]:#x}:{expr.width}"
    if expr.op == "var":
        suffix = "bool" if expr.sort == BOOL else str(expr.width)
        return f"{expr.params[0]}:{suffix}"
    if expr.op in _INFIX:
        lhs = _render(expr.args[0], depth - 1)
        rhs = _render(expr.args[1], depth - 1)
        return f"({lhs} {_INFIX[expr.op]} {rhs})"
    if expr.op == "not":
        return f"!{_render(expr.args[0], depth - 1)}"
    if expr.op in ("and", "or"):
        joiner = " && " if expr.op == "and" else " || "
        return "(" + joiner.join(_render(a, depth - 1) for a in expr.args) + ")"
    if expr.op == "neg":
        return f"-{_render(expr.args[0], depth - 1)}"
    if expr.op == "bvnot":
        return f"~{_render(expr.args[0], depth - 1)}"
    if expr.op in ("zext", "sext"):
        return f"{expr.op}({_render(expr.args[0], depth - 1)}, {expr.params[0]})"
    if expr.op == "extract":
        hi, lo = expr.params
        return f"{_render(expr.args[0], depth - 1)}[{hi}:{lo}]"
    if expr.op == "concat":
        return f"({_render(expr.args[0], depth - 1)} . {_render(expr.args[1], depth - 1)})"
    if expr.op == "ite":
        cond, then, otherwise = (_render(a, depth - 1) for a in expr.args)
        return f"ite({cond}, {then}, {otherwise})"
    return f"{expr.op}({', '.join(_render(a, depth - 1) for a in expr.args)})"
