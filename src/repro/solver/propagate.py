"""Bounds (interval) propagation over constraint sets.

Propagation narrows per-variable unsigned intervals until a fixpoint. It is
sound but deliberately incomplete: anything it cannot narrow it leaves at the
full range, and the backtracking search in :mod:`repro.solver.solver` picks
up from there. A ``None`` result proves unsatisfiability.

Two entry points share the narrowing rules:

* :func:`propagate` — the from-scratch fixpoint over a whole constraint
  list, used by the backtracking search.
* :func:`propagate_delta` — incremental re-propagation driven by a
  dirty-variable worklist: seeded with just the constraints that changed
  (e.g. the one conjunct pushed onto an assertion stack), it re-visits only
  constraints touching variables whose domains actually narrowed, reusing
  the parent fixpoint for everything else. Combined with
  :class:`TrailDomains` — a domains dict journaling every write so a later
  ``undo_to`` restores the exact prior state in O(changes) — this is what
  lets :class:`~repro.solver.incremental.IncrementalSolver` pop a frame
  without recomputing or copying anything.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import SolverError
from repro.solver import interval as iv
from repro.solver.ast import Expr
from repro.solver.interval import Interval, TRI_FALSE, TRI_TRUE, TRI_UNKNOWN
from repro.solver.sorts import BOOL, BitVecSort
from repro.solver.walk import collect_vars, collect_vars_all

Domains = dict[Expr, Interval]

#: Constraints watching each variable; drives the propagation worklist.
VarIndex = dict[Expr, list[Expr]]

_MAX_ROUNDS = 40

#: Trail sentinel: the key was absent before the write.
_ABSENT = object()


class TrailDomains(dict):
    """A :data:`Domains` dict journaling every write for O(changes) undo.

    All narrowing in this module funnels through plain item assignment
    (``domains[var] = interval``), so overriding ``__setitem__`` to record
    the previous binding is enough: :meth:`mark` snapshots a position in
    the write trail and :meth:`undo_to` replays the trail backwards to
    restore the exact dict state at that mark. Undo cost is proportional
    to the number of writes since the mark, never to the number of
    variables — the property the assertion-stack ``pop()`` and the model
    enumerator's backtracking rely on.

    Construction-time entries (``TrailDomains(initial)``) are not
    journaled; the trail starts empty.
    """

    __slots__ = ("_trail",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._trail: list[tuple[Expr, object]] = []

    def __setitem__(self, key: Expr, value: Interval) -> None:
        self._trail.append((key, dict.get(self, key, _ABSENT)))
        dict.__setitem__(self, key, value)

    def mark(self) -> int:
        """Current trail position, for a later :meth:`undo_to`."""
        return len(self._trail)

    def written_since(self, mark: int) -> list[Expr]:
        """Keys written since ``mark``, in write order (may repeat)."""
        return [key for key, _ in self._trail[mark:]]

    def undo_to(self, mark: int) -> None:
        """Restore the exact state the dict had when ``mark`` was taken."""
        trail = self._trail
        while len(trail) > mark:
            key, old = trail.pop()
            if old is _ABSENT:
                dict.pop(self, key, None)
            else:
                dict.__setitem__(self, key, old)


def build_var_index(constraints: Iterable[Expr]) -> VarIndex:
    """Map every variable to the constraints mentioning it."""
    index: VarIndex = {}
    for constraint in constraints:
        for var in collect_vars(constraint):
            index.setdefault(var, []).append(constraint)
    return index


def default_pop_budget(constraint_count: int) -> int:
    """Worklist visit budget matching the from-scratch round cap."""
    return _MAX_ROUNDS * max(8, constraint_count)


def propagate_delta(domains: TrailDomains, var_index: VarIndex,
                    seeds: Iterable[Expr],
                    max_pops: int | None = None) -> bool:
    """Re-propagate incrementally from a parent fixpoint.

    Seeds the worklist with ``seeds`` (typically the constraints just
    added, or those watching a variable just pinned); whenever a domain
    narrows, every constraint in ``var_index`` watching that variable is
    re-queued. Constraints untouched by any narrowed variable stay at the
    parent fixpoint and are never revisited.

    All writes go through ``domains``'s trail, so on a contradiction the
    caller recovers the pre-call state with ``undo_to``. Returns False
    when a contradiction proves the constraint set unsatisfiable, True
    otherwise. Visits beyond ``max_pops`` are abandoned (sound: domains
    merely stay wider), mirroring :data:`_MAX_ROUNDS` in the from-scratch
    pass.
    """
    worklist: deque[Expr] = deque(seeds)
    queued = set(worklist)
    if max_pops is None:
        max_pops = default_pop_budget(len(queued) + len(var_index))
    pops = 0
    try:
        while worklist:
            constraint = worklist.popleft()
            queued.discard(constraint)
            pops += 1
            if pops > max_pops:
                break
            mark = domains.mark()
            _assert_true(constraint, domains, {})
            for var in domains.written_since(mark):
                for watcher in var_index.get(var, ()):
                    if watcher not in queued:
                        queued.add(watcher)
                        worklist.append(watcher)
    except _Contradiction:
        return False
    return True


class _Contradiction(Exception):
    """Internal signal that a domain became empty."""


def initial_domains(constraints: Iterable[Expr]) -> Domains:
    """Full-range domains for every variable in ``constraints``."""
    domains: Domains = {}
    for var in collect_vars_all(constraints):
        domains[var] = iv.BOOL_FULL if var.sort == BOOL else iv.full(var.sort.width)
    return domains


def propagate(constraints: list[Expr], domains: Domains) -> Domains | None:
    """Narrow ``domains`` using every constraint, to fixpoint.

    Args:
        constraints: boolean expressions that must all hold.
        domains: starting domains; not mutated.

    Returns:
        The narrowed domains, or ``None`` if a contradiction proves the
        constraint set unsatisfiable.
    """
    state = dict(domains)
    try:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for constraint in constraints:
                cache: dict[Expr, Interval] = {}
                changed |= _assert_true(constraint, state, cache)
            if not changed:
                break
    except _Contradiction:
        return None
    return state


def forward(expr: Expr, domains: Domains, cache: dict[Expr, Interval]) -> Interval:
    """Sound interval over-approximation of ``expr`` under ``domains``."""
    hit = cache.get(expr)
    if hit is not None:
        return hit
    result = _forward(expr, domains, cache)
    cache[expr] = result
    return result


def _forward(expr: Expr, domains: Domains, cache: dict[Expr, Interval]) -> Interval:
    op = expr.op
    if op == "const":
        return iv.singleton(expr.params[0])
    if op == "var":
        domain = domains.get(expr)
        if domain is None:
            return iv.BOOL_FULL if expr.sort == BOOL else iv.full(expr.sort.width)
        return domain
    if op in ("add", "sub", "mul", "udiv", "urem", "bvand", "bvor", "bvxor",
              "shl", "lshr", "ashr"):
        a = forward(expr.args[0], domains, cache)
        b = forward(expr.args[1], domains, cache)
        return getattr(iv, op)(a, b, expr.width)
    if op in ("eq", "ult", "ule", "slt", "sle"):
        a = forward(expr.args[0], domains, cache)
        b = forward(expr.args[1], domains, cache)
        outcome = iv.compare(op, a, b, expr.args[0].width)
        if outcome == TRI_TRUE:
            return iv.singleton(1)
        if outcome == TRI_FALSE:
            return iv.singleton(0)
        return iv.BOOL_FULL
    if op == "and":
        if any(forward(a, domains, cache).hi == 0 for a in expr.args):
            return iv.singleton(0)
        if all(forward(a, domains, cache).lo == 1 for a in expr.args):
            return iv.singleton(1)
        return iv.BOOL_FULL
    if op == "or":
        if any(forward(a, domains, cache).lo == 1 for a in expr.args):
            return iv.singleton(1)
        if all(forward(a, domains, cache).hi == 0 for a in expr.args):
            return iv.singleton(0)
        return iv.BOOL_FULL
    if op == "not":
        inner = forward(expr.args[0], domains, cache)
        if inner.is_singleton:
            return iv.singleton(1 - inner.lo)
        return iv.BOOL_FULL
    if op == "neg":
        return iv.neg(forward(expr.args[0], domains, cache), expr.width)
    if op == "bvnot":
        return iv.bvnot(forward(expr.args[0], domains, cache), expr.width)
    if op == "zext":
        return iv.zext(forward(expr.args[0], domains, cache), expr.width)
    if op == "sext":
        return iv.sext(forward(expr.args[0], domains, cache), expr.args[0].width, expr.width)
    if op == "extract":
        hi_bit, lo_bit = expr.params
        return iv.extract(forward(expr.args[0], domains, cache), hi_bit, lo_bit,
                          expr.args[0].width)
    if op == "concat":
        hi_part = forward(expr.args[0], domains, cache)
        lo_part = forward(expr.args[1], domains, cache)
        return iv.concat(hi_part, lo_part, expr.args[1].width)
    if op == "ite":
        cond = forward(expr.args[0], domains, cache)
        if cond.is_singleton:
            chosen = expr.args[1] if cond.lo else expr.args[2]
            return forward(chosen, domains, cache)
        return forward(expr.args[1], domains, cache).hull(
            forward(expr.args[2], domains, cache))
    raise SolverError(f"cannot propagate through unknown operator {expr.op}")


def _assert_true(expr: Expr, domains: Domains, cache: dict[Expr, Interval]) -> bool:
    """Refine domains so the boolean ``expr`` can be true. Returns changed?"""
    op = expr.op
    if op == "const":
        if expr.params[0] == 0:
            raise _Contradiction()
        return False
    if op == "var":
        return _narrow(expr, iv.singleton(1), domains, cache)
    if op == "not":
        return _assert_false(expr.args[0], domains, cache)
    if op == "and":
        changed = False
        for arg in expr.args:
            changed |= _assert_true(arg, domains, cache)
        return changed
    if op == "or":
        # If all but one disjunct is definitely false, the last must hold.
        open_args = [a for a in expr.args if forward(a, domains, cache).hi != 0]
        if not open_args:
            raise _Contradiction()
        if len(open_args) == 1:
            return _assert_true(open_args[0], domains, cache)
        # All open arms bound the *same* variable: it must lie in the hull
        # of the per-arm intervals (one arm holds, each arm implies its
        # interval). Membership disjunctions (msg[0] == A ∨ msg[0] == B)
        # narrow here instead of leaving the full range to the search.
        hull = _common_var_hull(open_args)
        if hull is not None:
            return _narrow(hull[0], hull[1], domains, cache)
        return False
    if op in ("eq", "ult", "ule", "slt", "sle"):
        return _assert_comparison(op, expr.args[0], expr.args[1], domains, cache)
    if op == "ite":
        cond_iv = forward(expr.args[0], domains, cache)
        if cond_iv.is_singleton:
            chosen = expr.args[1] if cond_iv.lo else expr.args[2]
            return _assert_true(chosen, domains, cache)
        return False
    return False


def _assert_false(expr: Expr, domains: Domains, cache: dict[Expr, Interval]) -> bool:
    op = expr.op
    if op == "const":
        if expr.params[0] == 1:
            raise _Contradiction()
        return False
    if op == "var":
        return _narrow(expr, iv.singleton(0), domains, cache)
    if op == "not":
        return _assert_true(expr.args[0], domains, cache)
    if op == "or":
        changed = False
        for arg in expr.args:
            changed |= _assert_false(arg, domains, cache)
        return changed
    if op == "and":
        open_args = [a for a in expr.args if forward(a, domains, cache).lo != 1]
        if not open_args:
            raise _Contradiction()
        if len(open_args) == 1:
            return _assert_false(open_args[0], domains, cache)
        return False
    if op == "eq":
        a, b = expr.args
        fa = forward(a, domains, cache)
        fb = forward(b, domains, cache)
        changed = False
        # x != c prunes c only when it sits at a domain edge (intervals are
        # contiguous, so interior holes cannot be represented).
        if fb.is_singleton:
            changed |= _exclude_edge(a, fb.lo, domains, cache)
        if fa.is_singleton:
            changed |= _exclude_edge(b, fa.lo, domains, cache)
        if fa.is_singleton and fb.is_singleton and fa.lo == fb.lo:
            raise _Contradiction()
        return changed
    if op == "ult":
        # not(a < b)  <=>  b <= a
        return _assert_comparison("ule", expr.args[1], expr.args[0], domains, cache)
    if op == "ule":
        return _assert_comparison("ult", expr.args[1], expr.args[0], domains, cache)
    if op == "slt":
        return _assert_comparison("sle", expr.args[1], expr.args[0], domains, cache)
    if op == "sle":
        return _assert_comparison("slt", expr.args[1], expr.args[0], domains, cache)
    return False


def _assert_comparison(op: str, a: Expr, b: Expr, domains: Domains,
                       cache: dict[Expr, Interval]) -> bool:
    fa = forward(a, domains, cache)
    fb = forward(b, domains, cache)
    width = a.width
    # Decide the comparison outright when the intervals already settle it:
    # definitely-false must raise (otherwise the search keeps exploring a
    # doomed subtree), definitely-true needs no narrowing.
    outcome = iv.compare(op, fa, fb, width)
    if outcome == TRI_FALSE:
        raise _Contradiction()
    if outcome == TRI_TRUE:
        return False
    changed = False
    if op == "eq":
        target = fa.intersect(fb)
        if target is None:
            raise _Contradiction()
        changed |= _narrow(a, target, domains, cache)
        changed |= _narrow(b, target, domains, cache)
        return changed
    if op == "ult":
        if fb.hi == 0:
            raise _Contradiction()
        changed |= _narrow(a, Interval(0, fb.hi - 1), domains, cache)
        mask = (1 << width) - 1
        lo = min(fa.lo + 1, mask)
        changed |= _narrow(b, Interval(lo, mask), domains, cache)
        return changed
    if op == "ule":
        changed |= _narrow(a, Interval(0, fb.hi), domains, cache)
        changed |= _narrow(b, Interval(fa.lo, (1 << width) - 1), domains, cache)
        return changed
    if op in ("slt", "sle"):
        sa = iv.signed_bounds(fa, width)
        sb = iv.signed_bounds(fb, width)
        strict = op == "slt"
        if sb is not None:
            hi_signed = sb[1] - 1 if strict else sb[1]
            narrowed = _signed_upper_bound(hi_signed, width)
            if narrowed is None:
                raise _Contradiction()
            changed |= _narrow_signed(a, narrowed, domains, cache)
        if sa is not None:
            lo_signed = sa[0] + 1 if strict else sa[0]
            narrowed = _signed_lower_bound(lo_signed, width)
            if narrowed is None:
                raise _Contradiction()
            changed |= _narrow_signed(b, narrowed, domains, cache)
        return changed
    raise SolverError(f"unknown comparison operator {op}")


def _common_var_hull(arms: list[Expr]) -> tuple[Expr, Interval] | None:
    """Interval implied by a disjunction whose arms all bound one variable.

    Returns ``(var, hull)`` when every arm is a recognized var-vs-constant
    comparison over the same bitvector variable, None otherwise.
    """
    var: Expr | None = None
    hull: Interval | None = None
    for arm in arms:
        bounds = _arm_bounds(arm)
        if bounds is None:
            return None
        if var is None:
            var, hull = bounds
        elif bounds[0] is var:
            hull = hull.hull(bounds[1])
        else:
            return None
    if var is None:
        return None
    return var, hull


def _arm_bounds(arm: Expr) -> tuple[Expr, Interval] | None:
    """``(var, interval)`` implied by a var-vs-constant comparison arm."""
    if arm.op not in ("eq", "ult", "ule"):
        return None
    lhs, rhs = arm.args
    if lhs.is_var and lhs.sort != BOOL and rhs.is_const:
        var, value, var_left = lhs, rhs.params[0], True
    elif rhs.is_var and rhs.sort != BOOL and lhs.is_const:
        var, value, var_left = rhs, lhs.params[0], False
    else:
        return None
    mask = (1 << var.width) - 1
    if arm.op == "eq":
        return var, Interval(value, value)
    if arm.op == "ult":
        if var_left:
            return (var, Interval(0, value - 1)) if value > 0 else None
        return (var, Interval(value + 1, mask)) if value < mask else None
    if var_left:
        return var, Interval(0, value)
    return var, Interval(value, mask)


def _signed_upper_bound(hi_signed: int, width: int) -> tuple[int, int] | None:
    """Signed range (min_signed, hi_signed), or None if empty."""
    min_signed = -(1 << (width - 1))
    if hi_signed < min_signed:
        return None
    return (min_signed, min(hi_signed, (1 << (width - 1)) - 1))


def _signed_lower_bound(lo_signed: int, width: int) -> tuple[int, int] | None:
    max_signed = (1 << (width - 1)) - 1
    if lo_signed > max_signed:
        return None
    return (max(lo_signed, -(1 << (width - 1))), max_signed)


def _narrow_signed(expr: Expr, signed_range: tuple[int, int], domains: Domains,
                   cache: dict[Expr, Interval]) -> bool:
    """Narrow ``expr`` to a signed range, if it maps to a contiguous unsigned one."""
    lo, hi = signed_range
    width = expr.width
    period = 1 << width
    if lo >= 0:
        return _narrow(expr, Interval(lo, hi), domains, cache)
    if hi < 0:
        return _narrow(expr, Interval(lo + period, hi + period), domains, cache)
    # Straddles zero: [lo, hi] maps to [0, hi] U [lo+2^w, mask] — not
    # contiguous, so nothing sound can be pushed.
    return False


def _exclude_edge(expr: Expr, value: int, domains: Domains,
                  cache: dict[Expr, Interval]) -> bool:
    """Refine ``expr != value`` when ``value`` is at an edge of its interval."""
    current = forward(expr, domains, cache)
    if current.is_singleton:
        if current.lo == value:
            raise _Contradiction()
        return False
    if current.lo == value:
        return _narrow(expr, Interval(value + 1, current.hi), domains, cache)
    if current.hi == value:
        return _narrow(expr, Interval(current.lo, value - 1), domains, cache)
    return False


def _narrow(expr: Expr, target: Interval, domains: Domains,
            cache: dict[Expr, Interval]) -> bool:
    """Push ``target`` down into ``expr``, narrowing variable domains.

    Only shapes with an exact inverse are handled; everything else is a
    sound no-op. Returns True when any domain changed.
    """
    op = expr.op
    if op == "const":
        if not target.contains(expr.params[0]):
            raise _Contradiction()
        return False
    if op == "var":
        current = domains.get(expr)
        if current is None:
            current = iv.BOOL_FULL if expr.sort == BOOL else iv.full(expr.sort.width)
        narrowed = current.intersect(target)
        if narrowed is None:
            raise _Contradiction()
        if narrowed != current:
            domains[expr] = narrowed
            cache.clear()
            return True
        return False
    if op == "add":
        # Invert through whichever operand is pinned (not just constants):
        # this is what lets long checksum chains force their last free term.
        fa = forward(expr.args[0], domains, cache)
        fb = forward(expr.args[1], domains, cache)
        if fb.is_singleton:
            inner = iv.sub(target, fb, expr.width)
            return _narrow(expr.args[0], inner, domains, cache)
        if fa.is_singleton:
            inner = iv.sub(target, fa, expr.width)
            return _narrow(expr.args[1], inner, domains, cache)
        return False
    if op == "sub":
        fa = forward(expr.args[0], domains, cache)
        fb = forward(expr.args[1], domains, cache)
        if fb.is_singleton:
            inner = iv.add(target, fb, expr.width)
            return _narrow(expr.args[0], inner, domains, cache)
        if fa.is_singleton:
            inner = iv.sub(fa, target, expr.width)
            return _narrow(expr.args[1], inner, domains, cache)
        return False
    if op == "bvxor" and target.is_singleton:
        fa = forward(expr.args[0], domains, cache)
        fb = forward(expr.args[1], domains, cache)
        if fb.is_singleton:
            return _narrow(expr.args[0], iv.singleton(target.lo ^ fb.lo),
                           domains, cache)
        if fa.is_singleton:
            return _narrow(expr.args[1], iv.singleton(target.lo ^ fa.lo),
                           domains, cache)
        return False
    if op == "zext":
        inner_full = iv.full(expr.args[0].width)
        clipped = target.intersect(inner_full)
        if clipped is None:
            raise _Contradiction()
        return _narrow(expr.args[0], clipped, domains, cache)
    if op == "concat":
        lo_width = expr.args[1].width
        hi_target = Interval(target.lo >> lo_width, target.hi >> lo_width)
        changed = _narrow(expr.args[0], hi_target, domains, cache)
        if hi_target.is_singleton:
            # The low part's bounds only project cleanly when the high
            # part is fixed across the whole target range.
            mask = (1 << lo_width) - 1
            changed |= _narrow(
                expr.args[1], Interval(target.lo & mask, target.hi & mask),
                domains, cache)
        return changed
    if op == "ite":
        cond_iv = forward(expr.args[0], domains, cache)
        if cond_iv.is_singleton:
            chosen = expr.args[1] if cond_iv.lo else expr.args[2]
            return _narrow(chosen, target, domains, cache)
        then_iv = forward(expr.args[1], domains, cache)
        else_iv = forward(expr.args[2], domains, cache)
        if then_iv.intersect(target) is None and else_iv.intersect(target) is None:
            raise _Contradiction()
        changed = False
        if then_iv.intersect(target) is None:
            changed |= _assert_false(expr.args[0], domains, cache)
            changed |= _narrow(expr.args[2], target, domains, cache)
        elif else_iv.intersect(target) is None:
            changed |= _assert_true(expr.args[0], domains, cache)
            changed |= _narrow(expr.args[1], target, domains, cache)
        return changed
    return False
