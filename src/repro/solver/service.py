"""Batched solver dispatch: the parallel layer of the query pipeline.

The three Achilles hot loops the paper calls embarrassingly parallel
(§3.3) — the pairwise ``differentFrom`` matrix, the per-predicate/per-field
negation probes, and the per-path Trojan probes — all pose *independent*
queries in bulk. :class:`SolverService` gives them one batched surface:

* :meth:`SolverService.probe_batch` — feasibility of ``prefix + probe_i``
  for many probes against one shared prefix (the push/pop shape);
* :meth:`SolverService.check_batch` — full :class:`SatResult` (including a
  model) for each of many independent constraint conjunctions;
* :meth:`SolverService.iter_models_batch` — exhaustive model enumeration
  over many independent bounded spaces.

Each call also has a non-blocking ``submit_*`` twin returning a
:class:`BatchFuture`: chunks go out to the pool immediately and the caller
overlaps its own work with the in-flight solving, joining later via
``future.result()`` (the exploration engine's async witness solves ride
this, see :meth:`repro.symex.engine.Engine.solve_async`).

Two backends answer them:

* **serial** (``workers=1``, the default): everything runs in-process on
  one shared :class:`~repro.solver.incremental.IncrementalSolver`, so
  callers that probe the same prefix (the negate overlap checks and the
  ``differentFrom`` matrix) ride the same propagation frames.
* **worker pool** (``workers>1``): queries are chunked contiguously across
  ``multiprocessing`` workers. Each worker owns a full private pipeline —
  its own hash-consed AST arena (expressions re-intern on unpickle via
  ``Expr.__reduce__``), :class:`~repro.solver.cache.QueryCache`,
  :class:`~repro.solver.incremental.IncrementalSolver` frame stack and
  :class:`~repro.solver.solver.SolverStats` — and worker state persists
  across batches, so repeated prefixes keep hitting warm frames and warm
  caches. Per-chunk stats are merged into :attr:`SolverService.stats` in
  chunk-index order — a fixed fold order, so float accumulation never
  depends on worker completion order. (The counter *values* can still
  vary run-to-run at ``workers>1``: which worker picks up a chunk decides
  whose warm cache it meets. Answers never vary — only the work-done
  accounting.)

Determinism contract: results are always returned in input order, and
answers are byte-identical at any worker count. Feasibility probes may be
answered from per-worker canonical caches (SAT/UNSAT is a pure function of
the query, so canonical aliasing is harmless); model-producing calls are
never answered from a canonical cache — a canonically-equal *variant* of a
query can carry a different stored model, which would make witnesses
depend on chunk placement.

When to batch vs. push/pop directly: the assertion stack is the right tool
for *sequentially dependent* queries (extend-by-one branch checks, where
each query's prefix is the previous query); the service is the right tool
when many queries are known *up front* and independent — then chunks can
run concurrently and the per-query dispatch overhead amortizes over the
batch.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.errors import SolverError
from repro.obs import trace as obs_trace
from repro.solver.ast import Expr
from repro.solver.cache import QueryCache
from repro.solver.enumerate import iter_models
from repro.solver.incremental import IncrementalSolver
from repro.solver.solver import SAT, UNSAT, SatResult, Solver, SolverStats

#: One feasibility probe / model query: a tuple of boolean conjuncts.
Query = tuple[Expr, ...]

#: ``iter_models_batch`` task: (constraints, enumeration variables).
ModelSpec = tuple[Sequence[Expr], Sequence[Expr]]


def default_worker_count() -> int:
    """Worker count matching the machine (never less than 1)."""
    return max(1, os.cpu_count() or 1)


class SolverService:
    """Batched satisfiability dispatch over a serial or pooled backend.

    Args:
        workers: backend selector — 1 (default) answers everything
            in-process; >1 spawns that many pool workers, each with a
            private solver pipeline.
        solver: serial-backend satisfiability fallback; sharing a caller's
            solver keeps serial counters on one :class:`SolverStats`
            (workers never see this instance — they build their own).

    Attributes:
        stats: worker-side counters, folded in chunk-index order after
            every parallel batch (values may vary with chunk→worker
            placement; see the module docstring). Stays zero on the
            serial backend, whose counters land on ``solver.stats``.
    """

    def __init__(self, workers: int = 1, solver: Solver | None = None):
        if workers < 1:
            raise SolverError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self.stats = SolverStats()
        self.solver = solver or Solver()
        # The serial backend's shared assertion stack: every serial caller
        # of this service probes through one IncrementalSolver, which is
        # how the negate overlap checks and the differentFrom matrix end
        # up riding the same prefix frames.
        self.incremental = IncrementalSolver(solver=self.solver)
        self._pool = None
        # Bumped on every close(): a BatchFuture remembers the generation
        # it was dispatched under and refuses to join a newer pool.
        self._generation = 0

    # -- lifecycle -----------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def close(self) -> None:
        """Shut the worker pool down (idempotent; serial backend is a no-op).

        The service stays usable afterwards: the next batch lazily starts
        a fresh pool (with cold worker caches). Outstanding
        :class:`BatchFuture` handles from before the close are invalidated
        — their chunks died with the pool — and raise a
        :class:`~repro.errors.SolverError` on :meth:`BatchFuture.result`.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            # Invalidate futures dispatched to the pool that just died.
            self._generation += 1

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            # fork inherits the parent's interned AST arena copy-on-write;
            # spawn (the only option on some platforms) re-interns shipped
            # expressions on unpickle instead — both are correct, fork is
            # just cheaper to start.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            self._pool = ctx.Pool(processes=self.workers,
                                  initializer=_init_worker)
        return self._pool

    # -- batched API ---------------------------------------------------------

    def probe_batch(self, prefix: Sequence[Expr],
                    probes: Sequence[Sequence[Expr]]) -> list[bool]:
        """Feasibility of ``prefix + probe`` for every probe, in order.

        The prefix is shipped (and propagated) once per worker chunk; each
        probe is a tuple of extra conjuncts pushed/popped against it.
        Workers consult their canonical caches — sound for booleans.
        """
        prefix = tuple(prefix)
        probes = [tuple(p) for p in probes]
        if not self.parallel or len(probes) < 2:
            return [self.incremental.check(prefix + probe).is_sat
                    for probe in probes]
        return self._dispatch("probe", probes, extra=prefix)

    def check_batch(self, queries: Sequence[Sequence[Expr]]) -> list[SatResult]:
        """Full results (with models) for independent queries, in order.

        Models are computed afresh per raw query — never served from a
        canonical cache — so the returned models are a pure function of
        each query and identical at any worker count.
        """
        queries = [tuple(q) for q in queries]
        if not self.parallel or len(queries) < 2:
            return [self.incremental.check(query) for query in queries]
        return self._dispatch("check", queries)

    def iter_models_batch(self, specs: Sequence[ModelSpec],
                          limit: int = 1_000_000,
                          ) -> list[list[dict[Expr, int]]]:
        """All models of each ``(constraints, variables)`` space, in order.

        The per-space enumeration order is fixed by ``variables`` (see
        :func:`repro.solver.enumerate.iter_models`), so concatenated
        results are chunking-invariant.
        """
        specs = [(tuple(constraints), tuple(variables))
                 for constraints, variables in specs]
        if not self.parallel or len(specs) < 2:
            return [list(iter_models(constraints, variables, limit))
                    for constraints, variables in specs]
        return self._dispatch("models", specs, extra=limit)

    # -- async batched API ---------------------------------------------------
    #
    # submit_* are the non-blocking versions of the calls above: chunks
    # are dispatched to the pool immediately and a BatchFuture is
    # returned, so the caller's own work (exploration, report assembly)
    # overlaps with the in-flight solving instead of blocking on the
    # join. On the serial backend there is nothing to overlap with — the
    # batch is answered eagerly and the future comes back completed, so
    # semantics (and answers) are identical either way. Unlike the
    # blocking calls, a parallel submit dispatches even a single-item
    # batch: the caller asked for overlap, not amortization.

    def submit_probe_batch(self, prefix: Sequence[Expr],
                           probes: Sequence[Sequence[Expr]]) -> "BatchFuture":
        """Non-blocking :meth:`probe_batch`; collect via ``.result()``."""
        prefix = tuple(prefix)
        probes = [tuple(p) for p in probes]
        if not self.parallel or not probes:
            return BatchFuture.completed(
                self, [self.incremental.check(prefix + probe).is_sat
                       for probe in probes])
        return self._submit("probe", probes, extra=prefix)

    def submit_check_batch(self,
                           queries: Sequence[Sequence[Expr]]) -> "BatchFuture":
        """Non-blocking :meth:`check_batch`; collect via ``.result()``."""
        queries = [tuple(q) for q in queries]
        if not self.parallel or not queries:
            return BatchFuture.completed(
                self, [self.incremental.check(query) for query in queries])
        return self._submit("check", queries)

    def submit_iter_models_batch(self, specs: Sequence[ModelSpec],
                                 limit: int = 1_000_000) -> "BatchFuture":
        """Non-blocking :meth:`iter_models_batch`; collect via ``.result()``."""
        specs = [(tuple(constraints), tuple(variables))
                 for constraints, variables in specs]
        if not self.parallel or not specs:
            return BatchFuture.completed(
                self, [list(iter_models(constraints, variables, limit))
                       for constraints, variables in specs])
        return self._submit("models", specs, extra=limit)

    # -- pool dispatch -------------------------------------------------------

    def _submit(self, kind: str, items: list, extra=None) -> "BatchFuture":
        tracer = obs_trace.active
        if tracer is not None:
            tracer.event("solver.service.submit", kind=kind,
                         items=len(items))
        pool = self._ensure_pool()
        chunks = _chunk(items, self.workers)
        handles = [pool.apply_async(_run_chunk, (kind, chunk, extra))
                   for chunk in chunks]
        return BatchFuture(self, handles=handles)

    def _dispatch(self, kind: str, items: list, extra=None) -> list:
        return self._submit(kind, items, extra).result()


class BatchFuture:
    """Handle for one in-flight (or already answered) batch.

    ``result()`` gathers the per-chunk answers in chunk-index order and —
    exactly once — folds the per-chunk :class:`SolverStats` into
    :attr:`SolverService.stats` in that same fixed order, so the stats
    aggregate is identical whether a batch was collected eagerly or long
    after later batches were submitted. Joining a future whose pool has
    been closed raises :class:`~repro.errors.SolverError`.
    """

    __slots__ = ("_service", "_handles", "_generation", "_results")

    _PENDING = object()

    def __init__(self, service: SolverService, handles: list | None = None):
        self._service = service
        self._handles = handles or []
        self._generation = service._generation
        self._results: object = self._PENDING

    @classmethod
    def completed(cls, service: SolverService, results: list) -> "BatchFuture":
        """An already-answered future (the serial backend's shape)."""
        future = cls(service)
        future._results = results
        return future

    @property
    def done(self) -> bool:
        """True when :meth:`result` will not block."""
        return (self._results is not self._PENDING
                or all(handle.ready() for handle in self._handles))

    def result(self) -> list:
        """Answers in input order (blocking until the chunks finish)."""
        if self._results is not self._PENDING:
            return self._results
        if self._generation != self._service._generation:
            raise SolverError(
                "batch future is stale: the service was closed after this "
                "batch was submitted; re-submit it on the fresh pool")
        tracer = obs_trace.active
        if tracer is None:
            return self._collect()
        with tracer.span("solver.service.batch", chunks=len(self._handles)):
            return self._collect()

    def _collect(self) -> list:
        results: list = []
        deltas: list[SolverStats] = []
        for handle in self._handles:
            chunk_results, chunk_stats = handle.get()
            results.extend(chunk_results)
            deltas.append(chunk_stats)
        # Merge in chunk-index order: float accumulation (propagation
        # seconds) must not depend on worker completion order.
        for delta in deltas:
            self._service.stats += delta
        self._handles = []
        self._results = results
        return results


def _chunk(items: list, parts: int) -> list[list]:
    """Split into at most ``parts`` contiguous, near-equal chunks."""
    count = min(parts, len(items))
    base, extra = divmod(len(items), count)
    chunks = []
    start = 0
    for i in range(count):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start:start + size])
        start += size
    return chunks


# -- worker side ---------------------------------------------------------------
#
# Each pool process builds one _WorkerState at initialization and keeps it
# for its lifetime: the assertion stack and canonical cache stay warm
# across batches, which is what makes repeated prefixes (the same i-row of
# the differentFrom matrix split over several batches, replayed path
# prefixes) cheap on the second encounter.

class _WorkerState:
    """One worker's private solver pipeline."""

    def __init__(self):
        self.solver = Solver()
        self.incremental = IncrementalSolver(solver=self.solver)
        self.cache = QueryCache()


_STATE: _WorkerState | None = None


def _init_worker() -> None:
    global _STATE
    _STATE = _WorkerState()


def _run_chunk(kind: str, items: list, extra) -> tuple[list, SolverStats]:
    """Answer one chunk; returns (results, this chunk's stats delta)."""
    state = _STATE if _STATE is not None else _WorkerState()
    # Fresh counters per chunk: the parent merges exactly this chunk's
    # work, in chunk order, regardless of which worker ran it.
    state.solver.stats = SolverStats()
    if kind == "probe":
        prefix = extra
        results: list = [_probe_feasible(state, prefix + probe)
                         for probe in items]
    elif kind == "check":
        results = [state.incremental.check(query) for query in items]
    elif kind == "models":
        results = [list(iter_models(constraints, variables, extra))
                   for constraints, variables in items]
    else:  # pragma: no cover - internal protocol
        raise SolverError(f"unknown batch kind {kind!r}")
    return results, state.solver.stats


def _probe_feasible(state: _WorkerState, query: Query) -> bool:
    """Worker-cached feasibility (mirrors Engine.is_feasible bookkeeping)."""
    key = state.cache.key(query)
    cached = state.cache.get_feasible(key)
    if cached is not None:
        state.solver.stats.cache_hits += 1
        return cached
    state.solver.stats.cache_misses += 1
    if state.cache.is_trivially_unsat(key):
        feasible = False
    else:
        feasible = state.incremental.check(query).is_sat
    state.cache.put_feasible(key, feasible)
    return feasible


__all__ = ["SolverService", "BatchFuture", "default_worker_count", "SAT",
           "UNSAT", "SatResult"]
