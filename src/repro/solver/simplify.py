"""Canonicalization pass over solver expressions.

The construction-time simplifications in :mod:`repro.solver.ast` fold
constants and apply algebraic identities, but they preserve the syntactic
shape the caller happened to build: ``a + b`` and ``b + a`` stay distinct
nodes, ``not(a < b)`` is not recognized as ``b <= a``. The Achilles search
re-poses thousands of near-identical satisfiability queries, so collapsing
such variants onto one canonical representative is what makes the query
cache (:mod:`repro.solver.cache`) effective.

:func:`canonicalize` rewrites an expression bottom-up into a canonical
form:

* every node is rebuilt through the simplifying constructors (constant
  folding and identities re-fire where child rewrites exposed them);
* associative-commutative chains (``add``, ``mul``, ``bvand``, ``bvor``,
  ``bvxor``) are flattened, their operands sorted into a stable canonical
  order (constants last, matching the constructors' const-on-the-right
  convention) and re-folded — so any association/commutation of the same
  operand multiset yields the *same* node, which is what lets checksum
  chains built on different sides of a wire equality cancel structurally;
* arguments of the remaining commutative operators (``eq``, ``and``,
  ``or``) are sorted the same way;
* negated comparisons are flipped into positive form
  (``not(ult(a, b))`` → ``ule(b, a)`` and friends), which also eliminates
  double negations over comparisons;
* trivial comparisons against domain edges collapse
  (``ult(x, 1)`` → ``eq(x, 0)``, ``ule(x, max)`` → ``true``, …).

The pass is idempotent and memoized per node (expressions are interned,
so the weak-keyed memo persists across queries for shared subtrees).

:func:`canonical_constraint_set` lifts canonicalization to whole
constraint conjunctions and is the keying function of the query cache.
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Iterable

from repro.solver import ast
from repro.solver.ast import FALSE, TRUE, Expr
from repro.solver.walk import expr_size, rebuild

#: Associative-commutative operators: chains are flattened and re-folded
#: over sorted operands, erasing the association order they were built in.
_AC_OPS = frozenset({"add", "mul", "bvand", "bvor", "bvxor"})
#: Commutative but not associative over a chain (binary / n-ary shapes).
_COMMUTATIVE_BINARY = frozenset({"eq"})
_COMMUTATIVE_NARY = frozenset({"and", "or"})

#: Positive form of each negated comparison, with swapped operands.
_NEGATED_COMPARISON = {"ult": "ule", "ule": "ult", "slt": "sle", "sle": "slt"}

#: Per-node memo. A value of ``None`` means "the key is its own canonical
#: form" — storing the node as its own value would give the entry a strong
#: reference to its key and make every canonicalized expression immortal.
_CANON_CACHE: "weakref.WeakKeyDictionary[Expr, Expr | None]" = (
    weakref.WeakKeyDictionary())
_MISS = object()


#: Memoized structural fingerprints (weak-keyed like the canon cache).
_FINGERPRINTS: "weakref.WeakKeyDictionary[Expr, bytes]" = (
    weakref.WeakKeyDictionary())


def _fingerprint(expr: Expr) -> bytes:
    """Structural digest of ``expr``, memoized per node.

    A sha256 over (op, sort, params) and the child digests: fixed-size
    per node (DAG-shared subtrees cannot blow it up the way a
    materialized rendering would), computed once per interned node, and
    a pure function of the structure — so it is identical in every
    process. Collisions are cryptographically negligible.
    """
    cached = _FINGERPRINTS.get(expr)
    if cached is None:
        digest = hashlib.sha256(
            repr((expr.op, str(expr.sort), expr.params)).encode())
        for arg in expr.args:
            digest.update(_fingerprint(arg))
        cached = digest.digest()
        _FINGERPRINTS[expr] = cached
    return cached


#: Public name for the structural digest: the disk cache layer
#: content-addresses canonical queries with it, relying on exactly the
#: process-stability this module already guarantees for ``_arg_key``.
structural_fingerprint = _fingerprint


def _arg_key(expr: Expr) -> tuple:
    """Stable total ordering key for commutative arguments.

    Variables sort first by name, compound terms next by operator and
    size, constants last so the const-on-the-right convention the
    propagation rules match against is preserved. Remaining ties are
    broken by a *structural* fingerprint — never by interning order or
    memory address — so the canonical form of a formula is identical in
    every process. The parallel solver service relies on this: a worker
    that re-interns a shipped query must canonicalize (and therefore
    search) it exactly like the coordinating process, or model-producing
    answers would depend on which worker ran them.
    """
    if expr.is_const:
        return (2, "", expr.params[0], str(expr.sort))
    if expr.is_var:
        return (0, expr.params[0], 0, str(expr.sort))
    return (1, expr.op, expr_size(expr), _fingerprint(expr))


def canonicalize(expr: Expr) -> Expr:
    """Rewrite ``expr`` into its canonical form (memoized, idempotent)."""
    cached = _CANON_CACHE.get(expr, _MISS)
    if cached is None:
        return expr
    if cached is not _MISS:
        return cached
    if expr.args:
        new_args = tuple(canonicalize(a) for a in expr.args)
        node = expr if new_args == expr.args else rebuild(
            expr.op, new_args, expr.params)
    else:
        node = expr
    result = _canonicalize_node(node)
    if result is expr:
        _CANON_CACHE[expr] = None
    else:
        _CANON_CACHE[expr] = result
        # The canonical form is its own fixpoint; record that too so
        # re-canonicalizing a canonical expression is one lookup.
        _CANON_CACHE[result] = None
    return result


def _canonicalize_node(expr: Expr) -> Expr:
    """Apply the local canonicalization rules to an already-rebuilt node."""
    op = expr.op
    if op == "not":
        inner = expr.args[0]
        flipped = _NEGATED_COMPARISON.get(inner.op)
        if flipped is not None:
            rewritten = rebuild(flipped, (inner.args[1], inner.args[0]), ())
            return _canonicalize_node(rewritten)
        return expr
    if op in ("ult", "ule"):
        collapsed = _collapse_unsigned_comparison(expr)
        if collapsed is not expr:
            return _canonicalize_node(collapsed)
        return expr
    if op in _AC_OPS:
        return _canonicalize_chain(op, expr)
    if op in _COMMUTATIVE_BINARY and len(expr.args) == 2:
        a, b = expr.args
        if _arg_key(a) > _arg_key(b):
            # Both orders are semantically identical and the identities
            # already fired during the rebuild, so construct directly.
            return Expr(op, expr.sort, args=(b, a), params=expr.params)
        return expr
    if op in _COMMUTATIVE_NARY:
        ordered = tuple(sorted(expr.args, key=_arg_key))
        if ordered != expr.args:
            return Expr(op, expr.sort, args=ordered, params=expr.params)
        return expr
    return expr


def _canonicalize_chain(op: str, expr: Expr) -> Expr:
    """Flatten an associative-commutative chain, sort it, and re-fold.

    The re-fold goes through the simplifying constructors, so folding
    identities (duplicate absorption for ``bvand``/``bvor``, constant
    merging for ``add``) fire on the sorted chain.
    """
    leaves: list[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if node.op == op:
            # Push in reverse so leaves come out in left-to-right order.
            stack.extend(reversed(node.args))
        else:
            leaves.append(node)
    ordered = sorted(leaves, key=_arg_key)
    if ordered == leaves and len(leaves) == len(expr.args):
        return expr
    result = ordered[0]
    for leaf in ordered[1:]:
        result = rebuild(op, (result, leaf), ())
    return result


def _collapse_unsigned_comparison(expr: Expr) -> Expr:
    """Rewrite unsigned comparisons whose constant sits at a domain edge."""
    a, b = expr.args
    mask = a.sort.mask  # ult/ule operands are always bitvectors
    if expr.op == "ult":
        if b.is_const and b.value == 1:
            return ast.eq(a, ast.bv_const(0, a.width))
        if a.is_const and a.value == mask:
            return FALSE
        if b.is_const and b.value == mask:
            # x < max  <=>  x != max
            return ast.ne(a, ast.bv_const(mask, a.width))
        return expr
    # ule
    if b.is_const and b.value == 0:
        return ast.eq(a, ast.bv_const(0, a.width))
    if b.is_const and b.value == mask:
        return TRUE
    if a.is_const and a.value == mask:
        return ast.eq(b, ast.bv_const(mask, b.width))
    return expr


def canonical_constraint_set(constraints: Iterable[Expr]) -> frozenset[Expr]:
    """Canonical frozen form of a constraint conjunction.

    Top-level conjunctions are flattened, every conjunct canonicalized,
    tautologies dropped and duplicates merged by the set. A set containing
    :data:`repro.solver.ast.FALSE` denotes a trivially unsatisfiable
    query (callers may short-circuit without consulting a solver).
    """
    canonical: set[Expr] = set()
    for constraint in constraints:
        rewritten = canonicalize(constraint)
        parts = rewritten.args if rewritten.op == "and" else (rewritten,)
        for part in parts:
            if part.is_true:
                continue
            if part.is_false:
                return frozenset((FALSE,))
            canonical.add(part)
    return frozenset(canonical)
