"""Satisfiability search over bounded bitvector/boolean constraints.

This is the repo's substitute for the Z3/STP SMT solvers the Achilles paper
calls into. The decision procedure is:

1. **Definition elimination** — constraints of the form ``var == expr``
   (``var`` not occurring in ``expr``) are treated as definitions and
   substituted away. Message checksums and the Achilles "client message =
   server message" glue constraints collapse here.
2. **Interval propagation** (:mod:`repro.solver.propagate`).
3. **Backtracking search** with fail-first variable selection, domain
   enumeration for small domains and bisection for large ones.

Before any of that, :meth:`Solver.check` canonicalizes every constraint
(:mod:`repro.solver.simplify`): commuted/reordered/negated variants of the
same query collapse onto one shape, which both trims trivially-true
conjuncts ahead of the search and makes the canonical query cache
(:mod:`repro.solver.cache`) used by the symbolic-execution engine land on
the same key for all of them.

In the full exploration pipeline this module is the *last* layer: queries
flow canonicalize → query cache (identical queries) → incremental frame
stack (:mod:`repro.solver.incremental`, prefix-sharing queries resolved by
reused propagation fixpoints) → and only on those fast paths missing does
a from-scratch :meth:`Solver.check` run.

Every SAT answer is verified by concrete evaluation of all original
constraints, so propagation bugs cannot produce wrong models. Domains are
finite, so the search is complete: ``unsat`` answers are proofs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SolverError, SolverTimeout
from repro.obs import trace as obs_trace
from repro.solver import ast
from repro.solver.ast import Expr
from repro.solver.evalmodel import all_hold, evaluate
from repro.solver.interval import Interval
from repro.solver.propagate import Domains, forward, initial_domains, propagate
from repro.solver.simplify import canonicalize
from repro.solver.sorts import BOOL
from repro.solver.walk import collect_vars, collect_vars_all, expr_size, substitute

SAT = "sat"
UNSAT = "unsat"

_ENUMERATION_LIMIT = 512


@dataclass
class SatResult:
    """Outcome of a satisfiability check.

    Attributes:
        status: ``"sat"`` or ``"unsat"``.
        model: for SAT, a mapping from variable expressions to unsigned
            ints covering every variable in the constraints (and any
            requested extra variables); ``None`` for UNSAT.
    """

    status: str
    model: dict[Expr, int] | None = None

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    def value(self, var: Expr, default: int = 0) -> int:
        """Model value of ``var`` (unconstrained variables default to 0)."""
        if self.model is None:
            raise SolverError("no model available on an unsat result")
        return self.model.get(var, default)


@dataclass
class SolverStats:
    """Counters describing the work a solver instance has performed.

    ``cache_hits`` / ``cache_misses`` count canonical-query-cache lookups
    made *on this solver's behalf* — the :class:`~repro.symex.engine.Engine`
    consults its :class:`~repro.solver.cache.QueryCache` before calling
    :meth:`Solver.check` and mirrors the outcome here, so ``queries`` only
    grows on misses.

    The ``frames_*`` / ``quick_*`` / ``propagation_seconds`` /
    ``incremental_fallbacks`` counters describe the incremental layer
    (:class:`~repro.solver.incremental.IncrementalSolver`) when one wraps
    this solver: frames pushed onto / reused from the assertion stack,
    queries answered by the propagation-contradiction and verified-candidate
    fast paths, wall clock spent in incremental propagation, and queries
    that fell back to a from-scratch :meth:`Solver.check`.
    """

    queries: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    branch_steps: int = 0
    propagation_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    # Durable-cache counters: the subset of cache_hits answered by
    # records a DiskCacheStore loaded from a previous run, and what that
    # load salvaged from / refused out of damaged segment files.
    disk_hits: int = 0
    salvaged_records: int = 0
    dropped_records: int = 0
    frames_pushed: int = 0
    frames_reused: int = 0
    propagation_seconds: float = 0.0
    quick_sats: int = 0
    quick_unsats: int = 0
    incremental_fallbacks: int = 0

    # -- aggregation ---------------------------------------------------------
    #
    # The parallel solver service runs one SolverStats per worker chunk and
    # folds them into a single aggregate on join; every counter is a plain
    # sum, so merging is associative and (for the integer fields) order-
    # independent. ``propagation_seconds`` is a float accumulator — callers
    # that need bit-identical aggregates must merge in a fixed order, which
    # is what the service's chunk-index-ordered join does.

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Fold ``other``'s counters into this instance (returns self)."""
        for field_name in _STATS_FIELDS:
            setattr(self, field_name,
                    getattr(self, field_name) + getattr(other, field_name))
        return self

    def __iadd__(self, other: "SolverStats") -> "SolverStats":
        return self.merge(other)

    def copy(self) -> "SolverStats":
        """Independent snapshot (for before/after deltas)."""
        clone = SolverStats()
        for field_name in _STATS_FIELDS:
            setattr(clone, field_name, getattr(self, field_name))
        return clone

    def delta_since(self, snapshot: "SolverStats") -> "SolverStats":
        """Counters accumulated since ``snapshot`` (taken via :meth:`copy`)."""
        diff = SolverStats()
        for field_name in _STATS_FIELDS:
            setattr(diff, field_name,
                    getattr(self, field_name) - getattr(snapshot, field_name))
        return diff

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit (0.0 when none were made)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


_STATS_FIELDS = tuple(SolverStats.__dataclass_fields__)


@dataclass
class Solver:
    """A reusable satisfiability checker with a step budget and counters.

    The solver is stateless between queries (no incremental assertion
    stack); Achilles re-poses queries with explicit constraint lists, which
    keeps the engine simple and makes caching by the caller trivial.
    """

    max_branch_steps: int = 2_000_000
    stats: SolverStats = field(default_factory=SolverStats)

    def check(self, constraints: Iterable[Expr],
              extra_vars: Sequence[Expr] = (),
              seed_domains: dict[Expr, Interval] | None = None) -> SatResult:
        """Decide satisfiability of the conjunction of ``constraints``.

        Args:
            constraints: boolean expressions.
            extra_vars: variables to include in the model even when they do
                not occur in any constraint (they take value 0).
            seed_domains: optional per-variable intervals already *implied
                by the constraints* (e.g. an incremental frame stack's
                propagation fixpoint). The search starts from these instead
                of ⊤, so propagation re-derives less; soundness requires
                that every seed really is implied — a caller-side bug here
                is caught by the final model verification for SAT answers,
                but an unjustified seed could turn SAT into UNSAT.
        """
        tracer = obs_trace.active
        if tracer is None:
            return self._check(constraints, extra_vars, seed_domains)
        with tracer.span("solver.scratch"):
            return self._check(constraints, extra_vars, seed_domains)

    def _check(self, constraints: Iterable[Expr],
               extra_vars: Sequence[Expr] = (),
               seed_domains: dict[Expr, Interval] | None = None) -> SatResult:
        self.stats.queries += 1
        flat = _flatten(constraints)
        for c in flat:
            if c.sort != BOOL:
                raise SolverError("constraints must be boolean expressions")
        # Canonicalize before searching: syntactic variants collapse, and
        # rewrites may fold conjuncts to constants outright. The *original*
        # constraints are kept for model completion and final verification.
        canon = _flatten([canonicalize(c) for c in flat])
        if any(c.is_false for c in canon):
            return self._answer(SatResult(UNSAT))
        canon = [c for c in canon if not c.is_true]

        split, split_defs = _byte_split(canon)
        remaining, definitions = _eliminate_definitions(split)
        # Substitution rebuilds constraints in whatever shape the templates
        # had; canonicalizing again lets structurally-cancelling forms
        # (e.g. a checksum equated with its own definition) collapse before
        # the search sees them.
        remaining = _flatten([canonicalize(c) for c in remaining])
        if any(c.is_false for c in remaining):
            return self._answer(SatResult(UNSAT))
        remaining = [c for c in remaining if not c.is_true]
        model = self._search(remaining, seed_domains)
        if model is None:
            return self._answer(SatResult(UNSAT))

        _extend_with_definitions(model, definitions)
        _extend_with_definitions(model, split_defs)
        for var in extra_vars:
            model.setdefault(var, 0)
        for var in collect_vars_all(flat):
            model.setdefault(var, 0)
        if not all_hold(flat, model):
            raise SolverError("internal error: candidate model failed verification")
        return self._answer(SatResult(SAT, model))

    def is_satisfiable(self, constraints: Iterable[Expr]) -> bool:
        return self.check(constraints).is_sat

    # -- internals -----------------------------------------------------------

    def _answer(self, result: SatResult) -> SatResult:
        if result.is_sat:
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        return result

    def _search(self, constraints: list[Expr],
                seed_domains: dict[Expr, Interval] | None = None,
                ) -> dict[Expr, int] | None:
        """Core backtracking search; returns a model or None (unsat).

        Constraints are repaired in ascending variable-count order: small
        range/membership constraints get fixed first, leaving wide
        equalities (checksums) last, where interval propagation can invert
        them once all but one variable is pinned.
        """
        ordered = sorted(constraints,
                         key=lambda c: (len(collect_vars(c)), expr_size(c)))
        domains = initial_domains(ordered)
        if seed_domains:
            # Start from the caller's already-narrowed fixpoint instead of
            # ⊤. Only variables that survived definition elimination /
            # byte splitting appear in `domains`; seeds for eliminated or
            # split-away variables simply do not apply.
            for var, current in domains.items():
                seed = seed_domains.get(var)
                if seed is None:
                    continue
                narrowed = current.intersect(seed)
                if narrowed is None:
                    # Seeds are implied by the constraints, so an empty
                    # intersection is a (caller-provided) UNSAT proof.
                    return None
                domains[var] = narrowed
        return self._descend(ordered, domains)

    def _descend(self, constraints: list[Expr],
                 domains: Domains) -> dict[Expr, int] | None:
        self.stats.propagation_calls += 1
        narrowed = propagate(constraints, domains)
        if narrowed is None:
            return None

        # Fast path: try the all-lower-bounds assignment.
        candidate = {var: domain.lo for var, domain in narrowed.items()}
        violated = _first_violated(constraints, candidate)
        if violated is None:
            return candidate

        # Disjunctions are case-split DPLL-style: assert one arm at a time,
        # *replacing* the disjunction so it cannot be re-split. Value
        # enumeration cannot coordinate the multi-variable arms.
        arms = _split_arms(violated)
        if arms is not None:
            rest = [c for c in constraints if c is not violated]
            for arm in arms:
                if self.stats.branch_steps >= self.max_branch_steps:
                    raise SolverTimeout(
                        f"solver exceeded {self.max_branch_steps} branch steps")
                self.stats.branch_steps += 1
                model = self._descend(rest + _flatten([arm]), narrowed)
                if model is not None:
                    return model
            return None

        branch_var = _pick_branch_var(violated, narrowed)
        if branch_var is None:
            # Every variable of the violated constraint is pinned; the
            # constraint is definitely false on this branch.
            return None

        if self.stats.branch_steps >= self.max_branch_steps:
            raise SolverTimeout(
                f"solver exceeded {self.max_branch_steps} branch steps")

        domain = narrowed[branch_var]
        if domain.size <= _ENUMERATION_LIMIT:
            for value in domain:
                self.stats.branch_steps += 1
                trial = dict(narrowed)
                trial[branch_var] = Interval(value, value)
                model = self._descend(constraints, trial)
                if model is not None:
                    return model
            return None

        mid = (domain.lo + domain.hi) // 2
        for half in (Interval(domain.lo, mid), Interval(mid + 1, domain.hi)):
            self.stats.branch_steps += 1
            trial = dict(narrowed)
            trial[branch_var] = half
            model = self._descend(constraints, trial)
            if model is not None:
                return model
        return None


def _flatten(constraints: Iterable[Expr]) -> list[Expr]:
    """Split top-level conjunctions into individual constraints."""
    flat: list[Expr] = []
    for constraint in constraints:
        if constraint.op == "and":
            flat.extend(constraint.args)
        else:
            flat.append(constraint)
    return flat


def _byte_split(constraints: list[Expr]) -> tuple[list[Expr],
                                                  list[tuple[Expr, Expr]]]:
    """Decompose wide variables into byte variables.

    Every byte-aligned variable wider than 8 bits is replaced by a
    big-endian concat of fresh 8-bit variables. Combined with the
    extract-over-concat rewriting in :func:`repro.solver.ast.extract`,
    message-style arithmetic (checksums over extracted bytes, field
    comparisons) collapses to byte-level expressions, keeping search
    domains small and interval propagation precise.

    Returns:
        The rewritten constraints and ``(original_var, concat_expr)``
        definitions for rebuilding models.
    """
    wide = [var for var in collect_vars_all(constraints)
            if var.sort != BOOL and var.width > 8 and var.width % 8 == 0]
    if not wide:
        return constraints, []
    mapping: dict[Expr, Expr] = {}
    split_defs: list[tuple[Expr, Expr]] = []
    for var in sorted(wide, key=lambda v: v.name):
        count = var.width // 8
        parts = [ast.bv_var(f"{var.name}::b{i}", 8) for i in range(count)]
        combined = parts[0]
        for part in parts[1:]:
            combined = ast.concat(combined, part)
        mapping[var] = combined
        split_defs.append((var, combined))
    return [substitute(c, mapping) for c in constraints], split_defs


def _first_violated(constraints: list[Expr], model: dict[Expr, int]) -> Expr | None:
    cache: dict[Expr, int] = {}
    for constraint in constraints:
        if not evaluate(constraint, model, cache):
            return constraint
    return None


def _split_arms(violated: Expr) -> tuple[Expr, ...] | None:
    """Case-split alternatives of a violated constraint, if it has any.

    ``or`` splits into its arms; ``not(and(...))`` into the negated arms;
    ``ite(c, t, e)`` into the two guarded branches. Returns None for
    constraints without disjunctive structure.
    """
    if violated.op == "or":
        return violated.args
    if violated.op == "not" and violated.args[0].op == "and":
        return tuple(ast.not_(arg) for arg in violated.args[0].args)
    if violated.op == "ite":
        cond, then, alt = violated.args
        return (ast.and_(cond, then), ast.and_(ast.not_(cond), alt))
    return None


def _pick_branch_var(violated: Expr, domains: Domains) -> Expr | None:
    """Fail-first: the smallest non-singleton domain in the violated constraint.

    Ties break on the variable name so the search order is independent of
    hash randomization — reproducibility matters for the benchmarks, and
    some orders are pathologically worse than others.
    """
    best: Expr | None = None
    best_key: tuple[int, str] | None = None
    for var in collect_vars(violated):
        domain = domains.get(var)
        if domain is None or domain.is_singleton:
            continue
        key = (domain.size, var.name)
        if best_key is None or key < best_key:
            best, best_key = var, key
    return best


def _eliminate_definitions(
        constraints: list[Expr]) -> tuple[list[Expr], list[tuple[Expr, Expr]]]:
    """Substitute away ``var == expr`` definitions.

    Returns the remaining constraints and the eliminated ``(var, expr)``
    pairs in elimination order. A definition's right-hand side may reference
    variables eliminated *later*, so models are rebuilt in reverse order.
    """
    remaining = list(constraints)
    definitions: list[tuple[Expr, Expr]] = []
    progress = True
    while progress:
        progress = False
        for index, constraint in enumerate(remaining):
            definition = _as_definition(constraint)
            if definition is None:
                continue
            var, rhs = definition
            del remaining[index]
            mapping = {var: rhs}
            remaining = [substitute(c, mapping) for c in remaining]
            definitions = [(v, substitute(e, mapping)) for v, e in definitions]
            definitions.append((var, rhs))
            progress = True
            break
    return remaining, definitions


def _as_definition(constraint: Expr) -> tuple[Expr, Expr] | None:
    if constraint.op != "eq":
        return None
    lhs, rhs = constraint.args
    for var, expr in ((lhs, rhs), (rhs, lhs)):
        if var.is_var and var not in collect_vars(expr):
            return var, expr
    return None


def _extend_with_definitions(model: dict[Expr, int],
                             definitions: list[tuple[Expr, Expr]]) -> None:
    """Evaluate eliminated definitions (in reverse) to complete the model."""
    for var, rhs in reversed(definitions):
        for free in collect_vars(rhs):
            model.setdefault(free, 0)
        model[var] = evaluate(rhs, model)


def check(constraints: Iterable[Expr], extra_vars: Sequence[Expr] = ()) -> SatResult:
    """Module-level convenience wrapper using a fresh :class:`Solver`.

    A fresh instance per call keeps the convenience API stateless: a shared
    module-level solver would accumulate :class:`SolverStats` across
    unrelated runs and poison benchmark counters.
    """
    return Solver().check(constraints, extra_vars)


def is_satisfiable(constraints: Iterable[Expr]) -> bool:
    return Solver().check(constraints).is_sat
