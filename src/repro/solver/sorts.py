"""Sorts (types) for solver expressions.

The solver works over two families of sorts, mirroring the fragment of SMT
that Achilles needs (the paper uses STP/Z3 over bitvectors and booleans):

* :class:`BoolSort` — the boolean sort.
* :class:`BitVecSort` — fixed-width bitvectors; message bytes are 8-bit
  bitvectors and multi-byte fields are wider bitvectors.
"""

from __future__ import annotations

from repro.errors import SortError


class Sort:
    """Base class for expression sorts."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.__class__.__name__


class BoolSort(Sort):
    """The boolean sort. All instances are interchangeable."""

    __slots__ = ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoolSort)

    def __hash__(self) -> int:
        return hash("BoolSort")


class BitVecSort(Sort):
    """Fixed-width bitvector sort.

    Values of this sort are unsigned integers in ``[0, 2**width)``. Signed
    interpretations are applied by individual operators (``slt`` etc.), not
    by the sort.
    """

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise SortError(f"bitvector width must be positive, got {width}")
        self.width = width

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BitVecSort) and other.width == self.width

    def __hash__(self) -> int:
        return hash(("BitVecSort", self.width))

    def __repr__(self) -> str:
        return f"BitVec({self.width})"

    @property
    def mask(self) -> int:
        """Bitmask covering the full width (``2**width - 1``)."""
        return (1 << self.width) - 1

    @property
    def size(self) -> int:
        """Number of distinct values of this sort (``2**width``)."""
        return 1 << self.width

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into the unsigned range of this sort."""
        return value & self.mask

    def to_signed(self, value: int) -> int:
        """Interpret an unsigned ``value`` as two's-complement signed."""
        value = self.wrap(value)
        if value >= 1 << (self.width - 1):
            return value - (1 << self.width)
        return value

    def from_signed(self, value: int) -> int:
        """Encode a signed integer as its two's-complement unsigned value."""
        return self.wrap(value)


BOOL = BoolSort()

_BV_CACHE: dict[int, BitVecSort] = {}


def bitvec_sort(width: int) -> BitVecSort:
    """Return the (cached) bitvector sort of the given width."""
    sort = _BV_CACHE.get(width)
    if sort is None:
        sort = BitVecSort(width)
        _BV_CACHE[width] = sort
    return sort


BV8 = bitvec_sort(8)
BV16 = bitvec_sort(16)
BV32 = bitvec_sort(32)
BV64 = bitvec_sort(64)
