"""Traversal and rewriting utilities over expression trees.

These helpers are used throughout the Achilles core: collecting the symbolic
variables of a path predicate, substituting client message bytes for shared
message variables, and measuring expression sizes for reporting.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.solver import ast
from repro.solver.ast import Expr


def collect_vars(expr: Expr) -> set[Expr]:
    """Return the set of variable nodes occurring in ``expr``."""
    found: set[Expr] = set()
    _walk_vars(expr, found, set())
    return found


def collect_vars_all(exprs: Iterable[Expr]) -> set[Expr]:
    """Return the set of variable nodes occurring in any of ``exprs``."""
    found: set[Expr] = set()
    visited: set[Expr] = set()
    for expr in exprs:
        _walk_vars(expr, found, visited)
    return found


def _walk_vars(expr: Expr, found: set[Expr], visited: set[Expr]) -> None:
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        if node.is_var:
            found.add(node)
        else:
            stack.extend(node.args)


def expr_size(expr: Expr) -> int:
    """Number of distinct nodes in ``expr`` (shared subtrees counted once)."""
    seen: set[Expr] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(node.args)
    return len(seen)


def substitute(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Replace variable nodes per ``mapping``, rebuilding through constructors.

    Rebuilding re-triggers the construction-time simplifications, so the
    result is folded where the substitution made subtrees concrete.
    """
    cache: dict[Expr, Expr] = {}
    return _substitute(expr, mapping, cache)


def _substitute(expr: Expr, mapping: Mapping[Expr, Expr], cache: dict[Expr, Expr]) -> Expr:
    hit = cache.get(expr)
    if hit is not None:
        return hit
    if expr.is_var:
        result = mapping.get(expr, expr)
    elif not expr.args:
        result = expr
    else:
        new_args = tuple(_substitute(a, mapping, cache) for a in expr.args)
        if new_args == expr.args:
            result = expr
        else:
            result = rebuild(expr.op, new_args, expr.params)
    cache[expr] = result
    return result


def rebuild(op: str, args: tuple[Expr, ...], params: tuple) -> Expr:
    """Reconstruct a node through the simplifying constructors in ``ast``."""
    builders: dict[str, Callable[..., Expr]] = {
        "add": ast.add,
        "sub": ast.sub,
        "mul": ast.mul,
        "udiv": ast.udiv,
        "urem": ast.urem,
        "bvand": ast.bvand,
        "bvor": ast.bvor,
        "bvxor": ast.bvxor,
        "shl": ast.shl,
        "lshr": ast.lshr,
        "ashr": ast.ashr,
        "eq": ast.eq,
        "ult": ast.ult,
        "ule": ast.ule,
        "slt": ast.slt,
        "sle": ast.sle,
        "not": ast.not_,
        "and": ast.and_,
        "or": ast.or_,
        "neg": ast.neg,
        "bvnot": ast.bvnot,
        "ite": ast.ite,
        "concat": ast.concat,
    }
    if op in builders:
        return builders[op](*args)
    if op == "zext":
        return ast.zext(args[0], params[0])
    if op == "sext":
        return ast.sext(args[0], params[0])
    if op == "extract":
        return ast.extract(args[0], params[0], params[1])
    raise ValueError(f"cannot rebuild unknown operator {op}")


def simplify(expr: Expr) -> Expr:
    """Bottom-up simplification pass (rebuild every node through constructors)."""
    return substitute(expr, {})
