"""Traversal and rewriting utilities over expression trees.

These helpers are used throughout the Achilles core: collecting the symbolic
variables of a path predicate, substituting client message bytes for shared
message variables, and measuring expression sizes for reporting.

Because expression nodes are interned (see :mod:`repro.solver.ast`), the
traversals here memoize per-node: ``collect_vars`` and ``expr_size`` cache
their result against the node itself in weak-keyed tables, so the repeated
queries the solver hot path issues (variable counts for constraint ordering,
definition detection) cost one dict lookup after the first visit.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Mapping

from repro.solver import ast
from repro.solver.ast import Expr

#: Per-node memo tables. Weak keys: entries die with their expression.
_VARS_CACHE: "weakref.WeakKeyDictionary[Expr, frozenset[Expr]]" = (
    weakref.WeakKeyDictionary())
_SIZE_CACHE: "weakref.WeakKeyDictionary[Expr, int]" = weakref.WeakKeyDictionary()


def collect_vars(expr: Expr) -> frozenset[Expr]:
    """Return the set of variable nodes occurring in ``expr`` (memoized)."""
    if expr.is_var:
        # Not cached: the entry's value would strongly reference its own
        # key and pin the variable in the weak table forever.
        return frozenset((expr,))
    cached = _VARS_CACHE.get(expr)
    if cached is not None:
        return cached
    found: set[Expr] = set()
    _walk_vars(expr, found, set())
    result = frozenset(found)
    _VARS_CACHE[expr] = result
    return result


def collect_vars_all(exprs: Iterable[Expr]) -> set[Expr]:
    """Return the set of variable nodes occurring in any of ``exprs``."""
    found: set[Expr] = set()
    for expr in exprs:
        found |= collect_vars(expr)
    return found


def _walk_vars(expr: Expr, found: set[Expr], visited: set[Expr]) -> None:
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        cached = _VARS_CACHE.get(node)
        if cached is not None:
            found |= cached
        elif node.is_var:
            found.add(node)
        else:
            stack.extend(node.args)


def expr_size(expr: Expr) -> int:
    """Number of distinct nodes in ``expr`` (shared subtrees counted once)."""
    cached = _SIZE_CACHE.get(expr)
    if cached is not None:
        return cached
    seen: set[Expr] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(node.args)
    result = len(seen)
    _SIZE_CACHE[expr] = result
    return result


def substitute(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Replace variable nodes per ``mapping``, rebuilding through constructors.

    Rebuilding re-triggers the construction-time simplifications, so the
    result is folded where the substitution made subtrees concrete. When no
    variable of ``expr`` is mapped the expression is returned unchanged
    without any rebuilding (cheap thanks to the memoized ``collect_vars``).
    """
    if not mapping or collect_vars(expr).isdisjoint(mapping):
        return expr
    cache: dict[Expr, Expr] = {}
    return _substitute(expr, mapping, cache)


def _substitute(expr: Expr, mapping: Mapping[Expr, Expr], cache: dict[Expr, Expr]) -> Expr:
    hit = cache.get(expr)
    if hit is not None:
        return hit
    if expr.is_var:
        result = mapping.get(expr, expr)
    elif not expr.args:
        result = expr
    elif collect_vars(expr).isdisjoint(mapping):
        result = expr
    else:
        new_args = tuple(_substitute(a, mapping, cache) for a in expr.args)
        if new_args == expr.args:
            result = expr
        else:
            result = rebuild(expr.op, new_args, expr.params)
    cache[expr] = result
    return result


_BUILDERS: dict[str, Callable[..., Expr]] = {
    "add": ast.add,
    "sub": ast.sub,
    "mul": ast.mul,
    "udiv": ast.udiv,
    "urem": ast.urem,
    "bvand": ast.bvand,
    "bvor": ast.bvor,
    "bvxor": ast.bvxor,
    "shl": ast.shl,
    "lshr": ast.lshr,
    "ashr": ast.ashr,
    "eq": ast.eq,
    "ult": ast.ult,
    "ule": ast.ule,
    "slt": ast.slt,
    "sle": ast.sle,
    "not": ast.not_,
    "and": ast.and_,
    "or": ast.or_,
    "neg": ast.neg,
    "bvnot": ast.bvnot,
    "ite": ast.ite,
    "concat": ast.concat,
}


def rebuild(op: str, args: tuple[Expr, ...], params: tuple) -> Expr:
    """Reconstruct a node through the simplifying constructors in ``ast``."""
    builder = _BUILDERS.get(op)
    if builder is not None:
        return builder(*args)
    if op == "zext":
        return ast.zext(args[0], params[0])
    if op == "sext":
        return ast.sext(args[0], params[0])
    if op == "extract":
        return ast.extract(args[0], params[0], params[1])
    raise ValueError(f"cannot rebuild unknown operator {op}")


def simplify(expr: Expr) -> Expr:
    """Canonical simplification pass (see :mod:`repro.solver.simplify`)."""
    from repro.solver.simplify import canonicalize

    return canonicalize(expr)
