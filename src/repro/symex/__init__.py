"""Symbolic execution engine — the repo's S2E substitute.

Public surface:

* :class:`Engine` / :class:`EngineConfig` — path exploration over
  deterministic node programs.
* :class:`ExecutionContext` — the API node programs are written against.
* :class:`PathObserver` — extension hook used by the Achilles analysis.
* :mod:`repro.symex.annotations` — the paper's §5.2 annotation vocabulary.
* Path verdict constants and result records in :mod:`repro.symex.state`.
"""

from repro.symex.annotations import (
    constant_stub,
    constant_stub_bytes,
    make_symbolic,
    mark_accept,
    mark_reject,
    symbolic_return,
)
from repro.symex.context import ExecutionContext
from repro.symex.engine import (
    Engine,
    EngineConfig,
    ExplorationResult,
    ExplorationStats,
    NodeProgram,
    client_verdict,
    server_verdict,
)
from repro.symex.observers import PathObserver
from repro.symex.state import (
    ACCEPTED,
    COMPLETED,
    DROPPED,
    INFEASIBLE,
    LIMIT,
    PRUNED,
    REJECTED,
    PathResult,
    PathState,
    SentMessage,
)

__all__ = [
    "ACCEPTED", "COMPLETED", "DROPPED", "Engine", "EngineConfig",
    "ExecutionContext", "ExplorationResult", "ExplorationStats", "INFEASIBLE",
    "LIMIT", "NodeProgram", "PRUNED", "PathObserver", "PathResult",
    "PathState", "REJECTED", "SentMessage", "client_verdict",
    "constant_stub", "constant_stub_bytes", "make_symbolic", "mark_accept",
    "mark_reject", "server_verdict", "symbolic_return",
]
