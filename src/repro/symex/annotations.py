"""Achilles annotations (paper §5.2) expressed over the context API.

The paper lets operators annotate the system under test, either in source
or at runtime through S2E plugins. The table below maps the paper's
annotation vocabulary to this module:

=====================  ========================================================
Paper annotation        Here
=====================  ========================================================
``mark_accept``         :func:`mark_accept` (or ``ctx.accept()``)
``mark_reject``         :func:`mark_reject` (or ``ctx.reject()``)
``make_symbolic``       :func:`make_symbolic` (or ``ctx.fresh_bitvec()``)
``function_start`` /
``function_end`` /
``return_symbolic`` /
``drop_path``           :func:`symbolic_return` — over-approximate a function
                        by a fresh constrained symbolic return value
(constant stubbing)     :func:`constant_stub` — the paper's trick of replacing
                        checksum/digest/MAC computations with a predefined
                        constant on both client and server (§6.1)
=====================  ========================================================
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import AnnotationError
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext


def mark_accept(ctx: ExecutionContext, label: str | None = None) -> None:
    """Terminate the current server path as accepting."""
    ctx.accept(label)


def mark_reject(ctx: ExecutionContext, label: str | None = None) -> None:
    """Terminate the current server path as rejecting."""
    ctx.reject(label)


def make_symbolic(ctx: ExecutionContext, name: str, width: int = 8) -> Expr:
    """Introduce a fresh unconstrained symbolic value."""
    return ctx.fresh_bitvec(name, width)


def symbolic_return(ctx: ExecutionContext, name: str, width: int,
                    lo: int | None = None, hi: int | None = None,
                    constrain: Callable[[Expr], Sequence[Expr]] | None = None) -> Expr:
    """Over-approximate a function by a constrained symbolic return value.

    This is the paper's ``function_start``/``return_symbolic``/``drop_path``
    pattern (Figure 9): the function body is bypassed entirely and the
    return value is a fresh symbolic constrained to the declared behaviour.

    Args:
        name: symbolic variable base name.
        width: bit width of the return value.
        lo/hi: optional inclusive unsigned bounds on the return value.
        constrain: optional callback producing extra constraints on the
            value (applied via ``ctx.assume``).
    """
    value = ctx.fresh_bitvec(name, width)
    if lo is not None:
        ctx.assume(value >= lo)
    if hi is not None:
        ctx.assume(value <= hi)
    if constrain is not None:
        for constraint in constrain(value):
            ctx.assume(constraint)
    return value


def constant_stub(value: int, width: int = 8) -> Expr:
    """A predefined constant standing in for checksum/digest/MAC output.

    The paper's evaluation bypasses cryptographic fields by making the
    client *write* this constant and the server *check* it (§6.1); use the
    same stub expression on both sides.
    """
    if width <= 0:
        raise AnnotationError("constant_stub width must be positive")
    return ast.bv_const(value, width)


def constant_stub_bytes(values: Sequence[int]) -> list[Expr]:
    """A multi-byte predefined constant (e.g. a 16-byte digest stub)."""
    return [ast.bv_const(v, 8) for v in values]
