"""Execution context handed to node programs under symbolic execution.

A *node program* is a deterministic Python callable ``program(ctx)`` that
expresses a distributed-system node against this context API instead of
real I/O:

* symbolic inputs come from :meth:`ExecutionContext.fresh_bytes` /
  :meth:`fresh_bitvec` (the paper's intercepted ``read`` system calls),
* control flow on symbolic data goes through :meth:`branch`,
* network output goes through :meth:`send` (captured, not transmitted),
* path classification uses :meth:`accept` / :meth:`reject`
  (the paper's ``mark_accept`` / ``mark_reject`` annotations).

Determinism is a hard requirement: the engine forks by *re-executing* the
program with a recorded decision prefix, so two runs with the same branch
decisions must perform identical sequences of context calls.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence, TYPE_CHECKING

from repro.errors import ExplorationLimit, PathDropped, PathInfeasible, SymexError
from repro.solver import ast
from repro.solver.ast import Expr
from repro.solver.evalmodel import evaluate
from repro.solver.sorts import BOOL
from repro.symex import state as path_state
from repro.symex.state import PathState, SentMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.symex.engine import Engine
    from repro.symex.observers import PathObserver


class _PathTerminated(Exception):
    """Internal control-flow signal carrying the path's final verdict."""

    def __init__(self, verdict: str):
        super().__init__(verdict)
        self.verdict = verdict


class ExecutionContext:
    """API surface a node program uses while being symbolically executed."""

    def __init__(self, engine: "Engine", state: PathState,
                 schedule: tuple[bool, ...], observer: "PathObserver",
                 pending: "deque[tuple[bool, ...]]"):
        self._engine = engine
        self._state = state
        self._schedule = schedule
        self._observer = observer
        self._pending = pending

    # -- inspection ---------------------------------------------------------

    @property
    def state(self) -> PathState:
        return self._state

    @property
    def path_condition(self) -> tuple[Expr, ...]:
        """The constraints accumulated so far on this path."""
        return tuple(self._state.constraints)

    @property
    def path_id(self) -> int:
        return self._state.path_id

    # -- symbolic inputs ------------------------------------------------------

    def fresh_bitvec(self, name: str, width: int) -> Expr:
        """A fresh symbolic bitvector input (paper: ``make_symbolic``)."""
        return ast.bv_var(self._state.fresh_name(name), width)

    def fresh_byte(self, name: str) -> Expr:
        return self.fresh_bitvec(name, 8)

    def fresh_bytes(self, name: str, count: int) -> list[Expr]:
        """``count`` fresh symbolic bytes named ``name[i]``."""
        base = self._state.fresh_name(name)
        return [ast.bv_var(f"{base}[{i}]", 8) for i in range(count)]

    def fresh_bool(self, name: str) -> Expr:
        return ast.bool_var(self._state.fresh_name(name))

    # -- control flow ----------------------------------------------------------

    def branch(self, condition) -> bool:
        """Follow a two-way branch on ``condition``; forks if both sides hold.

        Accepts a Python bool (no fork) or a boolean expression. Returns the
        concrete direction this execution follows.
        """
        if isinstance(condition, bool):
            return condition
        if not isinstance(condition, Expr) or condition.sort != BOOL:
            raise SymexError("branch() requires a bool or boolean expression")
        if condition.is_true:
            return True
        if condition.is_false:
            return False

        state = self._state
        if state.branch_count >= self._engine.config.max_branches_per_path:
            raise ExplorationLimit(
                f"path exceeded {self._engine.config.max_branches_per_path} branches")

        if state.branch_count < len(self._schedule):
            direction = self._schedule[state.branch_count]
            self._take(condition, direction)
            return direction

        # Both directions probe as push/pop against the shared pc prefix:
        # the engine's incremental frame stack keeps the prefix propagation
        # and swaps only the final conjunct between the two queries.
        pc = tuple(state.constraints)
        feasible_true, feasible_false = self._engine.branch_feasibility(
            pc, condition)
        explore_true, explore_false = self._observer.on_branch(
            self, condition, feasible_true, feasible_false)
        explore_true = explore_true and feasible_true
        explore_false = explore_false and feasible_false

        if explore_true and explore_false:
            self._engine.note_fork()
            self._pending.append(tuple(state.decisions) + (False,))
            self._take(condition, True)
            return True
        if explore_true:
            self._take(condition, True)
            return True
        if explore_false:
            self._take(condition, False)
            return False
        if feasible_true or feasible_false:
            # The observer vetoed every feasible direction: pruned.
            raise _PathTerminated(path_state.PRUNED)
        raise PathInfeasible("no feasible branch direction")

    def _take(self, condition: Expr, direction: bool) -> None:
        state = self._state
        constraint = condition if direction else ast.not_(condition)
        state.decisions.append(direction)
        state.branch_count += 1
        state.constraints.append(constraint)
        if not self._observer.on_constraint(self, constraint):
            raise _PathTerminated(path_state.PRUNED)

    def assume(self, condition) -> None:
        """Constrain the path; abandons it if the constraint is unsatisfiable."""
        if isinstance(condition, bool):
            if not condition:
                raise PathInfeasible("concrete assumption is false")
            return
        if not isinstance(condition, Expr) or condition.sort != BOOL:
            raise SymexError("assume() requires a bool or boolean expression")
        if condition.is_true:
            return
        state = self._state
        if condition.is_false or not self._engine.is_feasible(
                tuple(state.constraints) + (condition,)):
            raise PathInfeasible("assumption unsatisfiable on this path")
        state.constraints.append(condition)
        if not self._observer.on_constraint(self, condition):
            raise _PathTerminated(path_state.PRUNED)

    def drop_path(self) -> None:
        """Abandon the current path (paper: ``drop_path`` annotation)."""
        raise PathDropped("path dropped by annotation")

    def concretize(self, expr: Expr) -> int:
        """Pin ``expr`` to one concrete value consistent with the path."""
        result = self._engine.solve(tuple(self._state.constraints))
        if result is None:
            raise PathInfeasible("cannot concretize on infeasible path")
        model = dict(result)
        for var in ast_collect(expr):
            model.setdefault(var, 0)
        value = evaluate(expr, model)
        self.assume(expr.eq(value) if expr.sort != BOOL else
                    (expr if value else ast.not_(expr)))
        return value

    # -- network and classification ----------------------------------------------

    def send(self, destination: str, payload: Sequence[Expr | int]) -> None:
        """Capture an outgoing message (one expression per wire byte)."""
        wire: list[Expr] = []
        for item in payload:
            if isinstance(item, int):
                wire.append(ast.bv_const(item, 8))
            elif isinstance(item, Expr) and item.sort != BOOL and item.width == 8:
                wire.append(item)
            else:
                raise SymexError("send() payload items must be bytes "
                                 "(ints or 8-bit expressions)")
        self._state.sends.append(SentMessage(destination, tuple(wire)))

    def accept(self, label: str | None = None) -> None:
        """Terminate the path as *accepting* (paper: ``mark_accept``)."""
        if label is not None:
            self._state.labels.append(label)
        raise _PathTerminated(path_state.ACCEPTED)

    def reject(self, label: str | None = None) -> None:
        """Terminate the path as *rejecting* (paper: ``mark_reject``)."""
        if label is not None:
            self._state.labels.append(label)
        raise _PathTerminated(path_state.REJECTED)

    def label(self, tag: str) -> None:
        """Record a free-form mark on the path (kept in the result)."""
        self._state.labels.append(tag)


def ast_collect(expr: Expr):
    from repro.solver.walk import collect_vars

    return collect_vars(expr)
