"""The symbolic execution engine (re-execution forking).

This is the repo's substitute for the S2E platform: it systematically
enumerates the feasible paths of a deterministic node program. Forking works
by *re-execution*: when a branch is feasible both ways, the engine records
the unexplored direction as a decision-prefix and later re-runs the program
from scratch, replaying the prefix. Re-execution keeps the engine tiny and
correct at the cost of repeated work; solver queries are memoized so replays
are cheap.

Solver queries flow through a layered pipeline — canonicalize → query
cache → incremental frame stack → propagation → full search:

* the canonical :class:`~repro.solver.cache.QueryCache` answers *identical*
  queries (replays, reordered conjuncts, commuted operands all land on the
  same entry; one shared cache lets several engines — e.g. the two
  Achilles phases — reuse each other's answers);
* cache misses go to an :class:`~repro.solver.incremental.IncrementalSolver`
  whose push/pop assertion stack is kept aligned with the decision prefix
  being explored: the common prefix of consecutive queries keeps its
  propagation fixpoint (``frames_reused`` in ``SolverStats``), only the
  differing suffix is re-propagated, and most answers resolve from the
  propagated domains without the from-scratch search.

The engine is deliberately policy-free. Accept/reject classification
defaults follow the paper (§5.1): a server path that sent a reply is
*accepting*, a path that fell back to waiting for input is *rejecting* —
with explicit ``ctx.accept()`` / ``ctx.reject()`` markers taking priority.
Achilles attaches a :class:`~repro.symex.observers.PathObserver` to inject
its incremental Trojan search.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ExplorationLimit, PathDropped, PathInfeasible, SymexError
from repro.obs import trace as obs_trace
from repro.solver import ast
from repro.solver.ast import Expr
from repro.solver.cache import QueryCache
from repro.solver.incremental import IncrementalSolver
from repro.solver.solver import SatResult, Solver
from repro.solver.walk import collect_vars_all
from repro.symex import state as st
from repro.symex.context import ExecutionContext, _PathTerminated
from repro.symex.observers import PathObserver
from repro.symex.state import PathResult, PathState, finalize

NodeProgram = Callable[[ExecutionContext], None]
VerdictPolicy = Callable[[PathState], str]


def server_verdict(state: PathState) -> str:
    """Paper default (§5.1): replying is accepting, returning is rejecting."""
    return st.ACCEPTED if state.sends else st.REJECTED


def client_verdict(state: PathState) -> str:
    """Clients are not classified; finished paths are simply complete."""
    return st.COMPLETED


#: Search orders for the exploration worklist.
DFS = "dfs"
BFS = "bfs"


@dataclass
class EngineConfig:
    """Exploration limits and policies.

    Attributes:
        max_paths: hard cap on completed paths (fork bookkeeping keeps
            going until the worklist drains or this cap is hit).
        max_branches_per_path: per-path symbolic branch budget; exceeding
            it terminates the path with the ``limit`` verdict.
        default_verdict: classification applied when a program returns
            without an explicit accept/reject marker.
        search_order: :data:`DFS` explores the most recent fork first
            (deep paths complete early — the default, matching the
            incremental-discovery behaviour of Figure 10); :data:`BFS`
            drains forks in creation order (shallow coverage first).
        incremental: route cache misses through the push/pop assertion
            stack (:class:`~repro.solver.incremental.IncrementalSolver`)
            so prefix-sharing queries reuse propagation; disable for the
            from-scratch baseline (answers are identical either way).
    """

    max_paths: int = 20_000
    max_branches_per_path: int = 400
    default_verdict: VerdictPolicy = server_verdict
    search_order: str = DFS
    incremental: bool = True


@dataclass
class ExplorationStats:
    """Counters for one exploration run."""

    paths_finished: int = 0
    paths_infeasible: int = 0
    paths_dropped: int = 0
    paths_pruned: int = 0
    paths_limited: int = 0
    forks: int = 0
    elapsed_seconds: float = 0.0

    def merge(self, other: "ExplorationStats") -> "ExplorationStats":
        """Fold another run's counters into this one (returns self).

        ``elapsed_seconds`` is summed like the rest: for sharded runs it
        becomes aggregate CPU-time across shards, and the scheduler
        overwrites it with the coordinator's wall clock afterwards.
        """
        self.paths_finished += other.paths_finished
        self.paths_infeasible += other.paths_infeasible
        self.paths_dropped += other.paths_dropped
        self.paths_pruned += other.paths_pruned
        self.paths_limited += other.paths_limited
        self.forks += other.forks
        self.elapsed_seconds += other.elapsed_seconds
        return self


class ExploreControl:
    """Hook consulted between paths; lets a caller pause or split a run.

    The sharded exploration layer (:mod:`repro.explore`) uses this to
    export frontier prefixes (seeding) and to donate worklist entries to
    other shards (stealing). The engine calls :meth:`checkpoint` with its
    live worklist before popping each schedule; the control may harvest
    entries from it (each removed prefix identifies an unexplored subtree
    that can be replayed elsewhere) and may stop the run by returning
    False — the untouched remainder of the worklist is then published as
    :attr:`ExplorationResult.frontier`.
    """

    def checkpoint(self, worklist: "deque[tuple[bool, ...]]") -> bool:
        """Return False to stop exploring; may mutate ``worklist``."""
        return True


@dataclass
class ExplorationResult:
    """All finished paths of one exploration plus counters.

    Attributes:
        paths: finished paths, in completion order.
        stats: exploration counters.
        executed: ``(decisions, verdict)`` for *every* executed path in
            execution order — including infeasible/dropped/pruned paths
            that never reach ``paths``. Execution order is also path-id
            order, so this is the record the sharded merge uses to
            renumber paths canonically.
        frontier: worklist entries left unexplored when an
            :class:`ExploreControl` stopped the run early (empty for a
            drained exploration). Each entry is a decision prefix that
            can be handed to another engine as a ``roots`` element.
    """

    paths: list[PathResult]
    stats: ExplorationStats
    executed: list[tuple[tuple[bool, ...], str]] = field(default_factory=list)
    frontier: tuple[tuple[bool, ...], ...] = ()

    @property
    def accepting(self) -> list[PathResult]:
        return [p for p in self.paths if p.verdict == st.ACCEPTED]

    @property
    def rejecting(self) -> list[PathResult]:
        return [p for p in self.paths if p.verdict == st.REJECTED]

    @property
    def completed(self) -> list[PathResult]:
        return [p for p in self.paths if p.verdict == st.COMPLETED]


class Engine:
    """Symbolic execution engine over deterministic node programs.

    Args:
        config: exploration limits and policies.
        solver: satisfiability backend (a fresh one per engine by default).
        query_cache: canonical query cache consulted before every solver
            call. Pass a shared instance to let several engines (e.g. the
            two Achilles phases) reuse each other's answers; by default
            each engine gets a private cache.
    """

    def __init__(self, config: EngineConfig | None = None,
                 solver: Solver | None = None,
                 query_cache: QueryCache | None = None,
                 service=None):
        self.config = config or EngineConfig()
        self.solver = solver or Solver()
        # Explicit None check: an empty QueryCache is falsy (len() == 0),
        # and a shared-but-still-empty cache must not be replaced.
        self.query_cache = QueryCache() if query_cache is None else query_cache
        # The incremental layer shares the engine's solver so fallback
        # checks and frame/fast-path counters land on one SolverStats.
        self.incremental = (IncrementalSolver(solver=self.solver)
                            if self.config.incremental else None)
        # Optional batched dispatch (repro.solver.service.SolverService):
        # probe_feasible_batch ships cache-missed probe bundles to its
        # worker pool. Only consulted when the service is parallel — the
        # serial path stays on this engine's own incremental stack.
        self.service = service
        self._stats: ExplorationStats | None = None
        # In-flight async model queries keyed canonically (solve_async):
        # a second query for a key already on the pool attaches to the
        # first instead of dispatching again.
        self._inflight_models: dict = {}

    # -- services used by ExecutionContext ------------------------------------

    def _check(self, constraints: tuple[Expr, ...]) -> SatResult:
        """Decide a cache-missed query via the incremental frame stack.

        The stack is aligned with ``constraints``: frames matching the
        common prefix of the previous query keep their propagation
        fixpoint, only the differing suffix is pushed. With the layer
        disabled this is a plain from-scratch check.
        """
        if self.incremental is None:
            return self.solver.check(constraints)
        return self.incremental.check(constraints)

    def _note_cache_hit(self, key) -> None:
        """Mirror a canonical-cache hit onto this engine's solver stats.

        Reports read ``SolverStats``, not the (possibly shared) cache's
        own counters; warm hits against entries a disk store loaded from
        a previous run are additionally booked as ``disk_hits``.
        """
        stats = self.solver.stats
        stats.cache_hits += 1
        if self.query_cache.is_disk_loaded(key):
            stats.disk_hits += 1

    def is_feasible(self, constraints: tuple[Expr, ...]) -> bool:
        """Satisfiability of a path condition, memoized canonically."""
        tracer = obs_trace.active
        if tracer is None:
            return self._feasibility(constraints)
        with tracer.span("solver.cache"):
            return self._feasibility(constraints)

    def _feasibility(self, constraints: tuple[Expr, ...]) -> bool:
        cache = self.query_cache
        key = cache.key(constraints)
        cached = cache.get_feasible(key)
        if cached is not None:
            self._note_cache_hit(key)
            return cached
        self.solver.stats.cache_misses += 1
        if cache.is_trivially_unsat(key):
            feasible = False
        else:
            feasible = self._check(constraints).is_sat
        cache.put_feasible(key, feasible)
        return feasible

    def probe_feasible_batch(self, prefix: tuple[Expr, ...],
                             probes: list[tuple[Expr, ...]]) -> list[bool]:
        """Feasibility of ``prefix + probe`` for every probe, in order.

        Each probe is memoized canonically exactly like
        :meth:`is_feasible`; with a parallel service attached, the cache
        misses of one call are dispatched as a single probe batch across
        the worker pool instead of being solved one at a time. Answers
        (and the cache entries they leave behind) are identical either
        way — only the wall clock changes.
        """
        if (self.service is None or not self.service.parallel
                or len(probes) < 2):
            return [self.is_feasible(prefix + probe) for probe in probes]
        cache = self.query_cache
        results: list[bool | None] = [None] * len(probes)
        miss_indices: list[int] = []
        miss_keys = []
        for idx, probe in enumerate(probes):
            key = cache.key(prefix + probe)
            cached = cache.get_feasible(key)
            if cached is not None:
                self._note_cache_hit(key)
                results[idx] = cached
                continue
            self.solver.stats.cache_misses += 1
            if cache.is_trivially_unsat(key):
                cache.put_feasible(key, False)
                results[idx] = False
            else:
                miss_indices.append(idx)
                miss_keys.append(key)
        if len(miss_indices) == 1:
            # A lone miss gains nothing from the pool; answer it on this
            # engine's own stack so its counters stay on the SolverStats
            # the reports read (the service's serial fallback would book
            # it on a solver nobody aggregates).
            idx, key = miss_indices[0], miss_keys[0]
            feasible = self._check(prefix + probes[idx]).is_sat
            cache.put_feasible(key, feasible)
            results[idx] = feasible
        elif miss_indices:
            answers = self.service.probe_batch(
                prefix, [probes[i] for i in miss_indices])
            for idx, key, feasible in zip(miss_indices, miss_keys, answers):
                cache.put_feasible(key, feasible)
                results[idx] = feasible
        return results

    def branch_feasibility(self, pc: tuple[Expr, ...],
                           condition: Expr) -> tuple[bool, bool]:
        """Feasibility of both directions of a branch on ``condition``.

        Posed as two push/pop probes against the shared ``pc`` prefix:
        the incremental layer keeps the prefix frames' propagation and
        only the final conjunct differs between the two probes.
        """
        return (self.is_feasible(pc + (condition,)),
                self.is_feasible(pc + (ast.not_(condition),)))

    def solve(self, constraints: tuple[Expr, ...]) -> dict[Expr, int] | None:
        """Model for a path condition (None when unsat), memoized canonically.

        Always returns a fresh dict — the cached entry stays immutable so
        callers (and other engines sharing the cache) cannot corrupt it.
        """
        cache = self.query_cache
        key = cache.key(constraints)
        hit, model = cache.get_model(key)
        if hit:
            self._note_cache_hit(key)
            # The entry may come from a canonically-equal variant whose
            # simplification dropped some of this query's variables; they
            # are unconstrained, so 0 completes the (copied) model.
            return self._complete_model(model, constraints)
        self.solver.stats.cache_misses += 1
        if cache.is_trivially_unsat(key):
            model = None
        else:
            result = self._check(constraints)
            model = dict(result.model) if result.is_sat else None
        cache.put_model(key, model)
        return dict(model) if model is not None else None

    def solve_batch(self, queries: list[tuple[Expr, ...]],
                    ) -> list[dict[Expr, int] | None]:
        """Models for many independent queries, in order.

        Mirrors :meth:`solve` query by query — including the canonical
        model cache, so two canonically-equal queries in one batch share
        one model exactly as they would when posed serially (the first
        becomes the *leader*, later ones complete its model with default
        zeros). With a parallel service only the leaders are dispatched;
        the answers (and witnesses built from them) are therefore
        identical at any worker count.

        Dispatch additionally requires this engine's incremental layer to
        be enabled: pool workers answer through their own
        ``IncrementalSolver``, and a model computed there is only
        guaranteed to match the serial answer when the serial path solves
        the same way (the ``incremental=False`` ablation uses the plain
        backtracking search, whose models can legitimately differ).
        """
        if (self.service is None or not self.service.parallel
                or self.incremental is None or len(queries) < 2):
            return [self.solve(query) for query in queries]
        cache = self.query_cache
        results: list[dict[Expr, int] | None] = [None] * len(queries)
        leader_for_key: dict = {}
        followers: list[tuple[int, object]] = []
        misses: list[tuple[int, object, tuple[Expr, ...]]] = []
        for idx, query in enumerate(queries):
            key = cache.key(query)
            hit, model = cache.get_model(key)
            if hit:
                self._note_cache_hit(key)
                results[idx] = self._complete_model(model, query)
                continue
            self.solver.stats.cache_misses += 1
            if cache.is_trivially_unsat(key):
                cache.put_model(key, None)
            elif key in leader_for_key:
                followers.append((idx, key))
            else:
                leader_for_key[key] = idx
                misses.append((idx, key, query))
        if misses:
            answers = self.service.check_batch([q for _, _, q in misses])
            for (idx, key, _query), answer in zip(misses, answers):
                model = dict(answer.model) if answer.is_sat else None
                cache.put_model(key, model)
                results[idx] = dict(model) if model is not None else None
        for idx, key in followers:
            results[idx] = self._complete_model(cache.peek_model(key),
                                                queries[idx])
        return results

    def solve_async(self, constraints: tuple[Expr, ...]) -> "DeferredModel":
        """Like :meth:`solve`, but may overlap with further exploration.

        With a parallel service (and the incremental layer on), a cache
        miss is submitted to the worker pool and a :class:`DeferredModel`
        handle is returned immediately — the caller keeps exploring while
        the pool solves, and collects the model later via
        :meth:`DeferredModel.result`. Everything else (serial service, no
        service, cache hits, trivially-unsat queries) resolves eagerly, so
        behaviour and answers are exactly :meth:`solve`'s.

        Canonically-equal queries share one in-flight computation: a
        second ``solve_async`` for a key already in flight attaches as a
        follower and completes the leader's model with its own defaulted
        variables — the same leader/follower semantics as
        :meth:`solve_batch`, which is what keeps witnesses byte-identical
        to the serial run at any worker count.
        """
        if (self.service is None or not self.service.parallel
                or self.incremental is None):
            # No pool to overlap with: answer now (the registry below is
            # only ever populated on the parallel path).
            return DeferredModel(engine=self, query=constraints,
                                 value=self.solve(constraints))
        cache = self.query_cache
        key = cache.key(constraints)
        hit, model = cache.get_model(key)
        if hit:
            self._note_cache_hit(key)
            return DeferredModel(engine=self, query=constraints,
                                 value=self._complete_model(model, constraints))
        self.solver.stats.cache_misses += 1
        if cache.is_trivially_unsat(key):
            cache.put_model(key, None)
            return DeferredModel(engine=self, query=constraints, value=None)
        leader = self._inflight_models.get(key)
        if leader is not None:
            return DeferredModel(engine=self, query=constraints, leader=leader)
        future = self.service.submit_check_batch([constraints])
        deferred = DeferredModel(engine=self, query=constraints,
                                 key=key, future=future)
        self._inflight_models[key] = deferred
        return deferred

    @staticmethod
    def _complete_model(model: dict[Expr, int] | None,
                        query: tuple[Expr, ...]) -> dict[Expr, int] | None:
        """Copy a cached model, defaulting this query's missing variables."""
        if model is None:
            return None
        completed = dict(model)
        for var in collect_vars_all(query):
            completed.setdefault(var, 0)
        return completed

    def note_fork(self) -> None:
        if self._stats is not None:
            self._stats.forks += 1

    # -- exploration ---------------------------------------------------------------

    def explore(self, program: NodeProgram,
                observer: PathObserver | None = None, *,
                roots: "Sequence[tuple[bool, ...]] | None" = None,
                control: ExploreControl | None = None,
                order: str | None = None) -> ExplorationResult:
        """Run ``program`` over every feasible path (depth-first).

        Args:
            program: deterministic node program (see
                :mod:`repro.symex.context` for the determinism contract).
            observer: optional hook object; defaults to a no-op observer.
            roots: decision prefixes to seed the worklist with (default:
                the empty prefix, i.e. the whole tree). A prefix exported
                from another engine's :attr:`ExplorationResult.frontier`
                replays deterministically here — scheduled branches take
                the recorded direction without new solver checks — so the
                subtree below it is explored exactly as the exporting run
                would have.
            control: optional :class:`ExploreControl` consulted between
                paths; it may harvest worklist entries (donating subtrees
                to other shards) or stop the run early, leaving the rest
                of the worklist in :attr:`ExplorationResult.frontier`.
            order: worklist order override for this run only (the
                explored tree — and with it every per-path output — is
                order-invariant; only completion sequence and worklist
                shape change). The shard scheduler seeds breadth-first
                this way: a DFS worklist stays as narrow as the tree is
                deep, while BFS widens with the tree's breadth, which is
                what a frontier harvest needs.
        """
        order = order or self.config.search_order
        if order not in (DFS, BFS):
            raise SymexError(f"unknown search order {order!r}")
        observer = observer or PathObserver()
        stats = ExplorationStats()
        self._stats = stats
        results: list[PathResult] = []
        executed: list[tuple[tuple[bool, ...], str]] = []
        # deque: BFS pops from the left in O(1) where list.pop(0) is O(n).
        worklist: deque[tuple[bool, ...]] = deque(
            [()] if roots is None else [tuple(r) for r in roots])
        next_path_id = 0
        stopped = False
        started = time.perf_counter()

        while worklist and (stats.paths_finished + stats.paths_limited
                            < self.config.max_paths):
            if control is not None and not control.checkpoint(worklist):
                stopped = True
                break
            if order == DFS:
                schedule = worklist.pop()
            else:
                schedule = worklist.popleft()
            state = PathState(path_id=next_path_id)
            next_path_id += 1
            ctx = ExecutionContext(self, state, schedule, observer, worklist)
            observer.on_path_start(ctx)
            verdict = self._run_one(program, ctx, state)
            result = finalize(state, verdict)
            executed.append((result.decisions, verdict))

            if verdict == st.INFEASIBLE:
                stats.paths_infeasible += 1
            elif verdict == st.DROPPED:
                stats.paths_dropped += 1
            elif verdict == st.PRUNED:
                stats.paths_pruned += 1
            elif verdict == st.LIMIT:
                stats.paths_limited += 1
                results.append(result)
            else:
                stats.paths_finished += 1
                results.append(result)
            observer.on_path_end(ctx, result)

        stats.elapsed_seconds = time.perf_counter() - started
        self._stats = None
        frontier = tuple(worklist) if (stopped or worklist) else ()
        return ExplorationResult(paths=results, stats=stats,
                                 executed=executed, frontier=frontier)

    def _run_one(self, program: NodeProgram, ctx: ExecutionContext,
                 state: PathState) -> str:
        try:
            program(ctx)
        except _PathTerminated as terminated:
            return terminated.verdict
        except PathInfeasible:
            return st.INFEASIBLE
        except PathDropped:
            return st.DROPPED
        except ExplorationLimit:
            return st.LIMIT
        return state.verdict or self.config.default_verdict(state)


_UNSET = object()


class DeferredModel:
    """Handle for a model query that may still be in flight on the pool.

    Produced by :meth:`Engine.solve_async`. Three shapes exist:

    * *resolved* — the model was available at submit time (cache hit,
      serial backend, trivially unsat); :meth:`result` never blocks.
    * *leader* — the query was dispatched to the worker pool; the first
      :meth:`result` call joins the pool future, stores the model in the
      engine's canonical cache and unregisters the in-flight key.
    * *follower* — a canonically-equal query was already in flight; the
      model is completed from the leader's answer with this query's
      missing variables defaulted to 0, mirroring the serial cache-hit
      path.
    """

    __slots__ = ("_engine", "_query", "_key", "_future", "_leader",
                 "_value", "_raw")

    def __init__(self, engine: Engine, query: tuple[Expr, ...], *,
                 value=_UNSET, key=None, future=None, leader=None):
        self._engine = engine
        self._query = query
        self._key = key
        self._future = future
        self._leader = leader
        self._value = value
        self._raw = None

    @property
    def done(self) -> bool:
        """True when :meth:`result` will not block."""
        if self._value is not _UNSET:
            return True
        if self._leader is not None:
            return self._leader.done
        return self._future.done

    def result(self) -> dict[Expr, int] | None:
        """The model (a fresh dict per call), or None for unsat."""
        if self._value is _UNSET:
            if self._leader is not None:
                self._value = self._engine._complete_model(
                    self._leader._raw_model(), self._query)
            else:
                self._resolve_leader()
        return dict(self._value) if self._value is not None else None

    def _resolve_leader(self) -> None:
        answer = self._future.result()[0]
        self._raw = dict(answer.model) if answer.is_sat else None
        self._engine.query_cache.put_model(self._key, self._raw)
        self._engine._inflight_models.pop(self._key, None)
        self._value = dict(self._raw) if self._raw is not None else None

    def _raw_model(self) -> dict[Expr, int] | None:
        """The leader's uncompleted model, resolving the future if needed."""
        if self._value is _UNSET:
            self._resolve_leader()
        return self._raw
