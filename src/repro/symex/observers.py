"""Observer hooks into the symbolic execution engine.

The paper implements Achilles as S2E plugins that watch the server's
exploration and prune states that can no longer accept a Trojan message
(§3.2, Figure 7). :class:`PathObserver` is the equivalent extension point
here: the engine consults it at every branch and constraint append, and the
Achilles server analysis implements its incremental search on top of it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.solver.ast import Expr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.symex.context import ExecutionContext
    from repro.symex.state import PathResult


class PathObserver:
    """Default no-op observer; subclass and override what you need.

    All hooks run during *every* execution of a path, including scheduled
    replays of a forked prefix — implementations must therefore be
    deterministic functions of the constraint sequence (memoizing solver
    queries is the intended way to keep replays cheap).
    """

    def on_path_start(self, ctx: "ExecutionContext") -> None:
        """Called before the node program starts executing a path."""

    def on_branch(self, ctx: "ExecutionContext", condition: Expr,
                  feasible_true: bool, feasible_false: bool) -> tuple[bool, bool]:
        """Called at a new symbolic branch point.

        Args:
            condition: the branch condition.
            feasible_true/feasible_false: solver feasibility of each side
                under the current path condition.

        Returns:
            The (possibly narrowed) pair of directions to explore. Returning
            ``(False, False)`` abandons the path entirely — this is how
            Achilles prunes server states that no Trojan message can reach.
        """
        return feasible_true, feasible_false

    def on_constraint(self, ctx: "ExecutionContext", constraint: Expr) -> bool:
        """Called after a constraint is appended (branch or assumption).

        Returns:
            False to abandon the path (treated like a prune), True to keep
            exploring.
        """
        return True

    def on_path_end(self, ctx: "ExecutionContext", result: "PathResult") -> None:
        """Called once the path has terminated with a verdict."""
