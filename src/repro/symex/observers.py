"""Observer hooks into the symbolic execution engine.

The paper implements Achilles as S2E plugins that watch the server's
exploration and prune states that can no longer accept a Trojan message
(§3.2, Figure 7). :class:`PathObserver` is the equivalent extension point
here: the engine consults it at every branch and constraint append, and the
Achilles server analysis implements its incremental search on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.solver.ast import Expr
from repro.symex.state import canonical_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.symex.context import ExecutionContext
    from repro.symex.state import PathResult


@dataclass
class ObserverDelta:
    """Serializable reduction of one observer's findings.

    The sharded exploration layer (:mod:`repro.explore`) runs a private
    observer instance inside every shard worker; a delta is what ships
    back to the coordinator. It carries one entry per executed path —
    keyed by the path's decision vector, with an observer-defined
    picklable payload — plus whole-run counters, so the coordinator can
    rebuild the merged observer state in canonical path order regardless
    of which shard explored what (or in what order results arrived).
    """

    #: ``(decisions, payload)`` per executed path; payload semantics are
    #: owned by the observer class that produced the delta.
    per_path: list[tuple[tuple[bool, ...], object]] = field(
        default_factory=list)
    #: Additive whole-run counters (e.g. ``paths_seen``).
    counters: dict[str, int] = field(default_factory=dict)

    @classmethod
    def merge(cls, deltas: "list[ObserverDelta]") -> "ObserverDelta":
        """Combine shard deltas deterministically.

        Per-path entries are sorted by :func:`canonical_key` of their
        decision vector (paths of one exploration are prefix-free, so the
        key is total) and counters are summed — the result is a pure
        function of the explored tree, independent of shard count,
        stealing decisions and arrival order.
        """
        merged = cls()
        for delta in deltas:
            merged.per_path.extend(delta.per_path)
            for name, value in delta.counters.items():
                merged.counters[name] = merged.counters.get(name, 0) + value
        merged.per_path.sort(key=lambda entry: canonical_key(entry[0]))
        return merged


class PathObserver:
    """Default no-op observer; subclass and override what you need.

    All hooks run during *every* execution of a path, including scheduled
    replays of a forked prefix — implementations must therefore be
    deterministic functions of the constraint sequence (memoizing solver
    queries is the intended way to keep replays cheap).
    """

    def on_path_start(self, ctx: "ExecutionContext") -> None:
        """Called before the node program starts executing a path."""

    def on_branch(self, ctx: "ExecutionContext", condition: Expr,
                  feasible_true: bool, feasible_false: bool) -> tuple[bool, bool]:
        """Called at a new symbolic branch point.

        Args:
            condition: the branch condition.
            feasible_true/feasible_false: solver feasibility of each side
                under the current path condition.

        Returns:
            The (possibly narrowed) pair of directions to explore. Returning
            ``(False, False)`` abandons the path entirely — this is how
            Achilles prunes server states that no Trojan message can reach.
        """
        return feasible_true, feasible_false

    def on_constraint(self, ctx: "ExecutionContext", constraint: Expr) -> bool:
        """Called after a constraint is appended (branch or assumption).

        Returns:
            False to abandon the path (treated like a prune), True to keep
            exploring.
        """
        return True

    def on_path_end(self, ctx: "ExecutionContext", result: "PathResult") -> None:
        """Called once the path has terminated with a verdict."""

    # -- sharded exploration protocol ---------------------------------------
    #
    # Observers that support decision-prefix sharding additionally
    # implement the delta triple below: finalize() settles any deferred
    # work after an exploration, delta() snapshots this instance's
    # findings as a picklable ObserverDelta, and restore() rebuilds the
    # instance from a canonical merge of shard deltas. The base class
    # opts out (delta() -> None), which the scheduler rejects when an
    # observer is attached.

    def finalize(self) -> None:
        """Settle deferred work (e.g. in-flight async solves); idempotent."""

    def delta(self) -> ObserverDelta | None:
        """Picklable snapshot of findings, or None when not delta-capable."""
        return None

    def restore(self, delta: ObserverDelta,
                path_ids: dict[tuple[bool, ...], int]) -> None:
        """Replace this observer's findings with a merged delta's.

        Args:
            delta: canonical merge of all shard deltas (including this
                instance's own, if it explored anything).
            path_ids: decision vector -> renumbered path id, from the
                deterministic merge; implementations must translate any
                recorded path ids through it.
        """
