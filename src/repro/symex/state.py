"""Path state and result records for the symbolic execution engine.

A *path* is one control-flow route through a node program. While the engine
runs a program it maintains a :class:`PathState`; when the path terminates
(normally, via a marker, or by infeasibility) the engine distills it into an
immutable :class:`PathResult` that downstream analyses (Achilles, the
classic-symex baseline) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.solver.ast import Expr

# Path verdicts. ACCEPTED/REJECTED implement the paper's accepting/rejecting
# execution path classification (§3.1); the others are engine-internal
# terminations.
ACCEPTED = "accepted"
REJECTED = "rejected"
COMPLETED = "completed"
INFEASIBLE = "infeasible"
DROPPED = "dropped"
PRUNED = "pruned"
LIMIT = "limit"


@dataclass(frozen=True)
class SentMessage:
    """A message captured on a ``ctx.send`` call.

    Attributes:
        destination: opaque label of the receiving node.
        payload: one 8-bit expression per byte of the wire message; concrete
            bytes appear as constant expressions.
    """

    destination: str
    payload: tuple[Expr, ...]

    def __len__(self) -> int:
        return len(self.payload)


@dataclass
class PathState:
    """Mutable state of the path currently being executed."""

    path_id: int
    decisions: list[bool] = field(default_factory=list)
    constraints: list[Expr] = field(default_factory=list)
    sends: list[SentMessage] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)
    branch_count: int = 0
    fresh_names: dict[str, int] = field(default_factory=dict)
    verdict: str | None = None
    observer_slot: object | None = None

    def fresh_name(self, base: str) -> str:
        """Deterministic unique name for a symbolic input.

        Replays of the same path produce the same name sequence, which is
        what makes re-execution forking sound.
        """
        count = self.fresh_names.get(base, 0)
        self.fresh_names[base] = count + 1
        return base if count == 0 else f"{base}#{count}"


@dataclass(frozen=True)
class PathResult:
    """Immutable summary of one fully-executed path.

    Attributes:
        path_id: engine-assigned identifier (exploration order).
        verdict: one of the module-level verdict constants.
        constraints: the path condition (conjunction of these must hold for
            the path to be feasible).
        sends: messages sent along the path, in order.
        labels: free-form marks recorded via ``ctx.label``.
        decisions: the branch decision vector identifying the path.
        branch_count: number of symbolic branch points encountered.
    """

    path_id: int
    verdict: str
    constraints: tuple[Expr, ...]
    sends: tuple[SentMessage, ...]
    labels: tuple[str, ...]
    decisions: tuple[bool, ...]
    branch_count: int

    @property
    def is_accepting(self) -> bool:
        return self.verdict == ACCEPTED

    @property
    def is_rejecting(self) -> bool:
        return self.verdict == REJECTED


def canonical_key(decisions: Sequence[bool]) -> tuple[int, ...]:
    """Sort key putting decision vectors in canonical prefix order.

    Canonical order is lexicographic with True before False — exactly the
    completion order of a serial DFS exploration (the engine takes the
    True direction first and pops the most recent fork). Executed paths
    of one exploration have pairwise prefix-free decision vectors (two
    paths sharing a prefix would have diverged at its end), so this key
    totally orders them; the sharded merge sorts on it to renumber paths
    identically to the serial run.
    """
    return tuple(int(not d) for d in decisions)


def finalize(state: PathState, verdict: str) -> PathResult:
    """Freeze a path state into a result record."""
    return PathResult(
        path_id=state.path_id,
        verdict=verdict,
        constraints=tuple(state.constraints),
        sends=tuple(state.sends),
        labels=tuple(state.labels),
        decisions=tuple(state.decisions),
        branch_count=state.branch_count,
    )
