"""Systems under test: the paper's working example and evaluation targets.

Each subpackage models one distributed system at the protocol-grammar
level the Achilles analysis operates on:

* :mod:`~repro.systems.toy` — the §2.1 READ/WRITE working example with
  the forgotten ``address < 0`` check;
* :mod:`~repro.systems.fsp` — the FSP file transfer protocol (wildcard
  and mismatched-length Trojans, §6.3);
* :mod:`~repro.systems.pbft` — PBFT request ingress and a simulated
  replica cluster (the MAC attack, §6.3);
* :mod:`~repro.systems.paxos` — a single-decree Paxos acceptor used to
  demonstrate the local-state modes (§3.4);
* :mod:`~repro.systems.raft` — a Raft-style leader-election +
  log-replication follower (stale-term AppendEntries truncation and a
  vote-granting off-by-one, both seeded);
* :mod:`~repro.systems.tpc` — a two-phase-commit participant (malformed
  PREPARE acked without its write-ahead record, seeded).

Every system ships both *node programs* (symbolic, for Achilles) and
*concrete nodes* (for the simulated network), built from the same
protocol constants so findings transfer between the two.
"""
