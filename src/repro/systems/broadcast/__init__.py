"""Bracha reliable broadcast — byzantine dissemination under test.

A four-node (``n = 3f + 1``) witnessed Bracha broadcast, analyzed at one
node's message ingress for a pinned slot. Two Trojan families are
seeded:

* **Forged-sender SEND** — the broadcaster-identity check is weakened
  to cluster membership, so any member can initiate a slot it does not
  own and trigger the node's echo (1 class);
* **Thin-quorum READY** — the echo-certificate quorum test is off by
  one (``2f`` instead of ``2f + 1``), so a ``READY`` one echo short of
  a valid quorum is counted toward delivery (6 classes, one per thin
  certificate).

As for the other systems, the symbolic node programs (for Achilles) and
the concrete node (for the simulated network) are built from the same
protocol constants, so findings transfer between the two.
"""

from repro.systems.broadcast.protocol import (
    ACCEPTED_CERTS,
    BROADCASTER,
    BROADCAST_LAYOUT,
    BROADCAST_VALUE,
    BUGGY_ECHO_THRESHOLD,
    ECHO_THRESHOLD,
    FAULTY,
    FULL_CERTS,
    MSG_ECHO,
    MSG_READY,
    MSG_SEND,
    N_NODES,
    NODE_IDS,
    NODE_MASK,
    NO_CERT,
    READY_THRESHOLD,
    THIN_CERTS,
)
from repro.systems.broadcast.nodes import (
    BroadcastNode,
    ForgedDeliveryOutcome,
    broadcast_echoer,
    broadcast_message,
    broadcast_node,
    broadcast_readier,
    broadcast_sender,
    peer_clients,
    run_forged_delivery_demo,
)
from repro.systems.broadcast.ground_truth import (
    FORGED_SENDER,
    THIN_QUORUM,
    BroadcastTrojanClass,
    GroundTruth,
    all_trojan_classes,
    classify_message,
    is_node_accepted,
    is_peer_generable,
)

__all__ = [
    "ACCEPTED_CERTS",
    "BROADCASTER",
    "BROADCAST_LAYOUT",
    "BROADCAST_VALUE",
    "BUGGY_ECHO_THRESHOLD",
    "BroadcastNode",
    "BroadcastTrojanClass",
    "ECHO_THRESHOLD",
    "FAULTY",
    "FORGED_SENDER",
    "FULL_CERTS",
    "ForgedDeliveryOutcome",
    "GroundTruth",
    "MSG_ECHO",
    "MSG_READY",
    "MSG_SEND",
    "N_NODES",
    "NODE_IDS",
    "NODE_MASK",
    "NO_CERT",
    "READY_THRESHOLD",
    "THIN_CERTS",
    "THIN_QUORUM",
    "all_trojan_classes",
    "broadcast_echoer",
    "broadcast_message",
    "broadcast_node",
    "broadcast_readier",
    "broadcast_sender",
    "classify_message",
    "is_node_accepted",
    "is_peer_generable",
    "peer_clients",
    "run_forged_delivery_demo",
]
