"""Mathematical ground truth for the broadcast accuracy experiment.

With the slot history pinned (:mod:`repro.systems.broadcast.protocol`)
the node's accept predicate and the correct peers' generable set differ
in exactly two places:

* **forged-sender** — a ``SEND`` from a member other than the
  broadcaster (the membership check that should have been an identity
  check): 1 class;
* **thin-quorum** — a ``READY`` justified by an echo certificate of
  exactly ``2f`` member bits (one echo short of the ``2f + 1`` quorum):
  one class per thin certificate, ``C(n, 2f) = 6`` classes.

The oracles classify arbitrary concrete messages, so Achilles (and any
baseline) can be scored for precision/recall against the same reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.concrete import decode_ints
from repro.systems.broadcast.protocol import (
    BROADCASTER,
    BROADCAST_LAYOUT,
    BROADCAST_VALUE,
    BUGGY_ECHO_THRESHOLD,
    FULL_CERTS,
    MSG_ECHO,
    MSG_READY,
    MSG_SEND,
    NODE_IDS,
    NO_CERT,
    THIN_CERTS,
)
from repro.systems.scoring import TrojanScore

#: Class kinds.
FORGED_SENDER = "forged-sender"
THIN_QUORUM = "thin-quorum"


@dataclass(frozen=True, order=True)
class BroadcastTrojanClass:
    """One seeded Trojan class.

    Attributes:
        kind: :data:`FORGED_SENDER` or :data:`THIN_QUORUM`.
        cert: the thin echo certificate, or :data:`NO_CERT` for the
            forged-sender class (SENDs carry no certificate).
    """

    kind: str
    cert: int

    def __str__(self) -> str:
        if self.kind == FORGED_SENDER:
            return "send:forged-sender"
        return f"ready:thin-quorum(cert=0b{self.cert:04b})"


def all_trojan_classes() -> list[BroadcastTrojanClass]:
    """The complete seeded ground-truth set — 7 classes."""
    classes = [BroadcastTrojanClass(FORGED_SENDER, NO_CERT)]
    classes.extend(BroadcastTrojanClass(THIN_QUORUM, cert)
                   for cert in THIN_CERTS)
    return classes


def is_node_accepted(message: bytes) -> bool:
    """Reference model of the node's accept predicate ``PS``."""
    if len(message) != BROADCAST_LAYOUT.total_size:
        return False
    fields = decode_ints(BROADCAST_LAYOUT, message)
    if fields["value"] != BROADCAST_VALUE:
        return False  # every path validates against the recorded SEND
    if fields["sender"] not in NODE_IDS:
        return False
    if fields["kind"] in (MSG_SEND, MSG_ECHO):
        # The SEND identity check is the seeded membership weakening.
        return fields["cert"] == NO_CERT
    if fields["kind"] == MSG_READY:
        cert = fields["cert"]
        if cert not in FULL_CERTS and cert not in THIN_CERTS:
            return False
        return bin(cert).count("1") >= BUGGY_ECHO_THRESHOLD
    return False


def is_peer_generable(message: bytes) -> bool:
    """Reference model of the correct peers' predicate ``PC``."""
    if len(message) != BROADCAST_LAYOUT.total_size:
        return False
    fields = decode_ints(BROADCAST_LAYOUT, message)
    if fields["value"] != BROADCAST_VALUE:
        return False
    if fields["sender"] not in NODE_IDS:
        return False
    if fields["kind"] == MSG_SEND:
        # Only the broadcaster initiates its slot.
        return fields["sender"] == BROADCASTER and \
            fields["cert"] == NO_CERT
    if fields["kind"] == MSG_ECHO:
        return fields["cert"] == NO_CERT
    if fields["kind"] == MSG_READY:
        return fields["cert"] in FULL_CERTS
    return False


def classify_message(message: bytes) -> BroadcastTrojanClass | None:
    """Map an accepted-but-ungenerable message to its Trojan class."""
    if not is_node_accepted(message) or is_peer_generable(message):
        return None
    fields = decode_ints(BROADCAST_LAYOUT, message)
    if fields["kind"] == MSG_SEND:
        return BroadcastTrojanClass(FORGED_SENDER, NO_CERT)
    return BroadcastTrojanClass(THIN_QUORUM, fields["cert"])


class GroundTruth(TrojanScore):
    """Scoring of a set of concrete messages against the seeded classes."""

    classify = staticmethod(classify_message)
    universe = staticmethod(all_trojan_classes)
