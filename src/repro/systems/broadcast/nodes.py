"""Symbolic broadcast node programs: correct peers and the vulnerable node.

The Achilles *clients* are the three messages a correct peer can send
for the pinned slot — the broadcaster's (re-)``SEND``, a peer's
``ECHO``, and a peer's ``READY`` backed by a full echo certificate
(:func:`peer_clients`). The *server* is one node's message ingress
(:func:`broadcast_node`) carrying the two seeded vulnerabilities
described in :mod:`repro.systems.broadcast.protocol`. A concrete node
(:class:`BroadcastNode`) built from the same constants demonstrates the
damage: a forged-sender ``SEND`` plus a flood of thin-certificate
``READY``\\ s delivers a value the real broadcaster never sent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.concrete import decode_ints, encode
from repro.messages.symbolic import MessageBuilder, field_expr
from repro.net.network import Network, Node
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.symex.engine import NodeProgram
from repro.systems.broadcast.protocol import (
    ACCEPTED_CERTS,
    BROADCASTER,
    BROADCAST_LAYOUT,
    BROADCAST_VALUE,
    ECHO_THRESHOLD,
    FULL_CERTS,
    MSG_ECHO,
    MSG_READY,
    MSG_SEND,
    NODE_IDS,
    NODE_MASK,
    NO_CERT,
    READY_THRESHOLD,
)


def _member(sender: Expr) -> Expr:
    return ast.any_of([ast.eq(sender, ast.bv_const(node, 8))
                       for node in NODE_IDS])


def broadcast_sender(ctx: ExecutionContext, node: str = "node") -> None:
    """The slot's broadcaster (re-)transmitting its ``SEND``.

    Everything is pinned by the slot history: only :data:`BROADCASTER`
    initiates this slot, and it disseminates :data:`BROADCAST_VALUE`.
    """
    _send(ctx, node, MSG_SEND, BROADCASTER, BROADCAST_VALUE, NO_CERT)


def broadcast_echoer(ctx: ExecutionContext, node: str = "node") -> None:
    """A correct peer echoing the broadcaster's value."""
    peer = ctx.fresh_byte("peer")
    if not ctx.branch(_member(peer)):
        return  # only cluster members speak the protocol
    _send(ctx, node, MSG_ECHO, peer, BROADCAST_VALUE, NO_CERT)


def broadcast_readier(ctx: ExecutionContext, node: str = "node") -> None:
    """A correct peer's ``READY``: backed by a full echo certificate.

    The certificate is the peer's local echo tally — over-approximated
    as symbolic state (§3.4) constrained to the certificates a correct
    peer can actually hold: at least ``2f + 1`` member bits.
    """
    peer = ctx.fresh_byte("peer")
    if not ctx.branch(_member(peer)):
        return
    cert = ctx.fresh_byte("state:echo_certificate")
    for mask in FULL_CERTS:
        if ctx.branch(ast.eq(cert, ast.bv_const(mask, 8))):
            _send(ctx, node, MSG_READY, peer, BROADCAST_VALUE, cert)
            return
    # A correct peer never asserts READY below the echo quorum: no
    # message on this path.


def peer_clients(node: str = "node") -> dict[str, NodeProgram]:
    """All correct-peer programs, keyed for ``extract_clients``."""
    return {
        "sender": lambda ctx: broadcast_sender(ctx, node),
        "echoer": lambda ctx: broadcast_echoer(ctx, node),
        "readier": lambda ctx: broadcast_readier(ctx, node),
    }


def broadcast_node(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
    """One node event-loop iteration (accept/reject classified)."""
    field = lambda name: field_expr(msg, BROADCAST_LAYOUT.view(name))
    if ctx.branch(ast.eq(field("kind"), ast.bv_const(MSG_SEND, 8))):
        _handle_send(ctx, field)
        return
    if ctx.branch(ast.eq(field("kind"), ast.bv_const(MSG_ECHO, 8))):
        _handle_echo(ctx, field)
        return
    if ctx.branch(ast.eq(field("kind"), ast.bv_const(MSG_READY, 8))):
        _handle_ready(ctx, field)
        return
    ctx.reject("unknown-kind")


def _handle_send(ctx: ExecutionContext, field) -> None:
    """``SEND`` ingress — with the forged-sender vulnerability.

    The identity check should be ``sender == BROADCASTER``; the node
    only tests cluster membership, so any member can play the
    broadcaster and trigger the echo.
    """
    if not ctx.branch(_member(field("sender"))):
        ctx.reject("send:not-a-member")
        return
    if not ctx.branch(ast.eq(field("value"),
                             ast.bv_const(BROADCAST_VALUE, 8))):
        ctx.reject("send:equivocation")
        return
    if not ctx.branch(ast.eq(field("cert"), ast.bv_const(NO_CERT, 8))):
        ctx.reject("send:unexpected-certificate")
        return
    ctx.send("peers", [MSG_ECHO])
    ctx.accept("send:echo")


def _handle_echo(ctx: ExecutionContext, field) -> None:
    """``ECHO`` ingress: counted toward the ready threshold (clean path)."""
    if not ctx.branch(_member(field("sender"))):
        ctx.reject("echo:not-a-member")
        return
    if not ctx.branch(ast.eq(field("value"),
                             ast.bv_const(BROADCAST_VALUE, 8))):
        ctx.reject("echo:value-mismatch")
        return
    if not ctx.branch(ast.eq(field("cert"), ast.bv_const(NO_CERT, 8))):
        ctx.reject("echo:unexpected-certificate")
        return
    ctx.accept("echo:counted")


def _handle_ready(ctx: ExecutionContext, field) -> None:
    """``READY`` ingress — with the thin-quorum off-by-one.

    The certificate switch enumerates every bitmap of at least ``2f``
    member bits: the ``popcount(cert) >= 2f + 1`` quorum test is off by
    one, so the one-echo-short certificates reach the delivery tally.
    """
    if not ctx.branch(_member(field("sender"))):
        ctx.reject("ready:not-a-member")
        return
    if not ctx.branch(ast.eq(field("value"),
                             ast.bv_const(BROADCAST_VALUE, 8))):
        ctx.reject("ready:value-mismatch")
        return
    cert = field("cert")
    for mask in ACCEPTED_CERTS:
        if ctx.branch(ast.eq(cert, ast.bv_const(mask, 8))):
            if bin(mask).count("1") < ECHO_THRESHOLD:
                ctx.label("thin-certificate")
            ctx.accept(f"ready:cert-{mask:04b}")
            return
    ctx.reject("ready:bad-certificate")


def _send(ctx: ExecutionContext, node: str, kind: int, sender, value,
          cert) -> None:
    builder = MessageBuilder(BROADCAST_LAYOUT)
    builder.set("kind", kind)
    builder.set("sender", sender)
    builder.set("value", value)
    builder.set("cert", cert)
    ctx.send(node, builder.wire())


# -- concrete node ------------------------------------------------------------


def broadcast_message(kind: int, sender: int, value: int,
                      cert: int = NO_CERT) -> bytes:
    """Encode one broadcast wire message."""
    return encode(BROADCAST_LAYOUT, {"kind": kind, "sender": sender,
                                     "value": value, "cert": cert})


class BroadcastNode(Node):
    """Concrete broadcast node with the same two bugs as the symbolic one.

    ``strict=True`` builds the *correct* node instead (broadcaster-only
    ``SEND``, full-quorum certificates) — the control in the demo. The
    node tallies echoes and readies per distinct sender, emits its own
    ``ECHO``/``READY`` to ``observer`` when thresholds trip, and
    delivers at :data:`READY_THRESHOLD` distinct ``READY`` senders.
    """

    def __init__(self, name: str = "node", node_id: int = 3,
                 strict: bool = False, recorded: int | None = None,
                 observer: str | None = None):
        super().__init__(name)
        self.node_id = node_id
        self.strict = strict
        self.recorded = recorded
        self.observer = observer
        self.echoes: set[int] = set()
        self.readies: set[int] = set()
        self.echoed = False
        self.readied = False
        self.delivered: int | None = None
        self.accepted = 0

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if len(payload) != BROADCAST_LAYOUT.total_size:
            return
        fields = decode_ints(BROADCAST_LAYOUT, payload)
        kind = fields["kind"]
        if kind == MSG_SEND:
            self._handle_send(fields, network)
        elif kind == MSG_ECHO:
            self._handle_echo(fields, network)
        elif kind == MSG_READY:
            self._handle_ready(fields)

    def _handle_send(self, fields: dict, network: Network) -> None:
        sender = fields["sender"]
        if self.strict:
            if sender != BROADCASTER:  # the check the buggy node lost
                return
        elif sender not in NODE_IDS:
            return
        if self.recorded is not None and fields["value"] != self.recorded:
            return  # equivocation against the recorded SEND
        if fields["cert"] != NO_CERT:
            return
        self.accepted += 1
        if self.recorded is None:
            self.recorded = fields["value"]
        if not self.echoed:
            self.echoed = True
            self._emit(network, MSG_ECHO, self.recorded, NO_CERT)

    def _handle_echo(self, fields: dict, network: Network) -> None:
        if fields["sender"] not in NODE_IDS:
            return
        if self.recorded is None or fields["value"] != self.recorded:
            return
        if fields["cert"] != NO_CERT:
            return
        self.accepted += 1
        self.echoes.add(fields["sender"])
        if len(self.echoes) >= ECHO_THRESHOLD and not self.readied:
            self.readied = True
            cert = sum(1 << peer for peer in self.echoes)
            self._emit(network, MSG_READY, self.recorded, cert)

    def _handle_ready(self, fields: dict) -> None:
        if fields["sender"] not in NODE_IDS:
            return
        if self.recorded is None or fields["value"] != self.recorded:
            return
        cert = fields["cert"]
        threshold = ECHO_THRESHOLD if self.strict else \
            ECHO_THRESHOLD - 1  # the seeded off-by-one (2f)
        if cert & ~NODE_MASK or bin(cert).count("1") < threshold:
            return
        self.accepted += 1
        self.readies.add(fields["sender"])
        if len(self.readies) >= READY_THRESHOLD and self.delivered is None:
            self.delivered = self.recorded

    def _emit(self, network: Network, kind: int, value: int,
              cert: int) -> None:
        if self.observer is not None:
            network.send(self.name, self.observer,
                         broadcast_message(kind, self.node_id, value, cert))


class _Sink(Node):
    """Collects whatever the nodes emit so the network can deliver it."""

    def __init__(self, name: str):
        super().__init__(name)
        self.received: list[bytes] = []

    def handle(self, source: str, payload: bytes,
               network: Network) -> None:
        self.received.append(payload)


@dataclass
class ForgedDeliveryOutcome:
    """Evidence of both seeded bugs on a live node, with a control."""

    forged_echoed: bool = False
    delivered: int | None = None
    control_echoed: bool = True
    control_delivered: int | None = None


def run_forged_delivery_demo() -> ForgedDeliveryOutcome:
    """Both Trojans end to end: forged SEND, thin READYs, delivery.

    A non-broadcaster member forges the slot's ``SEND`` with its own
    value, then floods ``READY``\\ s (forged member senders, one-short
    echo certificates). The buggy node echoes the stolen slot and
    *delivers* the forged value; the strict control node ignores the
    whole exchange.
    """
    network = Network()
    buggy = BroadcastNode("node")
    control = BroadcastNode("control", strict=True)
    observer = _Sink("observer")
    buggy.observer = control.observer = "observer"
    network.attach(buggy)
    network.attach(control)
    network.attach(observer)

    attacker, forged_value = 2, 0x66
    assert attacker != BROADCASTER
    thin_cert = (1 << 1) | (1 << attacker)  # only 2f echoers named
    for target in ("node", "control"):
        network.send("attacker", target,
                     broadcast_message(MSG_SEND, attacker, forged_value))
        for forged_peer in (0, 1, 3):
            network.send("attacker", target,
                         broadcast_message(MSG_READY, forged_peer,
                                           forged_value, thin_cert))
    network.run()

    return ForgedDeliveryOutcome(
        forged_echoed=buggy.echoed,
        delivered=buggy.delivered,
        control_echoed=control.echoed,
        control_delivered=control.delivered,
    )
