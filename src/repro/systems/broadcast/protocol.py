"""Bracha reliable-broadcast wire protocol constants and layout.

A four-node (``n = 3f + 1``, ``f = 1``) Bracha-style reliable broadcast,
modelled at the point the paper's analysis needs: one node's message
ingress for a single broadcast slot. The variant is the *witnessed* one
common in implementations: a ``READY`` carries the certificate of peers
whose ``ECHO``s justify it (a bitmap, since ids are small), so a node
can validate the echo quorum directly from the message instead of
trusting the sender's local count. All three message kinds share one
fixed-size layout::

    kind(1) | sender(1) | value(1) | cert(1)

* ``SEND`` — the slot's broadcaster disseminating its value; no
  certificate (``cert == NO_CERT``).
* ``ECHO`` — a peer echoing the value it received from the broadcaster;
  justified by the ``SEND`` itself, so again ``cert == NO_CERT``.
* ``READY`` — a peer asserting the value is safe to deliver, justified
  by an echo certificate: the bitmap (bit ``i`` = node ``i``) of the
  ``2f + 1`` distinct peers whose ``ECHO``s it collected.

Following the paper's annotation-stub approach (§6.1), the slot history
is pinned to constants both sides agree on: the node under analysis has
already recorded the broadcaster's ``SEND`` for this slot, carrying
:data:`BROADCAST_VALUE` — which is why every path can validate the
value field (a second ``SEND`` is checked against the recorded one, the
standard equivocation test).

Two vulnerabilities are seeded in the node
(:func:`repro.systems.broadcast.nodes.broadcast_node`):

* **forged-sender SEND** — the identity check on the ``SEND`` path is
  weakened from ``sender == BROADCASTER`` to cluster *membership*, so
  any member can (re-)initiate the slot and trigger the node's echo —
  identity theft of the broadcaster;
* **thin-quorum READY** — the echo-certificate threshold is off by one,
  ``popcount(cert) >= 2f`` instead of ``2f + 1``, so a ``READY``
  justified by one echo too few is counted toward delivery: with ``f``
  byzantine echoers inside a ``2f`` certificate, only ``f`` honest nodes
  ever echoed the value, and delivery no longer implies an honest
  quorum saw it.
"""

from __future__ import annotations

from repro.messages.layout import Field, MessageLayout

#: Message kinds (the ``kind`` byte).
MSG_SEND = 0x53
MSG_ECHO = 0x45
MSG_READY = 0x52

#: Cluster size and fault budget: the classic minimal ``n = 3f + 1``.
N_NODES = 4
FAULTY = 1

#: The four cluster members; node ``i`` is bit ``i`` of a certificate.
NODE_IDS = (0, 1, 2, 3)

#: Bitmap with every member's bit set.
NODE_MASK = 0b1111

#: The slot's broadcaster (history stub: whose slot this is).
BROADCASTER = 0

#: The value the broadcaster disseminated for this slot (history stub:
#: the node under analysis recorded it from the original ``SEND``).
BROADCAST_VALUE = 0x42

#: ``SEND``/``ECHO`` carry no certificate.
NO_CERT = 0x00

#: Echo certificate threshold for a valid ``READY``: ``2f + 1``.
ECHO_THRESHOLD = 2 * FAULTY + 1

#: The seeded off-by-one: the node accepts certificates of ``2f``.
BUGGY_ECHO_THRESHOLD = 2 * FAULTY

#: Distinct ``READY`` senders needed to deliver: ``2f + 1``.
READY_THRESHOLD = 2 * FAULTY + 1


def _masks(predicate) -> tuple[int, ...]:
    return tuple(mask for mask in range(NODE_MASK + 1)
                 if predicate(bin(mask).count("1")))


#: Certificates a correct peer can hold: ``>= 2f + 1`` member bits.
FULL_CERTS = _masks(lambda bits: bits >= ECHO_THRESHOLD)

#: The seeded thin certificates: exactly ``2f`` member bits — one echo
#: short of a valid quorum, accepted only because of the off-by-one.
THIN_CERTS = _masks(lambda bits: bits == BUGGY_ECHO_THRESHOLD)

#: Everything the *buggy* node accepts on the ``READY`` path, in
#: ascending order (the symbolic program enumerates these).
ACCEPTED_CERTS = _masks(lambda bits: bits >= BUGGY_ECHO_THRESHOLD)

BROADCAST_LAYOUT = MessageLayout("broadcast", [
    Field("kind", 1),
    Field("sender", 1),
    Field("value", 1),
    Field("cert", 1),
])
