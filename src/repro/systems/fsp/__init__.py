"""FSP — the File Service Protocol under test (§6.1-§6.3).

FSP is a UDP file-transfer protocol: client utilities emulate UNIX core
utilities (``frm``, ``fls``, ``fmkdir``, …), parse a command-line path,
expand wildcards client-side, and send a command message; the server
performs the action on its filesystem.

Two Trojan classes live here:

* **Mismatched string lengths** — the server accepts commands whose file
  path contains a NUL before the length reported in ``bb_len``; correct
  clients always report the true length (the §6.2 accuracy workload:
  ``(1+2+3+4) × 8 utilities = 80`` Trojan classes at path bound 5);
* **The wildcard character** — clients always glob-expand ``*`` before
  sending (no escape exists), the server treats ``*`` as a regular
  character, so paths containing ``*`` are Trojans with messy deletion
  semantics (§6.3).
"""

from repro.systems.fsp.protocol import (
    COMMANDS,
    COMMAND_NAMES,
    FSP_LAYOUT,
    PATH_SPACE,
    PRINTABLE_MAX,
    PRINTABLE_MIN,
    STUBS,
)
from repro.systems.fsp.clients import fsp_client, literal_clients, globbing_clients
from repro.systems.fsp.server import fsp_server
from repro.systems.fsp.nodes import (
    FspServerNode,
    client_command,
    expand_argument,
    rename_command,
)
from repro.systems.fsp.ground_truth import (
    GroundTruth,
    TrojanClass,
    all_trojan_classes,
    classify_message,
    is_client_generable,
    is_server_accepted,
)

__all__ = [
    "COMMANDS",
    "COMMAND_NAMES",
    "FSP_LAYOUT",
    "FspServerNode",
    "GroundTruth",
    "PATH_SPACE",
    "PRINTABLE_MAX",
    "PRINTABLE_MIN",
    "STUBS",
    "TrojanClass",
    "all_trojan_classes",
    "classify_message",
    "client_command",
    "expand_argument",
    "fsp_client",
    "fsp_server",
    "globbing_clients",
    "is_client_generable",
    "is_server_accepted",
    "literal_clients",
    "rename_command",
]
