"""Symbolic FSP client utilities.

Each utility reads one command-line path argument (symbolic bytes), parses
and validates it, and sends the corresponding command. Two modes mirror
the two evaluation scenarios:

* **literal** (§6.2 accuracy workload): the argument is treated as an
  already-expanded path — any printable character, including ``*``, can
  reach the wire. Correct clients always report the true path length in
  ``bb_len`` and terminate the path at exactly that position.
* **globbing** (§6.3 wildcard workload): before sending, the client
  expands ``*``/``?`` against a directory listing, exactly like the real
  FSP utilities. Expanded paths are concrete and wildcard-free, so no
  correct client can put a wildcard on the wire — which is what makes
  wildcard paths Trojans.
"""

from __future__ import annotations

from typing import Sequence

from repro.fsys.glob import expand, has_wildcard
from repro.messages.symbolic import MessageBuilder
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.symex.engine import NodeProgram
from repro.systems.fsp.protocol import (
    COMMANDS,
    FSP_LAYOUT,
    PATH_SPACE,
    PRINTABLE_MAX,
    PRINTABLE_MIN,
    STUBS,
    WILDCARD_QUERY,
    WILDCARD_STAR,
)


def fsp_client(command: int, globbing: bool = False,
               listing: Sequence[str] = (),
               server: str = "server") -> NodeProgram:
    """Build the node program of one FSP client utility.

    Args:
        command: FSP command code the utility issues.
        globbing: expand wildcards before sending (§6.3 mode).
        listing: directory entries the globbing mode expands against
            (the real utilities fetch this from the server first).
        server: destination node name.
    """

    def client(ctx: ExecutionContext) -> None:
        argument = ctx.fresh_bytes("arg", PATH_SPACE)
        path_chars = _parse_path(ctx, argument)
        if path_chars is None:
            return  # usage error: empty, unterminated, or unprintable
        if globbing and _contains_wildcard(ctx, path_chars):
            # Wildcards never reach the wire: only their expansions do.
            for concrete_path in _expand_wildcards(ctx, path_chars, listing):
                _send_command(ctx, server, command,
                              _concrete_path_buffer(concrete_path),
                              len(concrete_path))
            return
        # On this path the characters are wildcard-free (in globbing mode
        # the branch above recorded that constraint): send the path as-is.
        _send_command(ctx, server, command, argument, len(path_chars))

    return client


def literal_clients(commands: dict[str, int] | None = None,
                    server: str = "server") -> dict[str, NodeProgram]:
    """The eight utilities in literal mode (§6.2 accuracy workload)."""
    commands = commands or COMMANDS
    return {name: fsp_client(code, server=server)
            for name, code in commands.items()}


def globbing_clients(listing: Sequence[str],
                     commands: dict[str, int] | None = None,
                     server: str = "server") -> dict[str, NodeProgram]:
    """The eight utilities in globbing mode (§6.3 wildcard workload)."""
    commands = commands or COMMANDS
    return {name: fsp_client(code, globbing=True, listing=listing,
                             server=server)
            for name, code in commands.items()}


def _parse_path(ctx: ExecutionContext,
                argument: Sequence[Expr]) -> list[Expr] | None:
    """Scan the argument buffer for a valid NUL-terminated path.

    Forks one path per true length t in 1..PATH_SPACE-1. Returns the path
    characters (before the terminator), or None on the reject paths.
    """
    chars: list[Expr] = []
    for position in range(PATH_SPACE):
        byte = argument[position]
        if ctx.branch(ast.eq(byte, ast.bv_const(0, 8))):
            if position == 0:
                return None  # empty path: usage error
            return chars
        in_printable = ast.and_(
            ast.uge(byte, ast.bv_const(PRINTABLE_MIN, 8)),
            ast.ule(byte, ast.bv_const(PRINTABLE_MAX, 8)))
        if not ctx.branch(in_printable):
            return None  # unprintable character: refuse to send
        chars.append(byte)
    return None  # no terminator within the buffer: path too long


def _contains_wildcard(ctx: ExecutionContext,
                       path_chars: list[Expr]) -> bool:
    """Fork on wildcard presence.

    The False side constrains every character away from ``*`` and ``?`` —
    that constraint entering ``PC`` is precisely why wildcard paths end up
    in ``PS \\ PC``.
    """
    has_meta = ast.any_of([
        ast.or_(ast.eq(c, ast.bv_const(WILDCARD_STAR, 8)),
                ast.eq(c, ast.bv_const(WILDCARD_QUERY, 8)))
        for c in path_chars])
    return ctx.branch(has_meta)


def _expand_wildcards(ctx: ExecutionContext, path_chars: list[Expr],
                      listing: Sequence[str]) -> list[str]:
    """Client-side globbing: wildcard paths become concrete expansions.

    The pattern must be concrete to run the matcher, so each character is
    concretized (the engine pins one feasible assignment per path). There
    is no way to escape a wildcard.
    """
    pattern = "".join(chr(ctx.concretize(c)) for c in path_chars)
    expansions = [name for name in expand(pattern, listing)
                  if not has_wildcard(name) and 0 < len(name) < PATH_SPACE]
    return expansions


def _concrete_path_buffer(path: str) -> list[Expr]:
    """A concrete PATH_SPACE-byte buffer: path, NUL, zero padding."""
    raw = path.encode("ascii")
    padded = raw + b"\x00" * (PATH_SPACE - len(raw))
    return [ast.bv_const(b, 8) for b in padded]


def _send_command(ctx: ExecutionContext, server: str, command: int,
                  buffer: Sequence[Expr], length: int) -> None:
    """Assemble and send one FSP command message.

    ``bb_len`` always carries the *true* path length — this is the
    invariant whose absence on the server side is the mismatched-length
    Trojan.
    """
    builder = MessageBuilder(FSP_LAYOUT)
    builder.set("cmd", command)
    builder.set("sum", STUBS["sum"])
    builder.set("bb_key", STUBS["bb_key"])
    builder.set("bb_seq", STUBS["bb_seq"])
    builder.set("bb_len", length)
    builder.set("bb_pos", STUBS["bb_pos"])
    builder.set_bytes("buf", list(buffer))
    ctx.send(server, builder.wire())
