"""Mathematical ground truth for the FSP accuracy experiment (§6.2).

With path length bounded below :data:`~repro.systems.fsp.protocol.PATH_SPACE`
there are exactly ``(1 + 2 + 3 + 4) × 8 = 80`` Trojan classes: one per
``(utility command, reported length L, true length t)`` with ``t < L``.
This module provides oracles that classify arbitrary concrete messages —
used to score Achilles, the classic-symbolic-execution baseline, and the
fuzzer against the same reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.messages.concrete import decode_ints
from repro.systems.scoring import TrojanScore
from repro.systems.fsp.protocol import (
    COMMANDS,
    COMMAND_NAMES,
    FSP_LAYOUT,
    PATH_SPACE,
    STUBS,
    is_printable,
)


@dataclass(frozen=True, order=True)
class TrojanClass:
    """One of the 80 known Trojan classes.

    Attributes:
        command: FSP command code.
        reported_length: the ``bb_len`` header value L.
        true_length: position t of the first NUL in the path (t < L).
    """

    command: int
    reported_length: int
    true_length: int

    @property
    def utility(self) -> str:
        return COMMAND_NAMES[self.command]

    def __str__(self) -> str:
        return (f"{self.utility}(L={self.reported_length}, "
                f"t={self.true_length})")


def all_trojan_classes() -> list[TrojanClass]:
    """The complete ground-truth set — 80 classes at path bound 5."""
    classes = []
    for code, length in product(sorted(COMMANDS.values()),
                                range(1, PATH_SPACE)):
        for true_length in range(length):
            classes.append(TrojanClass(code, length, true_length))
    return classes


def is_server_accepted(message: bytes) -> bool:
    """Reference model of the server's accept predicate ``PS``."""
    if len(message) != FSP_LAYOUT.total_size:
        return False
    fields = decode_ints(FSP_LAYOUT, message)
    if fields["cmd"] not in COMMANDS.values():
        return False
    for name, stub in STUBS.items():
        if fields[name] != stub:
            return False
    length = fields["bb_len"]
    if not 1 <= length < PATH_SPACE:
        return False
    buf = _buf_bytes(message)
    scanned = 0
    while scanned < length and buf[scanned] != 0:
        if not is_printable(buf[scanned]):
            return False
        scanned += 1
    return buf[length] == 0


def is_client_generable(message: bytes,
                        allow_wildcards: bool = True) -> bool:
    """Reference model of the client predicate ``PC``.

    Correct clients emit: a known command, the stub constants, ``bb_len``
    equal to the true path length, printable path characters, and the
    terminator at exactly ``bb_len``. In globbing mode
    (``allow_wildcards=False``) the path is additionally wildcard-free.
    """
    if len(message) != FSP_LAYOUT.total_size:
        return False
    fields = decode_ints(FSP_LAYOUT, message)
    if fields["cmd"] not in COMMANDS.values():
        return False
    for name, stub in STUBS.items():
        if fields[name] != stub:
            return False
    length = fields["bb_len"]
    if not 1 <= length < PATH_SPACE:
        return False
    buf = _buf_bytes(message)
    for position in range(length):
        byte = buf[position]
        if not is_printable(byte):
            return False
        if not allow_wildcards and byte in (ord("*"), ord("?")):
            return False
    return buf[length] == 0


def classify_message(message: bytes) -> TrojanClass | None:
    """Map an accepted-but-ungenerable message to its Trojan class.

    Returns None for messages that are not (length-mismatch) Trojans.
    """
    if not is_server_accepted(message) or is_client_generable(message):
        return None
    fields = decode_ints(FSP_LAYOUT, message)
    buf = _buf_bytes(message)
    length = fields["bb_len"]
    true_length = 0
    while true_length < length and buf[true_length] != 0:
        true_length += 1
    return TrojanClass(fields["cmd"], length, true_length)


def _buf_bytes(message: bytes) -> bytes:
    view = FSP_LAYOUT.view("buf")
    return message[view.offset:view.end]


class GroundTruth(TrojanScore):
    """Scoring of a set of concrete messages against the 80 classes."""

    classify = staticmethod(classify_message)
    universe = staticmethod(all_trojan_classes)
