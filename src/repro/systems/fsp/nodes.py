"""Concrete FSP nodes for the simulated deployment (impact experiments).

:class:`FspServerNode` executes accepted commands against a
:class:`~repro.fsys.memfs.MemFS`; :func:`client_command` reproduces the
client utilities' message assembly — including client-side globbing with
no escape character — so the §6.3 scenarios (``mv file file*``,
``rm file*``) replay exactly.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import FileSystemError
from repro.fsys.glob import glob_match, has_wildcard
from repro.fsys.memfs import MemFS
from repro.messages.concrete import decode_ints, encode
from repro.net.network import Network, Node
from repro.systems.fsp.protocol import (
    CC_RENAME,
    COMMANDS,
    FSP_LAYOUT,
    PATH_SPACE,
    STUBS,
    is_printable,
)

#: Reply codes.
REPLY_OK = 0x01
REPLY_ERR = 0x02


class FspServerNode(Node):
    """Concrete FSP server over an in-memory filesystem.

    The ingress validation matches the symbolic model byte for byte (same
    two bugs); accepted commands act on :attr:`fs` under :attr:`root`.
    """

    def __init__(self, name: str = "server", fs: MemFS | None = None,
                 root: str = "/srv"):
        super().__init__(name)
        self.fs = fs or _default_fs(root)
        self.root = root
        self.accepted = 0
        self.rejected = 0

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        fields = decode_ints(FSP_LAYOUT, payload) \
            if len(payload) == FSP_LAYOUT.total_size else None
        if fields is not None and fields["cmd"] == CC_RENAME:
            parsed = self._validate_rename(payload)
            if parsed is None:
                self.rejected += 1
                return
            self.accepted += 1
            ok = self._rename(*parsed)
        else:
            path = self._validate(payload)
            if path is None:
                self.rejected += 1
                return
            self.accepted += 1
            ok = self._execute(fields["cmd"], path)
        network.send(self.name, source,
                     bytes([REPLY_OK if ok else REPLY_ERR]))

    # -- ingress -----------------------------------------------------------------

    def _validate(self, payload: bytes) -> str | None:
        """The vulnerable ingress: returns the parsed path or None.

        Mirrors :func:`repro.systems.fsp.server.fsp_server`: first-NUL
        scan, printable characters, terminator at ``bb_len`` — never
        cross-checked against the scan.
        """
        buf = self._common_checks(payload, COMMANDS.values())
        if buf is None:
            return None
        length = decode_ints(FSP_LAYOUT, payload)["bb_len"]
        scanned = 0
        while scanned < length and buf[scanned] != 0:
            if not is_printable(buf[scanned]):
                return None
            scanned += 1
        if buf[length] != 0:
            return None
        return buf[:scanned].decode("latin-1")

    def _validate_rename(self, payload: bytes) -> tuple[str, str] | None:
        """RENAME ingress: ``buf`` packs ``src NUL dst`` with the
        terminator of the *pair* at ``bb_len``."""
        buf = self._common_checks(payload, (CC_RENAME,))
        if buf is None:
            return None
        length = decode_ints(FSP_LAYOUT, payload)["bb_len"]
        if buf[length] != 0:
            return None
        packed = buf[:length]
        source, _, target = packed.partition(b"\x00")
        if not source or not target:
            return None
        if not all(is_printable(b) for b in source + target):
            return None
        return source.decode("latin-1"), target.decode("latin-1")

    def _common_checks(self, payload: bytes,
                       commands) -> bytes | None:
        """Size, command and stub validation shared by all ingress paths."""
        if len(payload) != FSP_LAYOUT.total_size:
            return None
        fields = decode_ints(FSP_LAYOUT, payload)
        if fields["cmd"] not in commands:
            return None
        for name, stub in STUBS.items():
            if fields[name] != stub:
                return None
        if not 1 <= fields["bb_len"] < PATH_SPACE:
            return None
        view = FSP_LAYOUT.view("buf")
        return payload[view.offset:view.end]

    # -- actions ------------------------------------------------------------------

    def _execute(self, command: int, path: str) -> bool:
        """Perform the filesystem action; RENAME packs ``src\\0dst``."""
        full = f"{self.root}/{path}"
        try:
            if command == COMMANDS["fls"]:
                self.fs.listdir(full)
            elif command in (COMMANDS["fcat"], COMMANDS["fstat"],
                             COMMANDS["fgetpro"]):
                if not self.fs.exists(full):
                    return False
            elif command == COMMANDS["frm"]:
                self.fs.delete(full)
            elif command == COMMANDS["frmdir"]:
                self.fs.delete(full)
            elif command == COMMANDS["fmkdir"]:
                self.fs.mkdir(full)
            elif command == COMMANDS["fgrab"]:
                self.fs.read_file(full)
                self.fs.delete(full)
            else:
                return False
        except FileSystemError:
            return False
        return True

    def _rename(self, source: str, target: str) -> bool:
        try:
            self.fs.rename(f"{self.root}/{source}", f"{self.root}/{target}")
        except FileSystemError:
            return False
        return True


def _default_fs(root: str) -> MemFS:
    fs = MemFS()
    fs.mkdir(root)
    return fs


def expand_argument(argument: str, listing: Sequence[str]) -> list[str]:
    """Client-side wildcard expansion (no escape character, §6.3).

    Matched directory entries pass through verbatim — including names
    that themselves contain ``*`` (how ``rm file*`` reaches the literal
    ``file*`` file *and* its innocent siblings). A pattern matching
    nothing expands to nothing.
    """
    if has_wildcard(argument):
        return [name for name in listing if glob_match(argument, name)]
    return [argument]


def client_command(utility: str, path: str) -> bytes:
    """Assemble the wire message a correct utility sends for ``path``.

    Raises ValueError for arguments a correct client refuses: empty or
    over-long paths, unprintable characters. Globbing happens *before*
    this step (see :func:`expand_argument`).
    """
    if utility not in COMMANDS:
        raise ValueError(f"unknown utility {utility!r}")
    raw = path.encode("ascii")
    if not all(is_printable(b) for b in raw):
        raise ValueError("correct clients refuse unprintable path characters")
    return _assemble(COMMANDS[utility], raw)


def rename_command(source: str, target: str) -> bytes:
    """The ``fmv`` utility's RENAME message: ``src NUL dst``.

    The source was globbed by the caller; the target is never globbed
    (FSP behaviour, §6.3) — which is how ``file*`` gets created.
    """
    packed = source.encode("ascii") + b"\x00" + target.encode("ascii")
    return _assemble(CC_RENAME, packed)


def _assemble(command: int, raw_path: bytes) -> bytes:
    if not 0 < len(raw_path) < PATH_SPACE:
        raise ValueError(f"path must be 1..{PATH_SPACE - 1} bytes")
    buf = raw_path + b"\x00" * (PATH_SPACE - len(raw_path))
    return encode(FSP_LAYOUT, {
        "cmd": command,
        "sum": STUBS["sum"],
        "bb_key": STUBS["bb_key"],
        "bb_seq": STUBS["bb_seq"],
        "bb_len": len(raw_path),
        "bb_pos": STUBS["bb_pos"],
        "buf": buf,
    })
