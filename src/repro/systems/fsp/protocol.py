"""FSP wire protocol constants and layout (§6.1).

The command message carries::

    cmd(1) | sum(1) | bb_key(2) | bb_seq(2) | bb_len(2) | bb_pos(4) | buf(5)

``buf`` holds the NUL-terminated file path; the evaluation bounds paths to
length < 5 (so ``buf`` is 5 bytes: up to 4 path characters plus the
terminator), exactly the bound the paper uses to let symbolic execution
complete (§6.2).

Following the paper, the ``sum`` checksum and the ``bb_key``/``bb_seq``/
``bb_pos`` session fields are *approximated by annotations*: clients write
a predefined constant and the server checks for that constant (§6.1). The
:data:`STUBS` table records those constants for both sides.
"""

from __future__ import annotations

from repro.messages.layout import Field, MessageLayout

#: The eight client utilities with a single file-path argument (§6.2),
#: mapped to their FSP command codes.
COMMANDS: dict[str, int] = {
    "fls": 0x41,      # CC_GET_DIR: directory listing
    "fcat": 0x42,     # CC_GET_FILE: read a file
    "frm": 0x45,      # CC_DEL_FILE: delete a file
    "frmdir": 0x46,   # CC_DEL_DIR: delete a directory
    "fgetpro": 0x47,  # CC_GET_PRO: read directory protection
    "fmkdir": 0x49,   # CC_MAKE_DIR: create a directory
    "fgrab": 0x4B,    # CC_GRAB_FILE: read-and-delete a file
    "fstat": 0x4D,    # CC_STAT: stat a path
}

#: Command code -> utility name (for reports).
COMMAND_NAMES: dict[int, str] = {code: name for name, code in COMMANDS.items()}

#: CC_RENAME takes two paths ("src NUL dst NUL"); it is exercised by the
#: concrete impact experiments (the ``mv file file*`` scenario), not by
#: the single-path accuracy workload.
CC_RENAME = 0x4E

#: Path buffer size: up to 4 path characters + NUL terminator.
PATH_SPACE = 5

#: Printable ASCII accepted by the server in file paths (§6.2).
PRINTABLE_MIN = 33
PRINTABLE_MAX = 126

#: Glob metacharacters (no escape syntax exists, §6.3).
WILDCARD_STAR = ord("*")
WILDCARD_QUERY = ord("?")

FSP_LAYOUT = MessageLayout("fsp", [
    Field("cmd", 1),
    Field("sum", 1),
    Field("bb_key", 2),
    Field("bb_seq", 2),
    Field("bb_len", 2),
    Field("bb_pos", 4),
    Field("buf", PATH_SPACE),
])

#: Annotation stubs (§6.1): the client writes these constants, the server
#: checks them, bypassing checksum/session-key logic on both sides.
STUBS: dict[str, int] = {
    "sum": 0x5A,
    "bb_key": 0x1234,
    "bb_seq": 0x0001,
    "bb_pos": 0,
}


def is_printable(byte: int) -> bool:
    """Server-side path character validation."""
    return PRINTABLE_MIN <= byte <= PRINTABLE_MAX
