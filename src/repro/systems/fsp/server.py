"""Symbolic FSP server program — with the paper's two path-parsing bugs.

One event-loop iteration: validate the session fields (annotation stubs,
§6.1), dispatch on the command, parse the file path, perform the action.
The parsing faithfully reproduces the vulnerable behaviour Achilles
exposed in FSP 2.8.1b26:

* the scan stops at the *first* NUL but the server never checks that it
  sits exactly where ``bb_len`` says — a NUL earlier than ``bb_len`` is
  accepted (**mismatched string lengths**, §6.3), leaving the bytes
  between the NUL and ``bb_len`` as an unvalidated hidden payload;
* every printable character is a legal path character, including ``*``
  and ``?`` (**the wildcard character**, §6.3).

Accept markers (``ctx.accept``) sit where the server invokes filesystem
actions, mirroring where the paper placed them (§6.1).
"""

from __future__ import annotations

from repro.messages.symbolic import field_bytes, field_expr
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.systems.fsp.protocol import (
    COMMANDS,
    FSP_LAYOUT,
    PATH_SPACE,
    PRINTABLE_MAX,
    PRINTABLE_MIN,
    STUBS,
)


def fsp_server(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
    """Handle one FSP command message (accept/reject classified)."""
    if not _session_fields_valid(ctx, msg):
        ctx.reject("bad-session-fields")
        return

    cmd = field_expr(msg, FSP_LAYOUT.view("cmd"))
    command = _dispatch(ctx, cmd)
    if command is None:
        ctx.reject("unknown-command")
        return

    bb_len = field_expr(msg, FSP_LAYOUT.view("bb_len"))
    length = _reported_length(ctx, bb_len)
    if length is None:
        ctx.reject("bad-length")
        return

    buf = field_bytes(msg, FSP_LAYOUT.view("buf"))
    if not _path_parses(ctx, buf, length):
        ctx.reject("bad-path")
        return

    # The command is valid: perform the filesystem action and reply.
    ctx.accept(f"action:0x{command:02x}")


def _session_fields_valid(ctx: ExecutionContext,
                          msg: tuple[Expr, ...]) -> bool:
    """Stubbed checksum/key/sequence/position checks (§6.1 annotations)."""
    for field, stub in STUBS.items():
        view = FSP_LAYOUT.view(field)
        expected = ast.bv_const(stub, view.bit_width)
        if not ctx.branch(ast.eq(field_expr(msg, view), expected)):
            return False
    return True


def _dispatch(ctx: ExecutionContext, cmd: Expr) -> int | None:
    """The command switch; returns the matched code or None."""
    for code in sorted(COMMANDS.values()):
        if ctx.branch(ast.eq(cmd, ast.bv_const(code, 8))):
            return code
    return None


def _reported_length(ctx: ExecutionContext, bb_len: Expr) -> int | None:
    """Branch over the valid reported lengths 1..PATH_SPACE-1.

    The terminator must fit inside the buffer, so ``bb_len`` may be at
    most PATH_SPACE-1; zero-length paths are rejected.
    """
    for length in range(1, PATH_SPACE):
        if ctx.branch(ast.eq(bb_len, ast.bv_const(length, 16))):
            return length
    return None


def _path_parses(ctx: ExecutionContext, buf: tuple[Expr, ...],
                 length: int) -> bool:
    """The vulnerable path scan.

    Walks the buffer up to the reported length, stopping at the first
    NUL. Characters before the NUL must be printable. The terminator is
    required at ``buf[length]`` — but nothing verifies the first NUL *is*
    that terminator, which admits the mismatched-length Trojans.
    """
    for position in range(length):
        byte = buf[position]
        if ctx.branch(ast.eq(byte, ast.bv_const(0, 8))):
            break  # first NUL ends the path; bytes after it are never checked
        printable = ast.and_(
            ast.uge(byte, ast.bv_const(PRINTABLE_MIN, 8)),
            ast.ule(byte, ast.bv_const(PRINTABLE_MAX, 8)))
        if not ctx.branch(printable):
            return False
    # Consistency check against the header — at the reported position
    # only; an earlier NUL sails through.
    return ctx.branch(ast.eq(buf[length], ast.bv_const(0, 8)))
