"""Single-decree Paxos acceptor — the local-state modes demo (§3.4).

The acceptor's accept predicate depends on its local state (the promised
ballot): the same wire message is valid in one state and Trojan in
another. The three Achilles local-state modes map onto this system:

* **Concrete**: analyze an acceptor that has promised ballot 3 while the
  proposer holding that promise proposes value 7 — any ACCEPT with
  another value (or a higher ballot nobody holds) is a Trojan;
* **Constructed symbolic**: run the proposer with a *symbolic* proposed
  value first; value Trojans disappear (some correct proposer could send
  any value) while ballot Trojans remain;
* **Over-approximate symbolic**: replace the promised-ballot lookup with
  a constrained symbolic value, covering all promise states in one run.
"""

from repro.systems.paxos.protocol import ACCEPT, PAXOS_LAYOUT, PREPARE
from repro.systems.paxos.acceptor import (
    AcceptorState,
    acceptor_program,
    overapprox_acceptor,
)
from repro.systems.paxos.nodes import (
    PaxosAcceptorNode,
    PaxosProposerNode,
    accept_message,
    prepare_message,
)
from repro.systems.paxos.proposer import phase2_proposer, symbolic_value_proposer

__all__ = [
    "ACCEPT",
    "AcceptorState",
    "PAXOS_LAYOUT",
    "PREPARE",
    "PaxosAcceptorNode",
    "PaxosProposerNode",
    "accept_message",
    "acceptor_program",
    "overapprox_acceptor",
    "phase2_proposer",
    "prepare_message",
    "symbolic_value_proposer",
]
