"""The Paxos acceptor node program, parameterized by local state (§3.4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.achilles.localstate import symbolic_return
from repro.achilles.server_analysis import ServerProgram
from repro.messages.symbolic import field_expr
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.systems.paxos.protocol import ACCEPT, PAXOS_LAYOUT, PREPARE


@dataclass
class AcceptorState:
    """Concrete acceptor state: the highest promised ballot."""

    promised: int = 0


def _handle(ctx: ExecutionContext, msg: tuple[Expr, ...],
            promised: Expr | int) -> None:
    """Shared acceptor logic over a concrete or symbolic promise."""
    kind = field_expr(msg, PAXOS_LAYOUT.view("kind"))
    ballot = field_expr(msg, PAXOS_LAYOUT.view("ballot"))
    if isinstance(promised, int):
        promised = ast.bv_const(promised, 16)

    if ctx.branch(ast.eq(kind, ast.bv_const(PREPARE, 8))):
        if ctx.branch(ast.ugt(ballot, promised)):
            ctx.send("proposer", [0x50])  # PROMISE
            ctx.accept("promise")
            return
        ctx.reject("stale-prepare")
        return

    if ctx.branch(ast.eq(kind, ast.bv_const(ACCEPT, 8))):
        if ctx.branch(ast.uge(ballot, promised)):
            # Single-decree Paxos: the acceptor takes any value at or
            # above its promise — it has no way to validate the value
            # itself, which is what makes foreign values Trojans.
            ctx.send("proposer", [0x41])  # ACCEPTED
            ctx.accept("accepted")
            return
        ctx.reject("stale-accept")
        return

    ctx.reject("unknown-kind")


def acceptor_program(promised: int) -> ServerProgram:
    """Concrete Local State mode: an acceptor that promised ``promised``.

    The state object is rebuilt per path execution (the engine re-runs
    programs when forking), mirroring the paper's "run the system
    concretely up to some point" usage.
    """

    def factory() -> AcceptorState:
        return AcceptorState(promised=promised)

    def server(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
        state = factory()
        _handle(ctx, msg, state.promised)

    return server


def overapprox_acceptor(max_promise: int = 10) -> ServerProgram:
    """Over-approximate Symbolic Local State mode (§3.4).

    The promised-ballot lookup is bypassed by a fresh symbolic value
    constrained to ``[0, max_promise]`` — one analysis covers every
    promise the acceptor could hold.
    """

    def server(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
        promised = symbolic_return(ctx, "state:promised", 16,
                                   lo=0, hi=max_promise)
        _handle(ctx, msg, promised)

    return server
