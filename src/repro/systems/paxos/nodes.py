"""Concrete Paxos nodes: a minimal single-decree deployment.

Used by the injection demos: after a legitimate consensus round, an
injected ACCEPT Trojan (foreign value or outbid ballot) visibly corrupts
the decision — the concrete counterpart of the §3.4 discussion that a
message can be valid in one local state and Trojan in another.
"""

from __future__ import annotations

from repro.messages.concrete import decode_ints, encode
from repro.net.network import Network, Node
from repro.systems.paxos.protocol import ACCEPT, PAXOS_LAYOUT, PREPARE

#: Reply kinds (first byte of acceptor replies).
PROMISE = 0x50
ACCEPTED = 0x41
NACK = 0x4E


def prepare_message(ballot: int) -> bytes:
    return encode(PAXOS_LAYOUT, {"kind": PREPARE, "ballot": ballot,
                                 "value": 0})


def accept_message(ballot: int, value: int) -> bytes:
    return encode(PAXOS_LAYOUT, {"kind": ACCEPT, "ballot": ballot,
                                 "value": value})


class PaxosAcceptorNode(Node):
    """Single-decree acceptor with the standard promise/accept rules."""

    def __init__(self, name: str = "acceptor"):
        super().__init__(name)
        self.promised = 0
        self.accepted_ballot: int | None = None
        self.accepted_value: int | None = None

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if len(payload) != PAXOS_LAYOUT.total_size:
            return
        fields = decode_ints(PAXOS_LAYOUT, payload)
        if fields["kind"] == PREPARE:
            if fields["ballot"] > self.promised:
                self.promised = fields["ballot"]
                network.send(self.name, source, bytes([PROMISE]))
            else:
                network.send(self.name, source, bytes([NACK]))
            return
        if fields["kind"] == ACCEPT:
            if fields["ballot"] >= self.promised:
                self.accepted_ballot = fields["ballot"]
                self.accepted_value = fields["value"]
                network.send(self.name, source, bytes([ACCEPTED]))
            else:
                network.send(self.name, source, bytes([NACK]))


class PaxosProposerNode(Node):
    """A proposer running one prepare/accept round for a fixed value."""

    def __init__(self, name: str, ballot: int, value: int,
                 acceptor: str = "acceptor"):
        super().__init__(name)
        self.ballot = ballot
        self.value = value
        self.acceptor = acceptor
        self.promised = False
        self.chosen = False

    def start(self, network: Network) -> None:
        network.send(self.name, self.acceptor, prepare_message(self.ballot))

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if not payload:
            return
        if payload[0] == PROMISE and not self.promised:
            self.promised = True
            network.send(self.name, self.acceptor,
                         accept_message(self.ballot, self.value))
        elif payload[0] == ACCEPTED:
            self.chosen = True
