"""Paxos proposer clients for the local-state demos (§3.4)."""

from __future__ import annotations

from repro.messages.symbolic import MessageBuilder
from repro.symex.context import ExecutionContext
from repro.symex.engine import NodeProgram
from repro.systems.paxos.protocol import ACCEPT, PAXOS_LAYOUT


def phase2_proposer(ballot: int, value: int,
                    acceptor: str = "acceptor") -> NodeProgram:
    """Concrete scenario: the proposer holding ``ballot`` proposes ``value``.

    This is the paper's example — "a Paxos Acceptor has just entered the
    second phase, with proposed value 7": the only message a correct
    proposer sends in that state is ``ACCEPT(ballot, 7)``.
    """

    def proposer(ctx: ExecutionContext) -> None:
        builder = MessageBuilder(PAXOS_LAYOUT)
        builder.set("kind", ACCEPT)
        builder.set("ballot", ballot)
        builder.set("value", value)
        ctx.send(acceptor, builder.wire())

    return proposer


def symbolic_value_proposer(ballot: int,
                            acceptor: str = "acceptor") -> NodeProgram:
    """Constructed Symbolic Local State: the proposed value is symbolic.

    Running Achilles once with this client covers every concrete value a
    correct proposer could propose, eliminating the need to re-run the
    concrete analysis per value (1, 2, …) — the §3.4 argument.
    """

    def proposer(ctx: ExecutionContext) -> None:
        value = ctx.fresh_bitvec("proposed_value", 16)
        builder = MessageBuilder(PAXOS_LAYOUT)
        builder.set("kind", ACCEPT)
        builder.set("ballot", ballot)
        builder.set("value", value)
        ctx.send(acceptor, builder.wire())

    return proposer
