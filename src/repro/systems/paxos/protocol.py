"""Paxos wire protocol: PREPARE and ACCEPT messages.

One compact layout serves both phases::

    kind(1) | ballot(2) | value(2)

PREPARE carries a zero value field; ACCEPT carries the proposed value.
"""

from __future__ import annotations

from repro.messages.layout import Field, MessageLayout

#: Message kinds.
PREPARE = 0x01
ACCEPT = 0x02

PAXOS_LAYOUT = MessageLayout("paxos", [
    Field("kind", 1),
    Field("ballot", 2),
    Field("value", 2),
])
