"""PBFT — Byzantine fault-tolerant replication under test (§6.1-§6.3).

Clients send authenticated requests to a set of replicas; replicas agree
on a total order (pre-prepare / prepare / commit) and execute. The known
vulnerability Achilles rediscovers is the **MAC attack** [Clement et al.,
NSDI'09]: the primary replica forwards client requests *without verifying
their authenticators*, so a request with a corrupt MAC is accepted at
ingress, fails verification at the backups, and forces an expensive
recovery (view change) — a cheap way for a faulty client to hurt
throughput for everyone.

* :mod:`~repro.systems.pbft.client` / :mod:`~repro.systems.pbft.replica`
  — symbolic node programs for Achilles (request ingress grammar);
* :mod:`~repro.systems.pbft.cluster` — a concrete 4-replica deployment
  measuring the attack's throughput impact.
"""

from repro.systems.pbft.protocol import (
    COMMAND_SIZE,
    KNOWN_CLIENTS,
    MAC_STUB,
    N_REPLICAS,
    OD_STUB,
    REQUEST_LAYOUT,
    REQUEST_TAG,
)
from repro.systems.pbft.client import pbft_client
from repro.systems.pbft.replica import pbft_replica
from repro.systems.pbft.cluster import (
    ClusterStats,
    PbftClientNode,
    PbftReplicaNode,
    build_cluster,
    run_workload,
)

__all__ = [
    "COMMAND_SIZE",
    "ClusterStats",
    "KNOWN_CLIENTS",
    "MAC_STUB",
    "N_REPLICAS",
    "OD_STUB",
    "PbftClientNode",
    "PbftReplicaNode",
    "REQUEST_LAYOUT",
    "REQUEST_TAG",
    "build_cluster",
    "pbft_client",
    "pbft_replica",
    "run_workload",
]
