"""Symbolic PBFT client: generates one authenticated request (§6.1).

Mirrors the paper's setup: ``extra``, ``replier``, ``rid``, ``cid`` and
``command`` are symbolic (any correct client, any request); ``tag``,
``size`` and ``command_size`` follow the protocol; the digest and the
authenticator list are the predefined constant stubs. The essential fact
for the MAC attack: a correct client always writes *valid* authenticators
(here: the stub), so a request whose MAC bytes differ cannot come from
any correct client.
"""

from __future__ import annotations

from repro.messages.symbolic import MessageBuilder
from repro.symex.context import ExecutionContext
from repro.systems.pbft.protocol import (
    COMMAND_SIZE,
    MAC_STUB,
    OD_STUB,
    REQUEST_LAYOUT,
    REQUEST_SIZE,
    REQUEST_TAG,
)


def pbft_client(ctx: ExecutionContext, primary: str = "replica0") -> None:
    """Generate one request and send it to the primary."""
    builder = MessageBuilder(REQUEST_LAYOUT)
    builder.set("tag", REQUEST_TAG)
    builder.set("extra", ctx.fresh_bitvec("extra", 16))
    builder.set("size", REQUEST_SIZE)
    builder.set_bytes("od", list(OD_STUB))
    builder.set("replier", ctx.fresh_bitvec("replier", 16))
    builder.set("command_size", COMMAND_SIZE)
    builder.set("cid", ctx.fresh_bitvec("cid", 16))
    builder.set("rid", ctx.fresh_bitvec("rid", 16))
    builder.set_bytes("command", ctx.fresh_bytes("command", COMMAND_SIZE))
    builder.set_bytes("mac", list(MAC_STUB))
    ctx.send(primary, builder.wire())
