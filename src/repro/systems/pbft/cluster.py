"""Concrete 4-replica PBFT cluster — measuring the MAC attack (§6.3).

A compact but genuine message-driven PBFT commit path:

* clients send authenticated ``REQUEST``s to the primary;
* the primary assigns a sequence number and multicasts ``PRE_PREPARE``
  **without verifying the client's authenticator** (the vulnerability);
* backups verify their authenticator tag. Valid → ``PREPARE``; invalid →
  they cannot tell whether the client or the primary corrupted the
  message, so they ``SUSPECT`` the view — and enough suspicions trigger
  an expensive view change (the recovery protocol whose cost the attack
  weaponizes);
* ``2f`` matching prepares → ``COMMIT``; ``2f+1`` commits → execute and
  ``REPLY``.

Throughput is measured in committed requests per network delivery, which
makes the attack's cost hardware-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.mac import Authenticator
from repro.net.network import Network, Node
from repro.systems.pbft.protocol import N_REPLICAS, SESSION_KEYS

#: Wire message kinds (first byte).
REQUEST = 0x01
PRE_PREPARE = 0x02
PREPARE = 0x03
COMMIT = 0x04
REPLY = 0x05
SUSPECT = 0x06
NEW_VIEW = 0x07

#: Fault threshold for 4 replicas.
F = (N_REPLICAS - 1) // 3

#: Extra protocol rounds a view change costs every replica (models the
#: "expensive recovery protocol" of §6.3).
VIEW_CHANGE_ROUNDS = 3


def _replica_name(index: int) -> str:
    return f"replica{index}"


@dataclass
class ClusterStats:
    """Aggregate outcome of one workload run."""

    committed: int = 0
    view_changes: int = 0
    deliveries: int = 0
    replies: int = 0

    @property
    def throughput(self) -> float:
        """Committed requests per message delivery."""
        return self.committed / self.deliveries if self.deliveries else 0.0


class PbftClientNode(Node):
    """A PBFT client; ``malicious=True`` corrupts its authenticators.

    The corrupt-MAC request is exactly the Trojan Achilles finds: it
    parses correctly everywhere, but no correct client produces it.
    """

    def __init__(self, name: str, cid: int, malicious: bool = False):
        super().__init__(name)
        self.cid = cid
        self.malicious = malicious
        self.rid = 0
        self.replies = 0

    def next_request(self) -> bytes:
        self.rid += 1
        core = [self.cid, self.rid, 0xAB, 0xCD]  # cid | rid | command
        auth = Authenticator.sign(SESSION_KEYS, core)
        if self.malicious:
            auth = auth.corrupt(1).corrupt(2).corrupt(3)
        return bytes([REQUEST, self.cid, self.rid & 0xFF]
                     + core[2:] + auth.wire_bytes())

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if payload and payload[0] == REPLY:
            self.replies += 1


class PbftReplicaNode(Node):
    """One PBFT replica; index 0 of the current view acts as primary."""

    def __init__(self, index: int):
        super().__init__(_replica_name(index))
        self.index = index
        self.view = 0
        self.next_seq = 0
        self.prepares: dict[tuple[int, int], set[str]] = {}
        self.commits: dict[tuple[int, int], set[str]] = {}
        self.executed: set[tuple[int, int]] = set()
        self.suspects: dict[int, set[str]] = {}
        self.committed = 0
        self.view_changes = 0

    # -- helpers -------------------------------------------------------------------

    @property
    def is_primary(self) -> bool:
        return self.index == self.view % N_REPLICAS

    def _multicast(self, payload: bytes, network: Network) -> None:
        for peer in range(N_REPLICAS):
            if peer != self.index:
                network.send(self.name, _replica_name(peer), payload)

    @staticmethod
    def _verify_request(request: bytes, replica_index: int) -> bool:
        """Check this replica's authenticator tag on a client request."""
        core = [request[1], request[2], request[3], request[4]]
        auth = Authenticator.from_wire(list(request[5:5 + 2 * N_REPLICAS]))
        return auth.verify(replica_index, SESSION_KEYS[replica_index], core)

    # -- protocol ------------------------------------------------------------------

    #: Minimum payload length per message kind (garbage is dropped).
    _MIN_SIZES = {REQUEST: 5 + 2 * N_REPLICAS, PRE_PREPARE: 7 + 2 * N_REPLICAS,
                  PREPARE: 3, COMMIT: 3, SUSPECT: 2, NEW_VIEW: 2}

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if not payload:
            return
        kind = payload[0]
        if len(payload) < self._MIN_SIZES.get(kind, 1 << 30):
            return  # malformed or unknown: drop silently
        if kind == REQUEST:
            self._on_request(source, payload, network)
        elif kind == PRE_PREPARE:
            self._on_pre_prepare(source, payload, network)
        elif kind == PREPARE:
            self._on_vote(payload, self.prepares, COMMIT, network)
        elif kind == COMMIT:
            self._on_commit(payload, network)
        elif kind == SUSPECT:
            self._on_suspect(source, payload, network)
        elif kind == NEW_VIEW:
            self._on_new_view(payload)

    def _on_request(self, source: str, payload: bytes,
                    network: Network) -> None:
        if not self.is_primary:
            return
        # THE VULNERABILITY: the primary does not verify the client's
        # authenticator before ordering the request (§6.3).
        seq = self.next_seq
        self.next_seq += 1
        pre_prepare = bytes([PRE_PREPARE, self.view, seq]) + payload[1:]
        self._multicast(pre_prepare, network)
        self._record_vote(self.prepares, (self.view, seq), self.name)

    def _on_pre_prepare(self, source: str, payload: bytes,
                        network: Network) -> None:
        view, seq = payload[1], payload[2]
        if view != self.view:
            return
        request = bytes([REQUEST]) + payload[3:]
        if not self._verify_request(request, self.index):
            # Bad authenticator: the client or the primary is lying and
            # this replica cannot tell which — suspect the view (§6.3).
            self._multicast(bytes([SUSPECT, self.view]), network)
            self._on_suspect(self.name, bytes([SUSPECT, self.view]), network)
            return
        key = (view, seq)
        self._record_vote(self.prepares, key, self.name)
        self._multicast(bytes([PREPARE, view, seq]), network)
        self._record_vote(self.prepares, key, _replica_name(view % N_REPLICAS))
        self._maybe_commit(key, network)

    def _on_vote(self, payload: bytes, table, next_kind: int,
                 network: Network) -> None:
        key = (payload[1], payload[2])
        self._record_vote(table, key, f"peer{len(table.get(key, set()))}")
        self._maybe_commit(key, network)

    def _maybe_commit(self, key: tuple[int, int], network: Network) -> None:
        if len(self.prepares.get(key, set())) >= 2 * F + 1:
            if key not in self.commits or self.name not in self.commits[key]:
                self._record_vote(self.commits, key, self.name)
                self._multicast(bytes([COMMIT, key[0], key[1]]), network)
                self._maybe_execute(key, network)

    def _on_commit(self, payload: bytes, network: Network) -> None:
        key = (payload[1], payload[2])
        self._record_vote(self.commits, key,
                          f"peer{len(self.commits.get(key, set()))}")
        self._maybe_execute(key, network)

    def _maybe_execute(self, key: tuple[int, int], network: Network) -> None:
        if key in self.executed:
            return
        if len(self.commits.get(key, set())) >= 2 * F + 1:
            self.executed.add(key)
            self.committed += 1
            network.send(self.name, "client-hub", bytes([REPLY, key[1]]))

    def _on_suspect(self, source: str, payload: bytes,
                    network: Network) -> None:
        view = payload[1]
        if view != self.view:
            return
        voters = self.suspects.setdefault(view, set())
        voters.add(source)
        if len(voters) >= F + 1:
            self._start_view_change(network)

    def _start_view_change(self, network: Network) -> None:
        # The expensive recovery: every replica burns VIEW_CHANGE_ROUNDS
        # of all-to-all traffic before the new view is installed.
        old_view = self.view
        self.view += 1
        self.view_changes += 1
        for _ in range(VIEW_CHANGE_ROUNDS):
            self._multicast(bytes([NEW_VIEW, self.view]), network)

    def _on_new_view(self, payload: bytes) -> None:
        if payload[1] > self.view:
            self.view = payload[1]
            self.view_changes += 1

    @staticmethod
    def _record_vote(table: dict, key: tuple[int, int], voter: str) -> None:
        table.setdefault(key, set()).add(voter)


class _ClientHub(Node):
    """Collects replica replies on behalf of all clients."""

    def __init__(self):
        super().__init__("client-hub")
        self.replies = 0

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if payload and payload[0] == REPLY:
            self.replies += 1


def build_cluster() -> tuple[Network, list[PbftReplicaNode], _ClientHub]:
    """A fresh 4-replica deployment plus a reply sink."""
    network = Network()
    replicas = [network.attach(PbftReplicaNode(i)) for i in range(N_REPLICAS)]
    hub = network.attach(_ClientHub())
    return network, replicas, hub


def run_workload(total_requests: int,
                 malicious_every: int = 0) -> ClusterStats:
    """Drive a request workload through a fresh cluster.

    Args:
        total_requests: number of client requests to issue.
        malicious_every: every Nth request carries corrupt authenticators
            (0 = all correct). This is the paper's attack mix.
    """
    network, replicas, hub = build_cluster()
    honest = PbftClientNode("client-honest", cid=1)
    attacker = PbftClientNode("client-attacker", cid=2, malicious=True)
    network.attach(honest)
    network.attach(attacker)

    for index in range(total_requests):
        use_attacker = malicious_every and (index + 1) % malicious_every == 0
        client = attacker if use_attacker else honest
        primary = _replica_name(replicas[0].view % N_REPLICAS)
        # Re-read the current primary from replica 0's view so requests
        # follow view changes.
        network.send(client.name, primary, client.next_request())
        network.run()

    stats = ClusterStats(
        committed=max(r.committed for r in replicas),
        view_changes=max(r.view_changes for r in replicas),
        deliveries=network.trace.count("deliver"),
        replies=hub.replies,
    )
    return stats
