"""PBFT client-request wire format (§6.1).

The request message carries exactly the fields the paper lists::

    tag(2) | extra(2) | size(4) | od(16) | replier(2) | command_size(2) |
    cid(2) | rid(2) | command(4) | mac(8)

with a fixed command length of 4 bytes and one 2-byte authenticator per
replica (4 replicas → 8 MAC bytes), as the evaluation fixes the lengths of
the command, the authenticator list and the overall message (§6.1).

Digest (``od``) and authenticators are approximated by constant stubs on
the *client* side (§6.1); the replica checks the digest stub but — the
vulnerability — never looks at the MAC bytes.
"""

from __future__ import annotations

from repro.messages.layout import Field, MessageLayout

#: Message tag of client requests.
REQUEST_TAG = 0x0001

#: Number of replicas (f = 1).
N_REPLICAS = 4

#: Fixed command payload length (§6.1 "fixed length for the command").
COMMAND_SIZE = 4

#: Client ids known to the replicas ("verify that the client id is in a
#: set of known clients", §6.2).
KNOWN_CLIENTS = (1, 2, 3, 4, 5)

REQUEST_LAYOUT = MessageLayout("pbft_request", [
    Field("tag", 2),
    Field("extra", 2),
    Field("size", 4),
    Field("od", 16),
    Field("replier", 2),
    Field("command_size", 2),
    Field("cid", 2),
    Field("rid", 2),
    Field("command", COMMAND_SIZE),
    Field("mac", 2 * N_REPLICAS),
])

#: Total wire size; the ``size`` header must carry exactly this value.
REQUEST_SIZE = REQUEST_LAYOUT.total_size

#: Constant stub standing in for the 16-byte message digest (§6.1).
OD_STUB = bytes(range(0xA0, 0xB0))

#: Constant stub standing in for the authenticator list (§6.1).
MAC_STUB = bytes([0xC1, 0xC2] * N_REPLICAS)

#: Pairwise client-replica session keys for the concrete cluster.
SESSION_KEYS = tuple(0x1000 + 0x111 * i for i in range(N_REPLICAS))
