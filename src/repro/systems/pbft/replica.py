"""Symbolic PBFT replica ingress — with the MAC-attack vulnerability.

The paper's observation (§6.2): "Surprisingly, PBFT replicas make few
checks on the data received from clients. They verify that request ids
are recent and have not already been handled, verify that the client id
is in a set of known clients and also check if the flags field marks the
request as read-only." Crucially, the replica never verifies the
authenticator before acting, which is the MAC attack (§6.3).

Local state (the per-client last-request-id table) is handled in the
*over-approximate symbolic* mode (§3.4): an unconstrained symbolic value
stands in for whatever the table might contain.
"""

from __future__ import annotations

from repro.messages.symbolic import field_expr
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.systems.pbft.protocol import (
    COMMAND_SIZE,
    KNOWN_CLIENTS,
    OD_STUB,
    REQUEST_LAYOUT,
    REQUEST_SIZE,
    REQUEST_TAG,
)


def pbft_replica(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
    """Handle one incoming client request at the primary."""
    field = lambda name: field_expr(msg, REQUEST_LAYOUT.view(name))

    # Parse-stage validation: tag, declared sizes, digest (stub, §6.1).
    if not ctx.branch(ast.eq(field("tag"),
                             ast.bv_const(REQUEST_TAG, 16))):
        ctx.reject("bad-tag")
        return
    if not ctx.branch(ast.eq(field("size"),
                             ast.bv_const(REQUEST_SIZE, 32))):
        ctx.reject("bad-size")
        return
    if not ctx.branch(ast.eq(field("command_size"),
                             ast.bv_const(COMMAND_SIZE, 16))):
        ctx.reject("bad-command-size")
        return
    od_view = REQUEST_LAYOUT.view("od")
    od_stub = ast.bv_const(int.from_bytes(OD_STUB, "big"), od_view.bit_width)
    if not ctx.branch(ast.eq(field("od"), od_stub)):
        ctx.reject("bad-digest")
        return

    # The client must be known.
    cid = field("cid")
    known = ast.any_of(
        [ast.eq(cid, ast.bv_const(c, 16)) for c in KNOWN_CLIENTS])
    if not ctx.branch(known):
        ctx.reject("unknown-client")
        return

    # The request id must be fresh — compared against the per-client
    # request log, over-approximated by unconstrained symbolic state.
    last_rid = ctx.fresh_bitvec("state:last_rid", 16)
    if not ctx.branch(ast.ugt(field("rid"), last_rid)):
        ctx.reject("stale-rid")
        return

    # NOTE: the authenticator (mac field) is never verified here — the
    # first replica to receive the request just forwards it (§6.3).

    read_only = ast.eq(
        ast.extract(field("extra"), 0, 0), ast.bv_const(1, 1))
    if ctx.branch(read_only):
        # Read-only requests are executed and answered directly.
        ctx.send("client", [0x52])  # 'R'eply
        ctx.accept("read-only-reply")
        return

    # Regular requests enter the agreement protocol: the replica builds a
    # Pre_prepare and multicasts it — the paper's accept marker (§6.1).
    ctx.send("replica1", [0x50])  # 'P're_prepare
    ctx.accept("pre-prepare")
