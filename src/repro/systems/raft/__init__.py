"""Raft — leader election and log replication under test.

A three-node Raft-style replicated key-value store, analyzed at one
follower's RPC ingress. Two Trojan families are seeded:

* **Stale-term AppendEntries** — the follower forgets the
  ``term >= currentTerm`` rejection, so a deposed leader's AppendEntries
  is accepted; because acceptance truncates the log after prevLogIndex,
  the Trojans with ``prevLogIndex < COMMIT_INDEX`` erase *committed*
  entries (8 classes over ``(stale term, prevLogIndex)``);
* **Vote off-by-one** — the up-to-date check grants votes at
  ``lastLogIndex + 1 >= LAST_INDEX``, electing a candidate whose log is
  one entry short of the follower's (1 class).

As for the other systems, the symbolic node programs (for Achilles) and
the concrete follower (for the simulated network) are built from the
same protocol constants, so findings transfer between the two.
"""

from repro.systems.raft.protocol import (
    CANDIDATE_LOGS,
    COMMIT_INDEX,
    CURRENT_TERM,
    LAST_INDEX,
    LAST_TERM,
    LOG_TERMS,
    MSG_APPEND,
    MSG_VOTE,
    NODE_IDS,
    RAFT_LAYOUT,
    TERM_LEADERS,
    VOTE_PADDING,
)
from repro.systems.raft.nodes import (
    peer_clients,
    raft_candidate,
    raft_follower,
    raft_leader,
)
from repro.systems.raft.cluster import (
    LogEntry,
    RaftFollowerNode,
    TruncationOutcome,
    append_message,
    run_truncation_attack,
)
from repro.systems.raft.ground_truth import (
    GroundTruth,
    RaftTrojanClass,
    STALE_APPEND,
    VOTE_OFF_BY_ONE,
    all_trojan_classes,
    classify_message,
    is_follower_accepted,
    is_peer_generable,
)

__all__ = [
    "CANDIDATE_LOGS",
    "COMMIT_INDEX",
    "CURRENT_TERM",
    "GroundTruth",
    "LAST_INDEX",
    "LAST_TERM",
    "LOG_TERMS",
    "LogEntry",
    "MSG_APPEND",
    "MSG_VOTE",
    "NODE_IDS",
    "RAFT_LAYOUT",
    "RaftFollowerNode",
    "RaftTrojanClass",
    "STALE_APPEND",
    "TERM_LEADERS",
    "TruncationOutcome",
    "VOTE_OFF_BY_ONE",
    "VOTE_PADDING",
    "all_trojan_classes",
    "append_message",
    "classify_message",
    "is_follower_accepted",
    "is_peer_generable",
    "peer_clients",
    "raft_candidate",
    "raft_follower",
    "raft_leader",
    "run_truncation_attack",
]
