"""Concrete Raft follower — demonstrating the truncation attack's impact.

The symbolic analysis finds the stale-term AppendEntries Trojans; this
module shows what one of them *does*: a single forged message from a
deposed leader erases committed (applied!) log entries on a live
follower built from the same protocol constants — so findings transfer
between the symbolic and concrete worlds, as for the other systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.concrete import decode_ints, encode
from repro.net.network import Network, Node
from repro.systems.raft.protocol import (
    COMMIT_INDEX,
    CURRENT_TERM,
    LAST_INDEX,
    LAST_TERM,
    LOG_TERMS,
    MSG_APPEND,
    MSG_VOTE,
    NODE_IDS,
    RAFT_LAYOUT,
    TERM_LEADERS,
    VOTE_PADDING,
)

#: Ack byte the follower replies with on a successful append.
APPEND_OK = 0x4F

#: Reply byte for a granted vote.
VOTE_GRANTED = 0x56


@dataclass
class LogEntry:
    """One replicated entry: the term it was created in plus the command."""

    term: int
    cmd: int


class RaftFollowerNode(Node):
    """A concrete follower with the same two bugs as the symbolic program.

    The log starts as the reference history (:data:`LOG_TERMS`); entries
    up to :data:`COMMIT_INDEX` are committed, i.e. already applied to the
    key-value store. Accepted AppendEntries truncate after ``idx`` and
    append — without the staleness rejection, so a stale-term message
    can erase committed entries (counted in :attr:`committed_lost`).
    """

    def __init__(self, name: str = "follower"):
        super().__init__(name)
        self.log: list[LogEntry] = [
            LogEntry(term, 0) for term in LOG_TERMS[1:]]
        self.current_term = CURRENT_TERM
        self.commit_index = COMMIT_INDEX
        self.committed_lost = 0
        self.appends_acked = 0
        self.votes_granted: list[tuple[int, int]] = []

    @property
    def log_terms(self) -> list[int]:
        return [entry.term for entry in self.log]

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if len(payload) != RAFT_LAYOUT.total_size:
            return
        fields = decode_ints(RAFT_LAYOUT, payload)
        if fields["type"] == MSG_APPEND:
            self._handle_append(source, fields, network)
        elif fields["type"] == MSG_VOTE:
            self._handle_vote(source, fields, network)

    def _handle_append(self, source: str, fields: dict,
                       network: Network) -> None:
        term = fields["term"]
        if not 1 <= term <= self.current_term:  # missing: term >= current
            return
        if fields["sender"] != TERM_LEADERS[term]:
            return
        prev = fields["idx"]
        if not 0 <= prev <= len(self.log):
            return
        prev_term = 0 if prev == 0 else self.log[prev - 1].term
        if fields["logterm"] != prev_term:
            return
        # Truncate after prev and append — committed entries included.
        removed = self.log[prev:]
        self.committed_lost += sum(
            1 for position, _ in enumerate(removed, start=prev + 1)
            if position <= self.commit_index)
        self.log = self.log[:prev] + [LogEntry(term, fields["cmd"])]
        self.appends_acked += 1
        network.send(self.name, source, bytes([APPEND_OK]))

    def _handle_vote(self, source: str, fields: dict,
                     network: Network) -> None:
        if fields["term"] != self.current_term:
            return
        if fields["sender"] not in NODE_IDS:
            return
        if fields["cmd"] != VOTE_PADDING:
            return
        if fields["logterm"] != LAST_TERM:
            return
        last = fields["idx"]
        if not 0 <= last <= LAST_INDEX:
            return
        if last + 1 >= LAST_INDEX:  # the off-by-one grant
            self.votes_granted.append((fields["sender"], last))
            network.send(self.name, source, bytes([VOTE_GRANTED]))


class _Sink(Node):
    """Collects replies so the network can deliver them."""

    def __init__(self, name: str):
        super().__init__(name)
        self.received: list[bytes] = []

    def handle(self, source: str, payload: bytes,
               network: Network) -> None:
        self.received.append(payload)


def append_message(term: int, prev_index: int, cmd: int = 0x99) -> bytes:
    """Encode one AppendEntries wire message against the reference log."""
    return encode(RAFT_LAYOUT, {
        "type": MSG_APPEND, "term": term, "sender": TERM_LEADERS[term],
        "idx": prev_index, "logterm": LOG_TERMS[prev_index],
        "cmd": cmd,
    })


@dataclass
class TruncationOutcome:
    """Before/after evidence of one stale-term truncation attack."""

    log_terms_before: list[int] = field(default_factory=list)
    log_terms_after: list[int] = field(default_factory=list)
    committed_lost: int = 0
    acked: bool = False


def run_truncation_attack(prev_index: int = 0) -> TruncationOutcome:
    """Deliver one stale-term AppendEntries Trojan to a live follower.

    A correct current-term append is delivered first (the control: no
    committed entry is lost), then the Trojan — an AppendEntries in a
    historical term probing ``prev_index`` below the commit point. The
    follower acks it like any append while erasing its committed prefix.
    """
    network = Network()
    follower = RaftFollowerNode()
    attacker = _Sink("attacker")
    leader = _Sink("leader")
    network.attach(follower)
    network.attach(attacker)
    network.attach(leader)

    outcome = TruncationOutcome(log_terms_before=follower.log_terms)
    # Control: the real leader extends the log; nothing committed is lost.
    network.send("leader", follower.name,
                 append_message(CURRENT_TERM, LAST_INDEX, cmd=0x01))
    network.run()
    assert follower.committed_lost == 0

    stale_term = 1  # a term whose leader was long deposed
    network.send("attacker", follower.name,
                 append_message(stale_term, prev_index, cmd=0x99))
    network.run()

    outcome.log_terms_after = follower.log_terms
    outcome.committed_lost = follower.committed_lost
    outcome.acked = bool(attacker.received)
    return outcome
