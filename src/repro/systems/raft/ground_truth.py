"""Mathematical ground truth for the Raft accuracy experiment.

With the cluster history pinned (:mod:`repro.systems.raft.protocol`)
the follower's accept predicate and the correct peers' generable set are
both small enough to enumerate exactly:

* **stale-append** — AppendEntries in a historical term
  ``t < CURRENT_TERM`` passing the prevLog consistency probe at index
  ``p``: ``(CURRENT_TERM - 1) × (LAST_INDEX + 1) = 8`` classes, one per
  ``(t, p)``. The ``p < COMMIT_INDEX`` members truncate committed
  entries.
* **vote-off-by-one** — a RequestVote granted to a candidate whose log
  ends one entry short (``lastLogIndex == LAST_INDEX - 1`` with the
  current last term): 1 class.

The oracles classify arbitrary concrete messages, so Achilles (and any
baseline) can be scored for precision/recall against the same reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.concrete import decode_ints
from repro.systems.scoring import TrojanScore
from repro.systems.raft.protocol import (
    CANDIDATE_LOGS,
    COMMIT_INDEX,
    CURRENT_TERM,
    LAST_INDEX,
    LAST_TERM,
    LOG_TERMS,
    MSG_APPEND,
    MSG_VOTE,
    NODE_IDS,
    RAFT_LAYOUT,
    TERM_LEADERS,
    VOTE_PADDING,
)

#: Class kinds.
STALE_APPEND = "stale-append"
VOTE_OFF_BY_ONE = "vote-off-by-one"


@dataclass(frozen=True, order=True)
class RaftTrojanClass:
    """One seeded Trojan class.

    Attributes:
        kind: :data:`STALE_APPEND` or :data:`VOTE_OFF_BY_ONE`.
        term: message term (the stale term, or CURRENT_TERM for votes).
        index: prevLogIndex (appends) or lastLogIndex (votes).
    """

    kind: str
    term: int
    index: int

    def __str__(self) -> str:
        return f"{self.kind}(term={self.term}, index={self.index})"

    @property
    def truncates_committed(self) -> bool:
        return self.kind == STALE_APPEND and self.index < COMMIT_INDEX


def all_trojan_classes() -> list[RaftTrojanClass]:
    """The complete seeded ground-truth set — 9 classes."""
    classes = [RaftTrojanClass(STALE_APPEND, term, index)
               for term in range(1, CURRENT_TERM)
               for index in range(LAST_INDEX + 1)]
    classes.append(RaftTrojanClass(VOTE_OFF_BY_ONE, CURRENT_TERM,
                                   LAST_INDEX - 1))
    return classes


def is_follower_accepted(message: bytes) -> bool:
    """Reference model of the follower's accept predicate ``PS``."""
    if len(message) != RAFT_LAYOUT.total_size:
        return False
    fields = decode_ints(RAFT_LAYOUT, message)
    if fields["type"] == MSG_APPEND:
        term = fields["term"]
        if not 1 <= term <= CURRENT_TERM:  # the missing staleness check
            return False
        if fields["sender"] != TERM_LEADERS[term]:
            return False
        prev = fields["idx"]
        if not 0 <= prev <= LAST_INDEX:
            return False
        return fields["logterm"] == LOG_TERMS[prev]
    if fields["type"] == MSG_VOTE:
        if fields["term"] != CURRENT_TERM:
            return False
        if fields["sender"] not in NODE_IDS:
            return False
        if fields["cmd"] != VOTE_PADDING:
            return False
        if fields["logterm"] != LAST_TERM:
            return False
        last = fields["idx"]
        if not 0 <= last <= LAST_INDEX:
            return False
        return last + 1 >= LAST_INDEX  # the off-by-one grant
    return False


def is_peer_generable(message: bytes) -> bool:
    """Reference model of the correct peers' predicate ``PC``."""
    if len(message) != RAFT_LAYOUT.total_size:
        return False
    fields = decode_ints(RAFT_LAYOUT, message)
    if fields["type"] == MSG_APPEND:
        # Only the current leader replicates, in the current term, with
        # the true term of the probed entry.
        if fields["term"] != CURRENT_TERM:
            return False
        if fields["sender"] != TERM_LEADERS[CURRENT_TERM]:
            return False
        prev = fields["idx"]
        if not 0 <= prev <= LAST_INDEX:
            return False
        return fields["logterm"] == LOG_TERMS[prev]
    if fields["type"] == MSG_VOTE:
        if fields["term"] != CURRENT_TERM:
            return False
        if fields["sender"] not in NODE_IDS:
            return False
        if fields["cmd"] != VOTE_PADDING:
            return False
        return (fields["idx"], fields["logterm"]) in CANDIDATE_LOGS
    return False


def classify_message(message: bytes) -> RaftTrojanClass | None:
    """Map an accepted-but-ungenerable message to its Trojan class."""
    if not is_follower_accepted(message) or is_peer_generable(message):
        return None
    fields = decode_ints(RAFT_LAYOUT, message)
    if fields["type"] == MSG_APPEND:
        return RaftTrojanClass(STALE_APPEND, fields["term"], fields["idx"])
    return RaftTrojanClass(VOTE_OFF_BY_ONE, fields["term"], fields["idx"])


class GroundTruth(TrojanScore):
    """Scoring of a set of concrete messages against the seeded classes."""

    classify = staticmethod(classify_message)
    universe = staticmethod(all_trojan_classes)
