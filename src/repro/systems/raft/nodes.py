"""Symbolic Raft node programs: correct peers and the vulnerable follower.

The *clients* of the Achilles analysis are the correct peers that can
legitimately message the follower under test: the current-term leader
(:func:`raft_leader`, AppendEntries) and a campaigning candidate
(:func:`raft_candidate`, RequestVote). The *server* is one follower's RPC
ingress (:func:`raft_follower`) carrying the two seeded vulnerabilities
described in :mod:`repro.systems.raft.protocol`.
"""

from __future__ import annotations

from repro.messages.symbolic import MessageBuilder, field_expr
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.symex.engine import NodeProgram
from repro.systems.raft.protocol import (
    CANDIDATE_LOGS,
    COMMIT_INDEX,
    CURRENT_TERM,
    LAST_INDEX,
    LAST_TERM,
    LOG_TERMS,
    MSG_APPEND,
    MSG_VOTE,
    NODE_IDS,
    RAFT_LAYOUT,
    TERM_LEADERS,
    VOTE_PADDING,
)


def raft_leader(ctx: ExecutionContext, follower: str = "follower") -> None:
    """The current-term leader replicating one entry to the follower.

    The leader's view of the follower's log (``nextIndex - 1``) can be
    any prefix of its own log, so ``idx`` forks over 0..LAST_INDEX — but
    a correct leader always pairs it with the *true* term of that entry
    and always speaks in its own (the current) term.
    """
    prev_index = ctx.fresh_byte("prev_index")
    for index in range(LAST_INDEX + 1):
        if ctx.branch(ast.eq(prev_index, ast.bv_const(index, 8))):
            command = ctx.fresh_byte("command")
            _send_rpc(ctx, follower, MSG_APPEND, CURRENT_TERM,
                      TERM_LEADERS[CURRENT_TERM], prev_index,
                      LOG_TERMS[index], command)
            return
    # nextIndex never points past the log: no message on this path.


def raft_candidate(ctx: ExecutionContext, follower: str = "follower") -> None:
    """A correct candidate requesting the follower's vote.

    Any cluster member may campaign, but it reports its *true* log: one
    of the :data:`CANDIDATE_LOGS` states (at least the committed prefix,
    at most the full log), with the matching lastLogTerm.
    """
    candidate_id = ctx.fresh_byte("candidate_id")
    member = ast.any_of([ast.eq(candidate_id, ast.bv_const(n, 8))
                         for n in NODE_IDS])
    if not ctx.branch(member):
        return
    replicated = ctx.fresh_byte("state:replicated_to")
    for last_index, last_term in CANDIDATE_LOGS:
        if ctx.branch(ast.eq(replicated, ast.bv_const(last_index, 8))):
            _send_rpc(ctx, follower, MSG_VOTE, CURRENT_TERM, candidate_id,
                      replicated, last_term, VOTE_PADDING)
            return
    # A correct node's log is never shorter than the committed prefix
    # nor longer than the leader's: no message on this path.


def peer_clients(follower: str = "follower") -> dict[str, NodeProgram]:
    """Both correct-peer programs, keyed for :meth:`Achilles.extract_clients`."""
    return {
        "leader": lambda ctx: raft_leader(ctx, follower),
        "candidate": lambda ctx: raft_candidate(ctx, follower),
    }


def raft_follower(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
    """One follower event-loop iteration (accept/reject classified)."""
    field = lambda name: field_expr(msg, RAFT_LAYOUT.view(name))
    if ctx.branch(ast.eq(field("type"), ast.bv_const(MSG_APPEND, 8))):
        _handle_append(ctx, field)
        return
    if ctx.branch(ast.eq(field("type"), ast.bv_const(MSG_VOTE, 8))):
        _handle_vote(ctx, field)
        return
    ctx.reject("unknown-type")


def _handle_append(ctx: ExecutionContext, field) -> None:
    """AppendEntries ingress — with the stale-term truncation bug.

    The term switch accepts every historical term 1..CURRENT_TERM: the
    ``term >= currentTerm`` staleness rejection is missing, so a deposed
    leader's AppendEntries still reaches the truncate-and-append step.
    """
    term = None
    term_field = field("term")
    for value in range(1, CURRENT_TERM + 1):
        if ctx.branch(ast.eq(term_field, ast.bv_const(value, 8))):
            term = value
            break
    if term is None:
        ctx.reject("bad-term")
        return
    # The sender must be the leader the follower recorded for that term.
    if not ctx.branch(ast.eq(field("sender"),
                             ast.bv_const(TERM_LEADERS[term], 8))):
        ctx.reject("not-the-leader")
        return
    prev = None
    idx = field("idx")
    for index in range(LAST_INDEX + 1):
        if ctx.branch(ast.eq(idx, ast.bv_const(index, 8))):
            prev = index
            break
    if prev is None:
        ctx.reject("prev-beyond-log")
        return
    if not ctx.branch(ast.eq(field("logterm"),
                             ast.bv_const(LOG_TERMS[prev], 8))):
        ctx.reject("prev-term-mismatch")
        return
    # Consistency check passed: truncate after ``prev`` and append the
    # entry (``cmd`` is the unvalidated command payload). Truncating
    # below the commit point erases applied entries — the damage the
    # stale-term Trojans do.
    if prev < COMMIT_INDEX:
        ctx.label("truncates-committed")
    ctx.accept(f"append:term{term}:prev{prev}")


def _handle_vote(ctx: ExecutionContext, field) -> None:
    """RequestVote ingress — with the off-by-one up-to-date check."""
    if not ctx.branch(ast.eq(field("term"),
                             ast.bv_const(CURRENT_TERM, 8))):
        ctx.reject("vote-wrong-term")
        return
    sender = field("sender")
    member = ast.any_of([ast.eq(sender, ast.bv_const(n, 8))
                         for n in NODE_IDS])
    if not ctx.branch(member):
        ctx.reject("unknown-candidate")
        return
    if not ctx.branch(ast.eq(field("cmd"),
                             ast.bv_const(VOTE_PADDING, 8))):
        ctx.reject("bad-vote-padding")
        return
    # Log entry terms never exceed the message term, so in the current
    # term a consistent candidate log ends in exactly LAST_TERM; anything
    # else is stale or malformed.
    if not ctx.branch(ast.eq(field("logterm"),
                             ast.bv_const(LAST_TERM, 8))):
        ctx.reject("log-not-up-to-date")
        return
    last = None
    idx = field("idx")
    for index in range(LAST_INDEX + 1):
        if ctx.branch(ast.eq(idx, ast.bv_const(index, 8))):
            last = index
            break
    if last is None:
        ctx.reject("index-beyond-any-log")
        return
    # Up-to-date predicate. Correct Raft requires last >= LAST_INDEX;
    # the off-by-one also elects a candidate one entry short.
    if last + 1 >= LAST_INDEX:
        ctx.accept(f"vote:grant:last{last}")
    else:
        ctx.reject("log-behind")


def _send_rpc(ctx: ExecutionContext, follower: str, msg_type: int, term: int,
              sender, idx, logterm: int, cmd) -> None:
    builder = MessageBuilder(RAFT_LAYOUT)
    builder.set("type", msg_type)
    builder.set("term", term)
    builder.set("sender", sender)
    builder.set("idx", idx)
    builder.set("logterm", logterm)
    builder.set("cmd", cmd)
    ctx.send(follower, builder.wire())
