"""Raft wire protocol constants and layout.

A three-node Raft-style replicated key-value store, modelled at the
point the paper's analysis needs: one follower's RPC ingress. Both RPC
kinds share a single fixed-size layout::

    type(1) | term(1) | sender(1) | idx(1) | logterm(1) | cmd(1)

* **AppendEntries** (``type == MSG_APPEND``): ``idx``/``logterm`` carry
  the prevLogIndex/prevLogTerm consistency probe, ``cmd`` the one
  replicated command byte (the entry's term is the message term).
* **RequestVote** (``type == MSG_VOTE``): ``idx``/``logterm`` carry the
  candidate's lastLogIndex/lastLogTerm; ``cmd`` is zero padding.

Following the paper's annotation-stub approach (§6.1), the cluster
*history* is pinned to constants both sides agree on: the follower under
analysis is at term :data:`CURRENT_TERM` with the reference log
:data:`LOG_TERMS`, the per-term leaders are :data:`TERM_LEADERS`, and a
correct peer's log is one of :data:`CANDIDATE_LOGS` (every correct node
holds at least the committed prefix and at most the full log).

Two vulnerabilities are seeded in the follower
(:func:`repro.systems.raft.nodes.raft_follower`):

* **stale-term AppendEntries** — the follower never rejects
  ``term < CURRENT_TERM``, so an AppendEntries from a deposed leader is
  accepted and, because acceptance truncates the log after ``idx``, a
  stale message with ``idx < COMMIT_INDEX`` erases *committed* entries;
* **vote off-by-one** — the up-to-date check grants votes when
  ``lastLogIndex + 1 >= LAST_INDEX`` instead of
  ``lastLogIndex >= LAST_INDEX``, electing candidates whose log is one
  entry short.
"""

from __future__ import annotations

from repro.messages.layout import Field, MessageLayout

#: RPC kinds (the ``type`` byte).
MSG_APPEND = 0xA1
MSG_VOTE = 0xB2

#: The three cluster members.
NODE_IDS = (1, 2, 3)

#: The follower's current term — correct peers campaign and replicate
#: in this term (history stub, §6.1-style).
CURRENT_TERM = 3

#: Leader of each historical term (history stub). The follower knows
#: these from the elections it observed.
TERM_LEADERS = {1: 2, 2: 3, 3: 1}

#: Term of the follower's log entry at each index; index 0 is the empty
#: prefix sentinel. The follower's log is [1, 2, 3] at indexes 1..3.
LOG_TERMS = (0, 1, 2, 3)

#: Index of the follower's last log entry.
LAST_INDEX = len(LOG_TERMS) - 1

#: Term of the follower's last log entry.
LAST_TERM = LOG_TERMS[LAST_INDEX]

#: Entries up to this index are committed (applied to the KV store);
#: a correct leader never asks a follower to truncate below it.
COMMIT_INDEX = 2

#: (lastLogIndex, lastLogTerm) pairs a *correct* peer can report: every
#: correct node has replicated at least the committed prefix and at most
#: the full log of the current leader.
CANDIDATE_LOGS = tuple(
    (index, LOG_TERMS[index]) for index in range(COMMIT_INDEX, LAST_INDEX + 1))

#: RequestVote messages carry zero padding in the command slot.
VOTE_PADDING = 0

RAFT_LAYOUT = MessageLayout("raft", [
    Field("type", 1),
    Field("term", 1),
    Field("sender", 1),
    Field("idx", 1),
    Field("logterm", 1),
    Field("cmd", 1),
])
