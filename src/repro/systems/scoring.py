"""Shared ground-truth scoring for the systems under test.

Every system ships an exact oracle pair — ``classify_message`` (concrete
message → seeded Trojan class or None) and ``all_trojan_classes`` (the
seeded universe). :class:`TrojanScore` turns that pair into the scoring
surface the experiments use (``score`` / ``coverage`` / ``missing``), so
the semantics of counting true/false positives live in exactly one
place. Each system subclasses it, binding its two oracles::

    class GroundTruth(TrojanScore):
        classify = staticmethod(classify_message)
        universe = staticmethod(all_trojan_classes)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar


@dataclass
class TrojanScore:
    """Scoring of concrete messages against a system's seeded classes.

    Attributes:
        classes_found: distinct Trojan classes covered by a witness.
        true_positives: messages that are genuine Trojans.
        false_positives: messages flagged as Trojan that are not.
    """

    classes_found: set
    true_positives: int
    false_positives: int

    #: System oracles, bound by each subclass.
    classify: ClassVar[Callable]
    universe: ClassVar[Callable]

    @classmethod
    def score(cls, messages: list[bytes]) -> "TrojanScore":
        """Score messages claimed to be Trojans."""
        found = set()
        tp = 0
        fp = 0
        for message in messages:
            trojan_class = cls.classify(message)
            if trojan_class is None:
                fp += 1
            else:
                tp += 1
                found.add(trojan_class)
        return cls(found, tp, fp)

    @property
    def coverage(self) -> float:
        """Fraction of the seeded universe covered."""
        return len(self.classes_found) / len(type(self).universe())

    def missing(self) -> list:
        """Seeded classes no witness covered, in canonical order."""
        return sorted(set(type(self).universe()) - self.classes_found)
