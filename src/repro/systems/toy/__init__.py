"""The paper's §2.1 working example: a READ/WRITE request server.

The server validates that READ addresses are below ``DATASIZE`` but
forgets the ``address < 0`` check; correct clients validate both bounds.
Any READ with a negative (signed) address is therefore a Trojan message —
and exploiting it leaks memory adjacent to the data array (the concrete
node emulates the C layout, so negative offsets read the peer list).
"""

from repro.systems.toy.protocol import (
    DATASIZE,
    PEERS,
    READ,
    TOY_LAYOUT,
    WRITE,
    toy_checksum,
)
from repro.systems.toy.client import toy_client, toy_read_client, toy_write_client
from repro.systems.toy.server import ToyServerNode, toy_server

__all__ = [
    "DATASIZE",
    "PEERS",
    "READ",
    "TOY_LAYOUT",
    "ToyServerNode",
    "WRITE",
    "toy_checksum",
    "toy_client",
    "toy_read_client",
    "toy_server",
    "toy_write_client",
]
