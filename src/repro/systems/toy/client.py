"""The §2.1 client: validates user input, then sends READ/WRITE requests.

Mirrors Figure 3 of the paper: the operation type, address (and value for
writes) come from the keyboard — i.e. they are symbolic inputs — and the
client *exits* unless ``0 <= address < DATASIZE``. Correct clients can
therefore never put a negative address on the wire.
"""

from __future__ import annotations

from repro.messages.symbolic import MessageBuilder
from repro.solver import ast
from repro.symex.context import ExecutionContext
from repro.systems.toy import protocol
from repro.systems.toy.protocol import DATASIZE, READ, TOY_LAYOUT, WRITE


def toy_client(ctx: ExecutionContext, server: str = "server") -> None:
    """The full Figure 3 client: both request kinds on separate paths."""
    sender = ctx.fresh_byte("peerID")
    operation = ctx.fresh_byte("operationType")
    address = ctx.fresh_bitvec("address", 32)

    # if (address >= DATASIZE) exit(1);  if (address < 0) exit(1);
    if ctx.branch(address.sge(DATASIZE)):
        return
    if ctx.branch(address.slt(0)):
        return

    # Client only sends addresses in [0, DATASIZE).
    if ctx.branch(ast.eq(operation, ast.bv_const(READ, 8))):
        _send_request(ctx, server, sender, READ, address,
                      ast.bv_const(0, 32))
        return
    if ctx.branch(ast.eq(operation, ast.bv_const(WRITE, 8))):
        value = ctx.fresh_bitvec("value", 32)
        _send_request(ctx, server, sender, WRITE, address, value)


def toy_read_client(ctx: ExecutionContext) -> None:
    """A client that only issues READ requests (for focused tests)."""
    sender = ctx.fresh_byte("peerID")
    address = ctx.fresh_bitvec("address", 32)
    if ctx.branch(address.sge(DATASIZE)):
        return
    if ctx.branch(address.slt(0)):
        return
    _send_request(ctx, "server", sender, READ, address, ast.bv_const(0, 32))


def toy_write_client(ctx: ExecutionContext) -> None:
    """A client that only issues WRITE requests (for focused tests)."""
    sender = ctx.fresh_byte("peerID")
    address = ctx.fresh_bitvec("address", 32)
    value = ctx.fresh_bitvec("value", 32)
    if ctx.branch(address.sge(DATASIZE)):
        return
    if ctx.branch(address.slt(0)):
        return
    _send_request(ctx, "server", sender, WRITE, address, value)


def _send_request(ctx: ExecutionContext, server: str, sender, request: int,
                  address, value) -> None:
    builder = MessageBuilder(TOY_LAYOUT)
    builder.set_bytes("sender", [sender])
    builder.set("request", request)
    builder.set("address", address)
    builder.set("value", value)
    body = builder.prefix_bytes("crc")
    builder.set_bytes("crc", [protocol.toy_checksum(body)])
    ctx.send(server, builder.wire())
