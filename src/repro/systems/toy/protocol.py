"""Wire protocol of the §2.1 working example.

One message type carries both request kinds::

    sender(1) | request(1) | address(4) | value(4) | crc(1)

``address`` and ``value`` are 32-bit big-endian, interpreted *signed* by
both sides (the bug is precisely a missing signed lower-bound check). The
``crc`` is the additive checksum of all preceding bytes.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.checksum import ByteLike, byte_sum_checksum
from repro.messages.layout import Field, MessageLayout

#: Request kinds (the ``request`` field).
READ = 1
WRITE = 2

#: Size of the server's data array; addresses must stay below it.
DATASIZE = 100

#: Pre-configured group of known peers (the server's ``isInSet`` check).
PEERS = (1, 2, 3)

TOY_LAYOUT = MessageLayout("toy", [
    Field("sender", 1),
    Field("request", 1),
    Field("address", 4),
    Field("value", 4),
    Field("crc", 1),
])

#: Byte count covered by the checksum (everything before the crc field).
CHECKSUM_SPAN = TOY_LAYOUT.view("crc").offset


def toy_checksum(wire: Sequence[ByteLike]) -> ByteLike:
    """Checksum over the message bytes preceding the crc field.

    Works for both concrete bytes (returns an int) and symbolic payloads
    (returns an expression), so the same definition serves the concrete
    nodes and the symbolic node programs.
    """
    return byte_sum_checksum(list(wire[:CHECKSUM_SPAN]))
