"""The §2.1 server: accepts READ/WRITE requests — with the paper's bug.

The symbolic node program (:func:`toy_server`) mirrors Figure 2 line by
line, *including* the missing ``address < 0`` check on the READ path. The
concrete node (:class:`ToyServerNode`) implements the same checks over
real bytes and emulates the C memory layout — the peer list sits directly
below the data array — so injecting the Trojan demonstrates the privacy
leak the paper describes.
"""

from __future__ import annotations

from repro.messages.concrete import decode_ints
from repro.messages.symbolic import field_expr
from repro.net.network import Network, Node
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.systems.toy import protocol
from repro.systems.toy.protocol import (
    CHECKSUM_SPAN,
    DATASIZE,
    PEERS,
    READ,
    TOY_LAYOUT,
    WRITE,
)


def toy_server(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
    """Symbolic server program for Achilles (one event-loop iteration).

    Accepting paths send a reply (the engine's default classification);
    rejecting paths simply return to the event loop.
    """
    sender = field_expr(msg, TOY_LAYOUT.view("sender"))
    request = field_expr(msg, TOY_LAYOUT.view("request"))
    address = field_expr(msg, TOY_LAYOUT.view("address"))
    crc = field_expr(msg, TOY_LAYOUT.view("crc"))

    # if (!isInSet(msg.sender, peers)) continue;
    in_peers = ast.any_of(
        [ast.eq(sender, ast.bv_const(p, 8)) for p in PEERS])
    if not ctx.branch(in_peers):
        return

    # if (!isValidCRC(msg, msg.CRC)) continue;
    expected = protocol.toy_checksum(msg[:CHECKSUM_SPAN])
    if not ctx.branch(ast.eq(crc, expected)):
        return

    # switch (msg.request)
    if ctx.branch(ast.eq(request, ast.bv_const(READ, 8))):
        if ctx.branch(address.sge(DATASIZE)):
            return
        # Security vulnerability: forgot to check address < 0.
        ctx.send("client", [0xAA])  # REPLY with data[msg.address]
        return

    if ctx.branch(ast.eq(request, ast.bv_const(WRITE, 8))):
        if ctx.branch(address.sge(DATASIZE)):
            return
        if ctx.branch(address.slt(0)):
            return
        ctx.send("client", [0xCC])  # ACK after data[msg.address] = value
        return

    return  # default: discard


class ToyServerNode(Node):
    """Concrete toy server for the simulated network.

    Emulates the C process layout of Figure 2: ``peers`` is allocated
    immediately before ``data``, so a READ at a negative offset walks
    backwards into the peer list — the paper's privacy leak.
    """

    REPLY = 0xAA
    ACK = 0xCC

    def __init__(self, name: str = "server"):
        super().__init__(name)
        # One flat "address space": peers first, then the data array.
        self._memory = list(PEERS) + [0] * DATASIZE
        self._data_base = len(PEERS)
        self.replies_sent = 0
        self.crashed = False

    @property
    def data(self) -> list[int]:
        return self._memory[self._data_base:]

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if self.crashed or len(payload) != TOY_LAYOUT.total_size:
            return
        fields = decode_ints(TOY_LAYOUT, payload)
        if fields["sender"] not in PEERS:
            return
        if fields["crc"] != protocol.toy_checksum(list(payload[:CHECKSUM_SPAN])):
            return
        address = _as_signed32(fields["address"])
        if fields["request"] == READ:
            if address >= DATASIZE:
                return
            # The missing address < 0 check. Small negative offsets walk
            # backwards into the peer list (the paper's privacy leak);
            # wildly out-of-range ones hit unmapped memory — the process
            # dies, like the C original would.
            index = self._data_base + address
            if index < 0:
                self.crashed = True
                return
            leaked = self._memory[index]
            self.replies_sent += 1
            network.send(self.name, source, bytes([self.REPLY, leaked & 0xFF]))
            return
        if fields["request"] == WRITE:
            if address >= DATASIZE or address < 0:
                return
            self._memory[self._data_base + address] = fields["value"] & 0xFF
            self.replies_sent += 1
            network.send(self.name, source, bytes([self.ACK]))


def _as_signed32(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value
