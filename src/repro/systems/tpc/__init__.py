"""Two-phase commit — atomic commitment under test.

A coordinator prepares, commits and aborts transactions across
participants. The seeded vulnerability family lives on the participant's
``PREPARE`` path:

* **ack-without-WAL** — a malformed PREPARE with the durable flag clear
  is acked exactly like a well-formed one but never reaches the
  write-ahead log; a crash after the ack silently loses the prepared
  write (commit atomicity broken);
* **empty-op** — the operation payload is never validated, so the empty
  operation (which no correct coordinator prepares) is logged and acked.

Symbolic node programs (for Achilles) and the concrete participant (for
the simulated network) are built from the same protocol constants.
"""

from repro.systems.tpc.protocol import (
    ABORT,
    ACK_PREPARED,
    COMMIT,
    FLAG_DURABLE,
    FLAG_NONE,
    NO_OP,
    PREPARE,
    TPC_LAYOUT,
)
from repro.systems.tpc.nodes import (
    LostWriteOutcome,
    TpcParticipantNode,
    WalRecord,
    coordinator_clients,
    prepare_message,
    run_lost_write_demo,
    tpc_abort,
    tpc_commit,
    tpc_participant,
    tpc_prepare,
)
from repro.systems.tpc.ground_truth import (
    EMPTY_OP,
    GroundTruth,
    SKIP_WAL,
    TpcTrojanClass,
    all_trojan_classes,
    classify_message,
    is_coordinator_generable,
    is_participant_accepted,
)

__all__ = [
    "ABORT",
    "ACK_PREPARED",
    "COMMIT",
    "EMPTY_OP",
    "FLAG_DURABLE",
    "FLAG_NONE",
    "GroundTruth",
    "LostWriteOutcome",
    "NO_OP",
    "PREPARE",
    "SKIP_WAL",
    "TPC_LAYOUT",
    "TpcParticipantNode",
    "TpcTrojanClass",
    "WalRecord",
    "all_trojan_classes",
    "classify_message",
    "coordinator_clients",
    "is_coordinator_generable",
    "is_participant_accepted",
    "prepare_message",
    "run_lost_write_demo",
    "tpc_abort",
    "tpc_commit",
    "tpc_participant",
    "tpc_prepare",
]
