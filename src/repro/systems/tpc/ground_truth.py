"""Mathematical ground truth for the two-phase-commit experiment.

The participant's accept predicate and the coordinator's generable set
differ in exactly two places, both on the ``PREPARE`` path:

* **skip-wal** — the durable flag clear: acked without a write-ahead
  record (no correct coordinator clears the flag);
* **empty-op** — a durable prepare of the empty operation (no correct
  coordinator prepares ``NO_OP``).

Classification priority: a clear flag decides **skip-wal** regardless of
the operation byte; only durable prepares can be **empty-op**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.concrete import decode_ints
from repro.systems.scoring import TrojanScore
from repro.systems.tpc.protocol import (
    ABORT,
    COMMIT,
    FLAG_DURABLE,
    FLAG_NONE,
    NO_OP,
    PREPARE,
    TPC_LAYOUT,
)

#: Class kinds.
SKIP_WAL = "skip-wal"
EMPTY_OP = "empty-op"


@dataclass(frozen=True, order=True)
class TpcTrojanClass:
    """One seeded Trojan class: :data:`SKIP_WAL` or :data:`EMPTY_OP`."""

    kind: str

    def __str__(self) -> str:
        return f"prepare:{self.kind}"


def all_trojan_classes() -> list[TpcTrojanClass]:
    """The complete seeded ground-truth set — 2 classes."""
    return [TpcTrojanClass(SKIP_WAL), TpcTrojanClass(EMPTY_OP)]


def is_participant_accepted(message: bytes) -> bool:
    """Reference model of the participant's accept predicate ``PS``."""
    if len(message) != TPC_LAYOUT.total_size:
        return False
    fields = decode_ints(TPC_LAYOUT, message)
    if fields["txid"] == 0:
        return False
    if fields["kind"] == PREPARE:
        # op unchecked; FLAG_NONE acked too — the two bugs.
        return fields["flags"] in (FLAG_DURABLE, FLAG_NONE)
    if fields["kind"] in (COMMIT, ABORT):
        # The commit path's prepared-set check is over-approximate
        # symbolic state: any nonzero txid can be the prepared one.
        return fields["flags"] == FLAG_NONE and fields["op"] == NO_OP
    return False


def is_coordinator_generable(message: bytes) -> bool:
    """Reference model of the correct coordinator's predicate ``PC``."""
    if len(message) != TPC_LAYOUT.total_size:
        return False
    fields = decode_ints(TPC_LAYOUT, message)
    if fields["txid"] == 0:
        return False
    if fields["kind"] == PREPARE:
        return fields["flags"] == FLAG_DURABLE and fields["op"] != NO_OP
    if fields["kind"] in (COMMIT, ABORT):
        return fields["flags"] == FLAG_NONE and fields["op"] == NO_OP
    return False


def classify_message(message: bytes) -> TpcTrojanClass | None:
    """Map an accepted-but-ungenerable message to its Trojan class."""
    if not is_participant_accepted(message) or \
            is_coordinator_generable(message):
        return None
    fields = decode_ints(TPC_LAYOUT, message)
    if fields["flags"] == FLAG_NONE:
        return TpcTrojanClass(SKIP_WAL)
    return TpcTrojanClass(EMPTY_OP)


class GroundTruth(TrojanScore):
    """Scoring of a set of concrete messages against the seeded classes."""

    classify = staticmethod(classify_message)
    universe = staticmethod(all_trojan_classes)
