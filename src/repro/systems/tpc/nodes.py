"""Two-phase-commit node programs: coordinator clients and participant.

The Achilles *clients* are the three messages a correct coordinator can
send (:func:`coordinator_clients`); the *server* is one participant's
message ingress (:func:`tpc_participant`) with the seeded
ack-without-WAL vulnerability. A concrete participant
(:class:`TpcParticipantNode`) built from the same constants demonstrates
the durability loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.messages.concrete import decode_ints, encode
from repro.messages.symbolic import MessageBuilder, field_expr
from repro.net.network import Network, Node
from repro.solver import ast
from repro.solver.ast import Expr
from repro.symex.context import ExecutionContext
from repro.symex.engine import NodeProgram
from repro.systems.tpc.protocol import (
    ABORT,
    ACK_PREPARED,
    COMMIT,
    FLAG_DURABLE,
    FLAG_NONE,
    NO_OP,
    PREPARE,
    TPC_LAYOUT,
)


def tpc_prepare(ctx: ExecutionContext,
                participant: str = "participant") -> None:
    """A correct coordinator's PREPARE: durable flag set, real operation."""
    txid = ctx.fresh_byte("txid")
    if not ctx.branch(ast.ne(txid, ast.bv_const(0, 8))):
        return  # transaction ids start at 1
    op = ctx.fresh_byte("op")
    if not ctx.branch(ast.ne(op, ast.bv_const(NO_OP, 8))):
        return  # nothing to prepare for the empty operation
    _send(ctx, participant, PREPARE, txid, FLAG_DURABLE, op)


def tpc_commit(ctx: ExecutionContext,
               participant: str = "participant") -> None:
    """A correct coordinator's COMMIT: bare close, no payload."""
    txid = ctx.fresh_byte("txid")
    if not ctx.branch(ast.ne(txid, ast.bv_const(0, 8))):
        return
    _send(ctx, participant, COMMIT, txid, FLAG_NONE, NO_OP)


def tpc_abort(ctx: ExecutionContext,
              participant: str = "participant") -> None:
    """A correct coordinator's ABORT: bare close, no payload."""
    txid = ctx.fresh_byte("txid")
    if not ctx.branch(ast.ne(txid, ast.bv_const(0, 8))):
        return
    _send(ctx, participant, ABORT, txid, FLAG_NONE, NO_OP)


def coordinator_clients(participant: str = "participant",
                        ) -> dict[str, NodeProgram]:
    """All correct-coordinator programs, keyed for ``extract_clients``."""
    return {
        "prepare": lambda ctx: tpc_prepare(ctx, participant),
        "commit": lambda ctx: tpc_commit(ctx, participant),
        "abort": lambda ctx: tpc_abort(ctx, participant),
    }


def tpc_participant(ctx: ExecutionContext, msg: tuple[Expr, ...]) -> None:
    """One participant event-loop iteration (accept/reject classified)."""
    field_ = lambda name: field_expr(msg, TPC_LAYOUT.view(name))
    if ctx.branch(ast.eq(field_("kind"), ast.bv_const(PREPARE, 8))):
        _handle_prepare(ctx, field_)
        return
    if ctx.branch(ast.eq(field_("kind"), ast.bv_const(COMMIT, 8))):
        _handle_close(ctx, field_, commit=True)
        return
    if ctx.branch(ast.eq(field_("kind"), ast.bv_const(ABORT, 8))):
        _handle_close(ctx, field_, commit=False)
        return
    ctx.reject("unknown-kind")


def _handle_prepare(ctx: ExecutionContext, field_) -> None:
    """PREPARE ingress — with the ack-without-WAL vulnerability.

    The operation payload is never validated (so the empty operation is
    logged like any other), and a clear durable flag skips the
    write-ahead record while still acking — the crash-atomicity Trojan.
    """
    if not ctx.branch(ast.ne(field_("txid"), ast.bv_const(0, 8))):
        ctx.reject("zero-txid")
        return
    flags = field_("flags")
    if ctx.branch(ast.eq(flags, ast.bv_const(FLAG_DURABLE, 8))):
        # Write-ahead record forced, then ack: the well-formed path.
        ctx.send("coordinator", [ACK_PREPARED])
        ctx.accept("prepare:logged")
        return
    if ctx.branch(ast.eq(flags, ast.bv_const(FLAG_NONE, 8))):
        # Should be rejected as malformed — instead the participant acks
        # without the write-ahead record.
        ctx.send("coordinator", [ACK_PREPARED])
        ctx.accept("prepare:ack-without-wal")
        return
    ctx.reject("bad-flags")


def _handle_close(ctx: ExecutionContext, field_, commit: bool) -> None:
    """COMMIT/ABORT ingress: bare close of a prepared transaction."""
    verb = "commit" if commit else "abort"
    if not ctx.branch(ast.ne(field_("txid"), ast.bv_const(0, 8))):
        ctx.reject(f"{verb}:zero-txid")
        return
    if not ctx.branch(ast.eq(field_("flags"), ast.bv_const(FLAG_NONE, 8))):
        ctx.reject(f"{verb}:bad-flags")
        return
    if not ctx.branch(ast.eq(field_("op"), ast.bv_const(NO_OP, 8))):
        ctx.reject(f"{verb}:bad-padding")
        return
    if commit:
        # Only a prepared transaction commits; the prepared-set lookup is
        # over-approximated by unconstrained symbolic local state (§3.4).
        prepared = ctx.fresh_byte("state:prepared_txid")
        if not ctx.branch(ast.eq(field_("txid"), prepared)):
            ctx.reject("commit:not-prepared")
            return
    ctx.accept(verb)


def _send(ctx: ExecutionContext, participant: str, kind: int, txid,
          flags: int, op) -> None:
    builder = MessageBuilder(TPC_LAYOUT)
    builder.set("kind", kind)
    builder.set("txid", txid)
    builder.set("flags", flags)
    builder.set("op", op)
    ctx.send(participant, builder.wire())


# -- concrete participant ----------------------------------------------------


@dataclass
class WalRecord:
    """One write-ahead record: the prepared operation for a transaction."""

    txid: int
    op: int


class TpcParticipantNode(Node):
    """Concrete participant with the same ack-without-WAL bug.

    ``crash()`` models a restart: everything not in the write-ahead log
    is lost. A prepared-and-acked transaction that vanishes on restart is
    the broken promise the Trojan exploits.
    """

    def __init__(self, name: str = "participant"):
        super().__init__(name)
        self.wal: list[WalRecord] = []
        self.acked: list[int] = []
        self.committed: list[int] = []
        self._pending: dict[int, int] = {}

    def handle(self, source: str, payload: bytes, network: Network) -> None:
        if len(payload) != TPC_LAYOUT.total_size:
            return
        fields = decode_ints(TPC_LAYOUT, payload)
        kind, txid = fields["kind"], fields["txid"]
        if txid == 0:
            return
        if kind == PREPARE:
            if fields["flags"] == FLAG_DURABLE:
                self.wal.append(WalRecord(txid, fields["op"]))
            elif fields["flags"] != FLAG_NONE:
                return
            # FLAG_NONE falls through: acked but never logged (the bug).
            self._pending[txid] = fields["op"]
            self.acked.append(txid)
            network.send(self.name, source, bytes([ACK_PREPARED]))
        elif kind in (COMMIT, ABORT):
            # Same close validation as the symbolic participant: bare
            # messages only.
            if fields["flags"] != FLAG_NONE or fields["op"] != NO_OP:
                return
            if txid not in self._pending:
                return
            if kind == COMMIT:
                self.committed.append(txid)
            else:
                self.wal = [record for record in self.wal
                            if record.txid != txid]
            del self._pending[txid]

    def crash(self) -> None:
        """Restart: recover only what the write-ahead log holds."""
        self._pending = {record.txid: record.op for record in self.wal}

    def survives_crash(self, txid: int) -> bool:
        return any(record.txid == txid for record in self.wal)


def prepare_message(txid: int, op: int = 0x77,
                    flags: int = FLAG_DURABLE) -> bytes:
    """Encode one PREPARE wire message."""
    return encode(TPC_LAYOUT, {"kind": PREPARE, "txid": txid,
                               "flags": flags, "op": op})


@dataclass
class LostWriteOutcome:
    """Evidence of the ack-without-WAL Trojan on a live participant."""

    acked: bool = False
    survived_crash: bool = False
    control_survived: bool = True


def run_lost_write_demo() -> LostWriteOutcome:
    """Ack-without-WAL end to end: prepare, ack, crash, write gone.

    A well-formed PREPARE (the control) survives the crash; the Trojan
    PREPARE is acked identically but vanishes on restart.
    """
    network = Network()
    participant = TpcParticipantNode()
    coordinator = _Coordinator("coordinator")
    network.attach(participant)
    network.attach(coordinator)

    network.send("coordinator", participant.name,
                 prepare_message(txid=1, flags=FLAG_DURABLE))
    network.send("coordinator", participant.name,
                 prepare_message(txid=2, flags=FLAG_NONE))
    network.run()

    outcome = LostWriteOutcome(acked=2 in participant.acked)
    participant.crash()
    outcome.control_survived = participant.survives_crash(1)
    outcome.survived_crash = participant.survives_crash(2)
    return outcome


class _Coordinator(Node):
    """Collects participant acks."""

    def __init__(self, name: str):
        super().__init__(name)
        self.acks: list[bytes] = []

    def handle(self, source: str, payload: bytes,
               network: Network) -> None:
        self.acks.append(payload)
