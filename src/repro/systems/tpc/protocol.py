"""Two-phase-commit wire protocol constants and layout.

A coordinator drives transactions across participants with three message
kinds on one fixed-size layout::

    kind(1) | txid(1) | flags(1) | op(1)

* ``PREPARE`` asks the participant to make operation ``op`` durable and
  vote; a correct coordinator always sets :data:`FLAG_DURABLE` (force a
  write-ahead record before acking) and never prepares an empty
  operation (``op != NO_OP``).
* ``COMMIT`` / ``ABORT`` close a transaction; they carry no payload
  (``flags == FLAG_NONE``, ``op == NO_OP``).

Two vulnerabilities are seeded in the participant
(:func:`repro.systems.tpc.nodes.tpc_participant`):

* **ack-without-WAL** — a malformed ``PREPARE`` with the durable flag
  clear is acked exactly like a well-formed one, but the participant
  skips the write-ahead record: a crash after the ack silently loses
  the prepared write, breaking commit atomicity;
* **empty-op prepare** — the participant never validates the operation
  payload, so an ``op == NO_OP`` prepare (which no correct coordinator
  sends) is logged and acked.
"""

from __future__ import annotations

from repro.messages.layout import Field, MessageLayout

#: Message kinds (the ``kind`` byte).
PREPARE = 0x50
COMMIT = 0x43
ABORT = 0x41

#: Flag values: correct PREPAREs force the write-ahead log.
FLAG_NONE = 0x00
FLAG_DURABLE = 0x01

#: The empty operation — never prepared by a correct coordinator.
NO_OP = 0x00

#: Participant ack byte (same for logged and unlogged prepares — that
#: indistinguishability is what makes the skipped WAL a Trojan).
ACK_PREPARED = 0x2B

TPC_LAYOUT = MessageLayout("tpc", [
    Field("kind", 1),
    Field("txid", 1),
    Field("flags", 1),
    Field("op", 1),
])
