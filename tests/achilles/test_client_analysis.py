"""Unit tests for PC extraction and pre-processing."""

import pytest

from repro.achilles.client_analysis import (
    extract_client_predicates,
    preprocess,
)
from repro.achilles.mask import FieldMask
from repro.errors import AchillesError
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import MessageBuilder, message_vars
from repro.solver import ast

LAYOUT = MessageLayout("t", [Field("kind", 1), Field("v", 1)])
MSG = message_vars(LAYOUT, "m")


def _client_sending(kind: int, bound: int | None = None):
    def client(ctx):
        value = ctx.fresh_byte("value")
        if bound is not None and not ctx.branch(value < bound):
            return
        builder = MessageBuilder(LAYOUT)
        builder.set("kind", kind)
        builder.set_bytes("v", [value])
        ctx.send("server", builder.wire())

    return client


class TestExtraction:
    def test_one_predicate_per_sending_path(self):
        predicates, stats = extract_client_predicates(
            {"a": _client_sending(1)}, LAYOUT)
        assert len(predicates) == 1
        assert stats.messages_captured == 1

    def test_branching_client_yields_multiple_predicates(self):
        predicates, _ = extract_client_predicates(
            {"a": _client_sending(1, bound=10)}, LAYOUT)
        assert len(predicates) == 1  # only the sending path sends

    def test_client_labels_preserved(self):
        predicates, _ = extract_client_predicates(
            {"my-utility": _client_sending(2)}, LAYOUT)
        assert predicates[0].client == "my-utility"

    def test_list_clients_get_generated_names(self):
        predicates, _ = extract_client_predicates(
            [_client_sending(1), _client_sending(2)], LAYOUT)
        assert {p.client for p in predicates} == {"client0", "client1"}

    def test_destination_filter(self):
        def chatty(ctx):
            builder = MessageBuilder(LAYOUT).set("kind", 1).set("v", 2)
            ctx.send("other", builder.wire())
            ctx.send("server", builder.wire())

        predicates, _ = extract_client_predicates(
            {"c": chatty}, LAYOUT, destination="server")
        assert len(predicates) == 1

    def test_wrong_size_message_rejected(self):
        def bad(ctx):
            ctx.send("server", [1, 2, 3])

        with pytest.raises(AchillesError):
            extract_client_predicates({"c": bad}, LAYOUT)

    def test_duplicate_predicates_removed(self):
        # Two clients sending the identical concrete message.
        def fixed(ctx):
            builder = MessageBuilder(LAYOUT).set("kind", 1).set("v", 2)
            ctx.send("server", builder.wire())

        predicates, stats = extract_client_predicates(
            {"a": fixed, "b": fixed}, LAYOUT)
        assert len(predicates) == 1
        assert stats.duplicates_removed == 1

    def test_indices_contiguous_after_dedup(self):
        predicates, _ = extract_client_predicates(
            {"a": _client_sending(1), "b": _client_sending(2)}, LAYOUT)
        assert [p.index for p in predicates] == list(range(len(predicates)))


class TestPreprocess:
    def test_builds_negation_per_predicate(self):
        predicates, stats = extract_client_predicates(
            {"a": _client_sending(1, bound=10),
             "b": _client_sending(2, bound=20)}, LAYOUT)
        prepared = preprocess(predicates, LAYOUT, MSG, stats=stats)
        assert len(prepared.negations) == 2
        assert all(not n.is_vacuous for n in prepared.negations)

    def test_mask_validated_against_layout(self):
        predicates, _ = extract_client_predicates(
            {"a": _client_sending(1)}, LAYOUT)
        with pytest.raises(AchillesError):
            preprocess(predicates, LAYOUT, MSG, mask=FieldMask.hide("zzz"))

    def test_difference_matrix_optional(self):
        predicates, _ = extract_client_predicates(
            {"a": _client_sending(1)}, LAYOUT)
        prepared = preprocess(predicates, LAYOUT, MSG,
                              build_difference=False)
        assert prepared.different_from.stats.pairs_checked == 0

    def test_timings_recorded(self):
        predicates, stats = extract_client_predicates(
            {"a": _client_sending(1)}, LAYOUT)
        prepared = preprocess(predicates, LAYOUT, MSG, stats=stats)
        assert prepared.stats.extraction_seconds > 0
        assert prepared.stats.preprocess_seconds > 0
