"""AchillesConfig validation: bad parallelism knobs fail fast and clearly."""

import pytest

from repro.achilles import AchillesConfig
from repro.errors import AchillesError
from repro.systems.toy import TOY_LAYOUT


class TestParallelismValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(AchillesError, match="workers must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, workers=0)

    def test_rejects_negative_workers(self):
        with pytest.raises(AchillesError, match="workers must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, workers=-2)

    def test_rejects_zero_shards(self):
        with pytest.raises(AchillesError, match="shards must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, shards=0)

    def test_rejects_negative_shards(self):
        with pytest.raises(AchillesError, match="shards must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, shards=-1)

    def test_serial_defaults_accepted(self):
        config = AchillesConfig(layout=TOY_LAYOUT)
        assert config.workers == 1
        assert config.shards == 1

    def test_parallel_counts_accepted(self):
        config = AchillesConfig(layout=TOY_LAYOUT, workers=4, shards=2)
        assert config.workers == 4
        assert config.shards == 2

    def test_sharded_bfs_rejected(self):
        """Sharded merge order == DFS completion order; a BFS serial run
        orders findings differently, so the combination fails loudly."""
        from repro.achilles import Achilles
        from repro.symex.engine import BFS, EngineConfig
        from repro.systems.toy import toy_client, toy_server

        config = AchillesConfig(layout=TOY_LAYOUT, shards=2,
                                server_engine=EngineConfig(search_order=BFS))
        with Achilles(config) as achilles:
            predicates = achilles.extract_clients({"toy": toy_client})
            with pytest.raises(AchillesError, match="dfs"):
                achilles.search(toy_server, predicates)
