"""AchillesConfig validation: bad parallelism knobs fail fast and clearly."""

import pytest

from repro.achilles import AchillesConfig
from repro.errors import AchillesError
from repro.systems.toy import TOY_LAYOUT


class TestParallelismValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(AchillesError, match="workers must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, workers=0)

    def test_rejects_negative_workers(self):
        with pytest.raises(AchillesError, match="workers must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, workers=-2)

    def test_rejects_zero_shards(self):
        with pytest.raises(AchillesError, match="shards must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, shards=0)

    def test_rejects_negative_shards(self):
        with pytest.raises(AchillesError, match="shards must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, shards=-1)

    def test_serial_defaults_accepted(self):
        config = AchillesConfig(layout=TOY_LAYOUT)
        assert config.workers == 1
        assert config.shards == 1

    def test_parallel_counts_accepted(self):
        config = AchillesConfig(layout=TOY_LAYOUT, workers=4, shards=2)
        assert config.workers == 4
        assert config.shards == 2

    def test_rejects_unknown_worker_loss_policy(self):
        with pytest.raises(AchillesError, match="on_worker_loss"):
            AchillesConfig(layout=TOY_LAYOUT, on_worker_loss="shrug")

    def test_rejects_negative_retry_budget(self):
        with pytest.raises(AchillesError,
                           match="max_worker_retries must be >= 0"):
            AchillesConfig(layout=TOY_LAYOUT, max_worker_retries=-1)

    def test_recovery_knobs_accepted(self):
        config = AchillesConfig(layout=TOY_LAYOUT, shards=2,
                                on_worker_loss="recover",
                                max_worker_retries=0)
        assert config.on_worker_loss == "recover"
        assert config.max_worker_retries == 0

    def test_transport_instance_accepted_without_hosts(self):
        from repro.explore import LocalTransport

        transport = LocalTransport()
        config = AchillesConfig(layout=TOY_LAYOUT, shards=2,
                                transport=transport)
        assert config.transport is transport

    def test_transport_instance_with_hosts_rejected(self):
        from repro.explore import LocalTransport

        with pytest.raises(AchillesError, match="carries its own hosts"):
            AchillesConfig(layout=TOY_LAYOUT, transport=LocalTransport(),
                           hosts=("127.0.0.1:9100",))

    def test_persistence_knobs_accepted(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        from repro.explore.checkpoint import JOURNAL_NAME
        from repro.solver.diskcache import HEADER

        (run_dir / JOURNAL_NAME).write_bytes(HEADER)
        config = AchillesConfig(layout=TOY_LAYOUT, shards=2,
                                cache_dir=str(tmp_path / "cache"),
                                run_dir=str(run_dir),
                                checkpoint_interval=5, resume=True)
        assert config.checkpoint_interval == 5
        assert config.resume

    def test_cache_dir_pointing_at_file_rejected(self, tmp_path):
        not_a_dir = tmp_path / "segments"
        not_a_dir.write_text("plain file")
        with pytest.raises(AchillesError, match="cache_dir points at a"):
            AchillesConfig(layout=TOY_LAYOUT, cache_dir=str(not_a_dir))

    def test_run_dir_pointing_at_file_rejected(self, tmp_path):
        not_a_dir = tmp_path / "run"
        not_a_dir.write_text("plain file")
        with pytest.raises(AchillesError, match="run_dir points at a"):
            AchillesConfig(layout=TOY_LAYOUT, shards=2,
                           run_dir=str(not_a_dir))

    def test_run_dir_without_shards_rejected(self, tmp_path):
        with pytest.raises(AchillesError, match="no coordinator to"):
            AchillesConfig(layout=TOY_LAYOUT,
                           run_dir=str(tmp_path / "run"))

    def test_bad_checkpoint_interval_rejected(self):
        with pytest.raises(AchillesError,
                           match="checkpoint_interval must be >= 1"):
            AchillesConfig(layout=TOY_LAYOUT, checkpoint_interval=0)

    def test_resume_without_run_dir_rejected(self):
        with pytest.raises(AchillesError, match="resume=True needs run_dir"):
            AchillesConfig(layout=TOY_LAYOUT, shards=2, resume=True)

    def test_resume_without_journal_rejected(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        with pytest.raises(AchillesError, match="does not.*exist"):
            AchillesConfig(layout=TOY_LAYOUT, shards=2,
                           run_dir=str(run_dir), resume=True)

    def test_sharded_bfs_rejected(self):
        """Sharded merge order == DFS completion order; a BFS serial run
        orders findings differently, so the combination fails loudly."""
        from repro.achilles import Achilles
        from repro.symex.engine import BFS, EngineConfig
        from repro.systems.toy import toy_client, toy_server

        config = AchillesConfig(layout=TOY_LAYOUT, shards=2,
                                server_engine=EngineConfig(search_order=BFS))
        with Achilles(config) as achilles:
            predicates = achilles.extract_clients({"toy": toy_client})
            with pytest.raises(AchillesError, match="dfs"):
                achilles.search(toy_server, predicates)
