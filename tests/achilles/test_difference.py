"""Tests for the differentFrom matrix (§3.3)."""

from repro.achilles.difference import DifferentFrom
from repro.achilles.mask import FieldMask
from repro.achilles.predicates import ClientPathPredicate
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import message_vars
from repro.solver import ast

LAYOUT = MessageLayout("t", [Field("x", 1), Field("y", 1)])
MSG = message_vars(LAYOUT, "m")

Y = ast.bv_var("y", 8)


def _pred(index, x_value, y_payload, constraints=()):
    payload = (ast.bv_const(x_value, 8), y_payload)
    return ClientPathPredicate(
        index=index, client="c", source_path_id=index, layout=LAYOUT,
        payload=payload, constraints=tuple(constraints))


class TestMatrixEntries:
    def test_paper_example_shape(self):
        """Figure 5 analogue: same x ranges, different concrete y values.

        differentFrom[0][1][y] is True (pred0 has y=2 which pred1 lacks)
        and symmetric; on x both predicates admit exactly the same values
        so both directions are False.
        """
        pred0 = _pred(0, 1, ast.bv_const(2, 8))
        pred1 = _pred(1, 1, ast.bv_const(7, 8))
        diff = DifferentFrom([pred0, pred1], MSG)
        assert diff.different(0, 1, "y")
        assert diff.different(1, 0, "y")
        assert not diff.different(0, 1, "x")
        assert not diff.different(1, 0, "x")

    def test_subset_ranges_are_asymmetric(self):
        # pred0 admits y in [0,50), pred1 admits y in [0,100): pred1 has
        # extra values, pred0 does not.
        pred0 = _pred(0, 1, Y, [Y < 50])
        pred1 = _pred(1, 1, Y, [Y < 100])
        diff = DifferentFrom([pred0, pred1], MSG)
        assert not diff.different(0, 1, "y")
        assert diff.different(1, 0, "y")

    def test_self_comparison_is_false(self):
        pred0 = _pred(0, 1, ast.bv_const(2, 8))
        diff = DifferentFrom([pred0], MSG)
        assert not diff.different(0, 0, "y")

    def test_missing_entries_default_true(self):
        pred0 = _pred(0, 1, ast.bv_const(2, 8))
        pred1 = _pred(1, 1, ast.bv_const(7, 8))
        diff = DifferentFrom([pred0, pred1], MSG)
        # Unknown field: conservative default disables the shortcut.
        assert diff.different(0, 1, "nonexistent")


class TestDroppable:
    def test_droppable_lists_equal_valued_peers(self):
        pred0 = _pred(0, 1, Y, [Y < 50])
        pred1 = _pred(1, 1, Y, [Y < 100])
        diff = DifferentFrom([pred0, pred1], MSG)
        # If pred1 dies from a y-constraint, pred0 (subset on y) dies too.
        assert diff.droppable_with(1, "y") == [0]
        # The converse does not hold.
        assert diff.droppable_with(0, "y") == []

    def test_mask_skips_hidden_fields(self):
        pred0 = _pred(0, 1, ast.bv_const(2, 8))
        pred1 = _pred(1, 1, ast.bv_const(7, 8))
        diff = DifferentFrom([pred0, pred1], MSG, mask=FieldMask.hide("y"))
        # Hidden field entries were never computed: default True.
        assert diff.stats.solver_queries > 0
        assert diff.different(0, 1, "y")

    def test_dependent_fields_skipped(self):
        # y's variable also feeds x: not independent, no entry computed.
        shared = Y
        payload0 = (shared, shared)
        pred0 = ClientPathPredicate(
            index=0, client="c", source_path_id=0, layout=LAYOUT,
            payload=payload0, constraints=(Y < 10,))
        pred1 = _pred(1, 1, ast.bv_const(7, 8))
        diff = DifferentFrom([pred0, pred1], MSG)
        assert not diff.is_independent(0, "y")
        assert diff.stats.fields_skipped_dependent > 0
