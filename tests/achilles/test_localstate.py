"""Unit tests for the local-state helpers (§3.4)."""

import pytest

from repro.achilles.localstate import (
    capture_sent_message,
    replay_into,
    with_concrete_state,
)
from repro.errors import AchillesError
from repro.solver import ast
from repro.symex.engine import Engine, EngineConfig


class TestConcreteState:
    def test_factory_called_once_per_path_execution(self):
        calls = []

        def factory():
            calls.append(1)
            return {"counter": 0}

        def program(ctx, state):
            state["counter"] += 1
            assert state["counter"] == 1  # never a reused object
            ctx.branch(ctx.fresh_byte("x") < 10)

        node = with_concrete_state(factory, program)
        result = Engine(EngineConfig()).explore(node)
        assert len(result.paths) == 2
        # One factory call per execution (incl. the forked replay).
        assert len(calls) >= 2

    def test_state_drives_behaviour(self):
        def program(ctx, state):
            if state["armed"]:
                ctx.send("peer", [1])

        armed = with_concrete_state(lambda: {"armed": True}, program)
        disarmed = with_concrete_state(lambda: {"armed": False}, program)
        assert Engine(EngineConfig()).explore(armed).paths[0].sends
        assert not Engine(EngineConfig()).explore(disarmed).paths[0].sends


class TestCaptureSentMessage:
    def _proposer(self, ctx):
        value = ctx.fresh_byte("value")
        ctx.assume(value < 10)
        ctx.send("acceptor", [2, value])

    def test_capture_returns_payload_and_constraints(self):
        payload, constraints = capture_sent_message(self._proposer)
        assert len(payload) == 2
        assert payload[0].value == 2
        assert len(constraints) == 1

    def test_destination_filter(self):
        def chatty(ctx):
            ctx.send("other", [9])
            ctx.send("acceptor", [1])

        payload, _ = capture_sent_message(chatty, destination="acceptor")
        assert payload[0].value == 1

    def test_send_index_selects_later_send(self):
        def double(ctx):
            ctx.send("a", [1])
            ctx.send("a", [2])

        payload, _ = capture_sent_message(double, send_index=1)
        assert payload[0].value == 2

    def test_no_sending_path_raises(self):
        with pytest.raises(AchillesError):
            capture_sent_message(lambda ctx: None)


class TestReplayInto:
    def test_constraints_scope_the_replayed_message(self):
        payload, constraints = capture_sent_message(
            lambda ctx: self._send_bounded(ctx))
        outcomes = []

        def receiver(ctx):
            replay_into(ctx, constraints)
            # The payload byte is now constrained to < 10: branching on
            # >= 10 must be infeasible on the true side.
            outcomes.append(ctx.branch(ast.uge(payload[1],
                                               ast.bv_const(10, 8))))

        Engine(EngineConfig()).explore(receiver)
        assert outcomes == [False]

    @staticmethod
    def _send_bounded(ctx):
        value = ctx.fresh_byte("value")
        ctx.assume(value < 10)
        ctx.send("acceptor", [2, value])
