"""Unit tests for field masks."""

import pytest

from repro.achilles.mask import FieldMask
from repro.errors import AchillesError
from repro.messages.layout import Field, MessageLayout

LAYOUT = MessageLayout("t", [Field("a", 1), Field("b", 2), Field("c", 1)])


class TestMask:
    def test_none_shows_everything(self):
        assert FieldMask.none().visible_fields(LAYOUT) == ("a", "b", "c")

    def test_hide_removes_named_fields(self):
        mask = FieldMask.hide("b")
        assert mask.visible_fields(LAYOUT) == ("a", "c")
        assert not mask.is_visible("b")

    def test_only_keeps_named_fields(self):
        mask = FieldMask.only(LAYOUT, "b")
        assert mask.visible_fields(LAYOUT) == ("b",)

    def test_only_rejects_unknown_fields(self):
        with pytest.raises(AchillesError):
            FieldMask.only(LAYOUT, "zzz")

    def test_validate_rejects_unknown_hidden_fields(self):
        with pytest.raises(AchillesError):
            FieldMask.hide("zzz").validate(LAYOUT)

    def test_validate_rejects_fully_masked_layout(self):
        with pytest.raises(AchillesError):
            FieldMask.hide("a", "b", "c").validate(LAYOUT)

    def test_visible_order_follows_wire_order(self):
        mask = FieldMask.hide("a")
        assert mask.visible_fields(LAYOUT) == ("b", "c")
