"""Tests for the under-approximate negate operator (§3.2, §4)."""

from hypothesis import given, settings, strategies as st

from repro.achilles.mask import FieldMask
from repro.achilles.negate import (
    CONCRETE,
    SYMBOLIC,
    negate_field,
    negate_predicate,
    single_field_of,
)
from repro.achilles.predicates import ClientPathPredicate
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import message_vars
from repro.solver import ast, check
from repro.solver.evalmodel import all_hold

LAYOUT = MessageLayout("t", [Field("kind", 1), Field("addr", 2)])
MSG = message_vars(LAYOUT, "m")

ADDR = ast.bv_var("addr", 16)


def _pred(payload, constraints=(), index=0):
    return ClientPathPredicate(
        index=index, client="c", source_path_id=0, layout=LAYOUT,
        payload=tuple(payload), constraints=tuple(constraints))


def _read_pred(index=0):
    """kind = 5 (concrete), addr symbolic constrained to [0, 100)."""
    payload = (ast.bv_const(5, 8), ast.extract(ADDR, 15, 8),
               ast.extract(ADDR, 7, 0))
    return _pred(payload, [ADDR < 100], index=index)


class TestConcreteNegation:
    def test_concrete_field_negates_to_disequality(self):
        disjunct = negate_field(_read_pred(), "kind", MSG)
        assert disjunct is not None
        assert disjunct.kind == CONCRETE
        # m[0] != 5 must hold in every model of the disjunct.
        result = check([disjunct.expr])
        assert result.is_sat
        assert result.value(MSG[0]) != 5

    def test_disjunct_never_overlaps_predicate(self):
        pred = _read_pred()
        disjunct = negate_field(pred, "kind", MSG)
        query = pred.combined(MSG) + (disjunct.expr,)
        assert not check(query).is_sat


class TestSymbolicNegation:
    def test_constrained_field_negates_range(self):
        disjunct = negate_field(_read_pred(), "addr", MSG)
        assert disjunct is not None
        assert disjunct.kind == SYMBOLIC
        # Any model must put the addr field outside [0, 100).
        result = check([disjunct.expr])
        assert result.is_sat
        addr_value = (result.value(MSG[1]) << 8) | result.value(MSG[2])
        assert addr_value >= 100

    def test_unconstrained_field_abandoned(self):
        payload = (ast.bv_const(5, 8), ast.extract(ADDR, 15, 8),
                   ast.extract(ADDR, 7, 0))
        pred = _pred(payload)  # no constraints on addr at all
        assert negate_field(pred, "addr", MSG) is None

    def test_colliding_checksum_style_field_discarded(self):
        # c = a + b is not injective; its negation overlaps the original
        # predicate (a collision exists), so §4.1 discards it.
        a = ast.bv_var("a", 8)
        b = ast.bv_var("b", 8)
        layout = MessageLayout("s", [Field("a", 1), Field("c", 1)])
        msg = message_vars(layout, "m")
        payload = (a, ast.add(a, b))
        pred = ClientPathPredicate(
            index=0, client="c", source_path_id=0, layout=layout,
            payload=payload, constraints=(a < 10,))
        assert negate_field(pred, "c", msg) is None

    def test_injective_transform_survives(self):
        # c = a + 1 is a bijection on bytes: negating a's range through it
        # is exact, so the disjunct survives the §4.1 check.
        a = ast.bv_var("a", 8)
        layout = MessageLayout("s", [Field("a", 1), Field("c", 1)])
        msg = message_vars(layout, "m")
        payload = (a, ast.add(a, ast.bv_const(1, 8)))
        pred = ClientPathPredicate(
            index=0, client="c", source_path_id=0, layout=layout,
            payload=payload, constraints=(a < 10,))
        disjunct = negate_field(pred, "c", msg)
        assert disjunct is not None
        assert disjunct.kind == SYMBOLIC

    def test_injective_symbolic_field_survives(self):
        disjunct = negate_field(_read_pred(), "addr", MSG)
        assert disjunct is not None


class TestPredicateNegation:
    def test_collects_per_field_disjuncts(self):
        negation = negate_predicate(_read_pred(), MSG)
        fields = {d.field for d in negation.disjuncts}
        assert fields == {"kind", "addr"}

    def test_mask_skips_hidden_fields(self):
        negation = negate_predicate(_read_pred(), MSG,
                                    mask=FieldMask.hide("addr"))
        assert {d.field for d in negation.disjuncts} == {"kind"}

    def test_vacuous_negation_is_false(self):
        payload = (ast.bv_var("k", 8), ast.bv_var("h", 8), ast.bv_var("l", 8))
        pred = _pred(payload)  # everything unconstrained
        negation = negate_predicate(pred, MSG)
        assert negation.is_vacuous
        assert negation.expr.is_false

    @settings(max_examples=30, deadline=None)
    @given(kind=st.integers(0, 255), hi=st.integers(0, 255),
           lo=st.integers(0, 255))
    def test_under_approximation_property(self, kind, hi, lo):
        """No message satisfying the negation is client-generable.

        For any concrete message m: if negate(pathC)(m) holds then there
        is no assignment of client inputs putting m on the wire — here
        checked via the combined query being unsat.
        """
        pred = _read_pred()
        negation = negate_predicate(pred, MSG)
        model = {MSG[0]: kind, MSG[1]: hi, MSG[2]: lo}
        if not all_hold([negation.expr], _complete(model, negation.expr)):
            return  # message not covered by the negation: nothing to check
        pinned = [ast.eq(MSG[i], ast.bv_const(v, 8))
                  for i, v in enumerate([kind, hi, lo])]
        assert not check(list(pred.combined(MSG)) + pinned).is_sat


def _complete(model, expr):
    """Extend a partial model with zeros for the negation's fresh vars."""
    from repro.solver.walk import collect_vars

    full = dict(model)
    for var in collect_vars(expr):
        full.setdefault(var, 0)
    return full


class TestSingleFieldOf:
    def test_one_field_constraint_attributed(self):
        constraint = MSG[1] < 5
        assert single_field_of(constraint, MSG, LAYOUT) == "addr"

    def test_multibyte_same_field_attributed(self):
        constraint = ast.eq(MSG[1], MSG[2])
        assert single_field_of(constraint, MSG, LAYOUT) == "addr"

    def test_cross_field_constraint_rejected(self):
        constraint = ast.eq(MSG[0], MSG[1])
        assert single_field_of(constraint, MSG, LAYOUT) is None

    def test_foreign_variable_rejected(self):
        constraint = ast.eq(MSG[0], ast.bv_var("state", 8))
        assert single_field_of(constraint, MSG, LAYOUT) is None
