"""Unit tests for client path predicates."""

import pytest

from repro.achilles.predicates import ClientPathPredicate
from repro.errors import AchillesError
from repro.messages.layout import Field, MessageLayout
from repro.solver import ast, check

LAYOUT = MessageLayout("t", [Field("a", 1), Field("b", 2), Field("c", 1)])

A = ast.bv_var("a", 8)
B = ast.bv_var("b", 16)
X = ast.bv_var("x", 8)


def _pred(payload, constraints=(), index=0):
    return ClientPathPredicate(
        index=index, client="c", source_path_id=0, layout=LAYOUT,
        payload=tuple(payload), constraints=tuple(constraints))


def _payload_with(b_expr):
    return (ast.bv_const(1, 8), ast.extract(b_expr, 15, 8),
            ast.extract(b_expr, 7, 0), ast.bv_const(9, 8))


class TestFieldAccess:
    def test_wrong_payload_size_rejected(self):
        with pytest.raises(AchillesError):
            _pred([ast.bv_const(0, 8)] * 3)

    def test_field_value_assembles_bytes(self):
        pred = _pred(_payload_with(ast.bv_const(0x1234, 16)))
        assert pred.field_value("b").value == 0x1234

    def test_field_is_concrete(self):
        pred = _pred(_payload_with(B))
        assert pred.field_is_concrete("a")
        assert not pred.field_is_concrete("b")

    def test_field_direct_vars(self):
        pred = _pred(_payload_with(B))
        assert pred.field_direct_vars("b") == frozenset({B})
        assert pred.field_direct_vars("a") == frozenset()


class TestClosure:
    def test_closure_collects_direct_constraints(self):
        pred = _pred(_payload_with(B), [B < 100])
        vars_closed, constraints = pred.field_closure("b")
        assert B in vars_closed
        assert constraints == (B < 100,)

    def test_closure_is_transitive(self):
        # b is linked to x through one constraint; x's bound joins the closure.
        link = ast.eq(ast.extract(B, 7, 0), X)
        pred = _pred(_payload_with(B), [link, X < 5])
        _, constraints = pred.field_closure("b")
        assert set(constraints) == {link, X < 5}

    def test_unrelated_constraints_excluded(self):
        pred = _pred(_payload_with(B), [B < 100, X < 5])
        _, constraints = pred.field_closure("b")
        assert constraints == (B < 100,)

    def test_concrete_field_has_empty_closure(self):
        pred = _pred(_payload_with(B), [B < 100])
        vars_closed, constraints = pred.field_closure("a")
        assert not vars_closed
        assert constraints == ()


class TestIndependence:
    def test_isolated_field_is_independent(self):
        pred = _pred(_payload_with(B), [B < 100])
        assert pred.field_is_independent("b")

    def test_shared_variable_breaks_independence(self):
        # Field c carries a byte of b's variable: data-flow dependence.
        payload = (ast.bv_const(1, 8), ast.extract(B, 15, 8),
                   ast.extract(B, 7, 0), ast.extract(B, 7, 0))
        pred = _pred(payload)
        assert not pred.field_is_independent("b")
        assert not pred.field_is_independent("c")

    def test_constraint_coupling_breaks_independence(self):
        # a and c are coupled through a shared constraint chain.
        payload = (A, ast.bv_const(0, 8), ast.bv_const(0, 8), X)
        pred = _pred(payload, [ast.eq(A, X)])
        assert not pred.field_is_independent("a")
        assert not pred.field_is_independent("c")


class TestCombined:
    def test_combined_pins_server_bytes(self):
        pred = _pred(_payload_with(ast.bv_const(0xBEEF, 16)))
        server_msg = tuple(ast.bv_var(f"m[{i}]", 8) for i in range(4))
        result = check(pred.combined(server_msg))
        assert result.is_sat
        assert result.value(server_msg[1]) == 0xBE
        assert result.value(server_msg[2]) == 0xEF

    def test_combined_carries_path_constraints(self):
        pred = _pred(_payload_with(B), [ast.eq(B, ast.bv_const(7, 16))])
        server_msg = tuple(ast.bv_var(f"m[{i}]", 8) for i in range(4))
        query = pred.combined(server_msg) + (
            ast.ne(server_msg[2], ast.bv_const(7, 8)),)
        assert not check(query).is_sat


class TestPickleRoundTrip:
    """Shard workers receive the whole ``ClientPredicateSet`` by pickle;
    every system's predicate set must survive the trip byte-exactly
    (expressions re-intern on unpickle, the ``DifferentFrom`` matrix
    drops only its solver service)."""

    @staticmethod
    def _extracted(system: str):
        from repro.achilles import Achilles, AchillesConfig
        from repro.systems import raft, tpc

        if system == "raft":
            config = AchillesConfig(layout=raft.RAFT_LAYOUT,
                                    destination="follower")
            clients = raft.peer_clients()
        else:
            config = AchillesConfig(layout=tpc.TPC_LAYOUT,
                                    destination="participant")
            clients = tpc.coordinator_clients()
        with Achilles(config) as achilles:
            return achilles.extract_clients(clients)

    @pytest.mark.parametrize("system", ["raft", "tpc"])
    def test_predicate_set_round_trips(self, system):
        import pickle

        predicates = self._extracted(system)
        clone = pickle.loads(pickle.dumps(predicates))
        assert len(clone) == len(predicates)
        for original, copied in zip(predicates.predicates, clone.predicates):
            assert copied.index == original.index
            assert copied.client == original.client
            # Hash-consing re-interns on unpickle: structural equality is
            # identity, so == here means the expressions are the same nodes.
            assert copied.payload == original.payload
            assert copied.constraints == original.constraints
            assert copied.signature() == original.signature()
        assert [n.disjuncts for n in clone.negations] == \
            [n.disjuncts for n in predicates.negations]
        assert clone.different_from._table == predicates.different_from._table

    @pytest.mark.parametrize("system", ["raft", "tpc"])
    def test_different_from_drops_its_service(self, system):
        import pickle

        predicates = self._extracted(system)
        clone = pickle.loads(pickle.dumps(predicates))
        restored = clone.different_from.__dict__
        assert restored.get("_service") is None


class TestSignature:
    def test_same_structure_same_signature(self):
        first = _pred(_payload_with(B), [B < 100])
        second = _pred(_payload_with(B), [B < 100], index=5)
        assert first.signature() == second.signature()

    def test_constraint_order_irrelevant(self):
        first = _pred(_payload_with(B), [B < 100, B > 2])
        second = _pred(_payload_with(B), [B > 2, B < 100])
        assert first.signature() == second.signature()

    def test_different_payload_different_signature(self):
        first = _pred(_payload_with(ast.bv_const(1, 16)))
        second = _pred(_payload_with(ast.bv_const(2, 16)))
        assert first.signature() != second.signature()
