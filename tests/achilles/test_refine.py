"""Tests for witness refinement (§4.1 future-work extension)."""

import pytest

from repro.achilles.client_analysis import extract_client_predicates, preprocess
from repro.achilles.refine import (
    RefinementOutcome,
    refine_findings,
    witness_is_generable,
)
from repro.achilles.report import AchillesReport, TrojanFinding
from repro.achilles.server_analysis import search_server
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import MessageBuilder, field_expr, message_vars
from repro.solver import ast

LAYOUT = MessageLayout("t", [Field("kind", 1), Field("v", 1)])
MSG = message_vars(LAYOUT, "msg")


def _client(ctx):
    value = ctx.fresh_byte("value")
    if not ctx.branch(value < 50):
        return
    builder = MessageBuilder(LAYOUT).set("kind", 1)
    builder.set_bytes("v", [value])
    ctx.send("server", builder.wire())


CLIENTS = {"c": _client}


def _finding(witness: bytes) -> TrojanFinding:
    return TrojanFinding(server_path_id=0, decisions=(), path_condition=(),
                         negation=(), witness=witness, live_predicates=(),
                         elapsed_seconds=0.0)


class TestWitnessGenerable:
    def test_generable_witness_detected(self):
        assert witness_is_generable(b"\x01\x10", CLIENTS, LAYOUT)

    def test_out_of_range_value_not_generable(self):
        assert not witness_is_generable(b"\x01\x60", CLIENTS, LAYOUT)

    def test_wrong_kind_not_generable(self):
        assert not witness_is_generable(b"\x02\x10", CLIENTS, LAYOUT)

    def test_wrong_size_not_generable(self):
        assert not witness_is_generable(b"\x01", CLIENTS, LAYOUT)

    def test_destination_filter_respected(self):
        assert not witness_is_generable(b"\x01\x10", CLIENTS, LAYOUT,
                                        destination="other")


class TestRefineFindings:
    def test_true_trojans_confirmed(self):
        predicates, stats = extract_client_predicates(CLIENTS, LAYOUT)
        prepared = preprocess(predicates, LAYOUT, MSG, stats=stats)

        def leaky_server(ctx, msg):
            kind = field_expr(msg, LAYOUT.view("kind"))
            value = field_expr(msg, LAYOUT.view("v"))
            if not ctx.branch(ast.eq(kind, ast.bv_const(1, 8))):
                ctx.reject()
            if not ctx.branch(value < 100):
                ctx.reject()
            ctx.accept()

        report, _ = search_server(leaky_server, prepared, MSG)
        outcome = refine_findings(report, CLIENTS, LAYOUT)
        assert outcome.witnesses_checked == report.trojan_count == 1
        assert outcome.all_confirmed
        assert len(outcome.confirmed) == 1

    def test_planted_false_positive_disproved(self):
        # Simulate an incomplete phase 1: a finding whose witness a
        # client can actually produce.
        report = AchillesReport(findings=[_finding(b"\x01\x05"),
                                          _finding(b"\x01\x63")])
        outcome = refine_findings(report, CLIENTS, LAYOUT)
        assert len(outcome.disproved) == 1
        assert outcome.disproved[0].witness == b"\x01\x05"
        assert len(outcome.confirmed) == 1
        assert not outcome.all_confirmed

    def test_empty_report(self):
        outcome = refine_findings(AchillesReport(), CLIENTS, LAYOUT)
        assert outcome.witnesses_checked == 0
        assert outcome.all_confirmed
