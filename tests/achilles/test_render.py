"""Tests for report rendering and JSON round-trips."""

import json

from repro.achilles.render import (
    finding_to_dict,
    findings_to_json,
    render_finding,
    render_report,
    report_to_dict,
    witnesses_from_json,
)
from repro.achilles.report import AchillesReport, PhaseTimings, TrojanFinding
from repro.messages.layout import Field, MessageLayout
from repro.solver import ast

LAYOUT = MessageLayout("t", [Field("kind", 1), Field("v", 1)])


def _finding(witness=b"\x01\x63", labels=("accept",)):
    return TrojanFinding(
        server_path_id=3, decisions=(True, False),
        path_condition=(ast.bv_var("m", 8) < 5,), negation=(),
        witness=witness, live_predicates=(0, 2), elapsed_seconds=1.5,
        labels=labels)


def _report():
    report = AchillesReport(findings=[_finding()],
                            client_predicate_count=4,
                            server_paths_explored=10,
                            server_paths_pruned=2, solver_queries=55)
    report.timings = PhaseTimings(0.1, 0.5, 1.0)
    return report


class TestTextRendering:
    def test_finding_block_contains_essentials(self):
        text = render_finding(_finding(), LAYOUT, index=0)
        assert "finding #0" in text
        assert "0163" in text
        assert "kind=1" in text
        assert "accept" in text

    def test_report_summary(self):
        text = render_report(_report(), LAYOUT)
        assert "1 Trojan finding(s)" in text
        assert "client predicates: 4" in text
        assert "pruned: 2" in text

    def test_max_findings_truncates(self):
        report = AchillesReport(findings=[_finding()] * 15)
        text = render_report(report, LAYOUT, max_findings=3)
        assert "and 12 more" in text


class TestJson:
    def test_dict_shape(self):
        data = report_to_dict(_report(), LAYOUT)
        assert data["trojan_count"] == 1
        assert data["findings"][0]["witness_hex"] == "0163"
        assert data["findings"][0]["witness_fields"] == {"kind": 1, "v": 0x63}

    def test_json_parses(self):
        document = findings_to_json(_report(), LAYOUT)
        parsed = json.loads(document)
        assert parsed["timings"]["server_analysis"] == 1.0

    def test_witness_round_trip(self):
        document = findings_to_json(_report(), LAYOUT)
        assert witnesses_from_json(document) == [b"\x01\x63"]

    def test_layout_optional(self):
        data = finding_to_dict(_finding())
        assert "witness_fields" not in data
        assert data["path_condition"]
