"""Tests for report records: timeline, fractions, witness decoding."""

from repro.achilles.report import AchillesReport, PhaseTimings, TrojanFinding
from repro.messages.layout import Field, MessageLayout

LAYOUT = MessageLayout("t", [Field("a", 1), Field("b", 2)])


def _finding(elapsed, witness=b"\x01\x02\x03"):
    return TrojanFinding(
        server_path_id=0, decisions=(), path_condition=(), negation=(),
        witness=witness, live_predicates=(), elapsed_seconds=elapsed)


class TestTimings:
    def test_total(self):
        timings = PhaseTimings(1.0, 2.0, 5.0)
        assert timings.total == 8.0

    def test_fractions_sum_to_one(self):
        timings = PhaseTimings(3.0, 15.0, 45.0)
        fractions = timings.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert fractions["server_analysis"] > fractions["preprocessing"]

    def test_zero_total_does_not_divide_by_zero(self):
        assert PhaseTimings().fractions()["server_analysis"] == 0.0


class TestReport:
    def test_timeline_is_cumulative(self):
        report = AchillesReport(findings=[_finding(1.0), _finding(2.0)])
        assert report.timeline() == [(1.0, 1), (2.0, 2)]

    def test_discovery_fractions_normalized(self):
        report = AchillesReport(findings=[_finding(5.0), _finding(10.0)])
        report.timings.server_analysis = 10.0
        assert report.discovery_fractions() == [(0.5, 0.5), (1.0, 1.0)]

    def test_empty_report(self):
        report = AchillesReport()
        assert report.trojan_count == 0
        assert report.discovery_fractions() == []

    def test_witnesses_in_discovery_order(self):
        report = AchillesReport(
            findings=[_finding(1.0, b"a"), _finding(2.0, b"b")])
        assert report.witnesses() == [b"a", b"b"]


class TestFinding:
    def test_witness_fields_decodes_layout(self):
        finding = _finding(0.0, witness=b"\x07\x01\x02")
        assert finding.witness_fields(LAYOUT) == {"a": 7, "b": 0x0102}

    def test_symbolic_expression_renders(self):
        from repro.solver import ast

        finding = TrojanFinding(
            server_path_id=0, decisions=(), negation=(),
            path_condition=(ast.bv_var("x", 8) < 5,),
            witness=b"", live_predicates=(), elapsed_seconds=0.0)
        assert "x" in finding.symbolic_expression()

    def test_empty_condition_renders_true(self):
        assert _finding(0.0).symbolic_expression() == "true"
