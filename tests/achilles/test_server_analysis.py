"""Unit tests for the incremental Trojan search on small synthetic servers."""

import pytest

from repro.achilles.client_analysis import extract_client_predicates, preprocess
from repro.achilles.server_analysis import (
    OptimizationFlags,
    a_posteriori_search,
    search_server,
)
from repro.messages.layout import Field, MessageLayout
from repro.messages.symbolic import MessageBuilder, field_expr, message_vars
from repro.solver import ast

LAYOUT = MessageLayout("t", [Field("kind", 1), Field("v", 1)])
MSG = message_vars(LAYOUT, "msg")


def _client(ctx):
    """Sends kind=1 with v in [0, 50)."""
    value = ctx.fresh_byte("value")
    if not ctx.branch(value < 50):
        return
    builder = MessageBuilder(LAYOUT).set("kind", 1)
    builder.set_bytes("v", [value])
    ctx.send("server", builder.wire())


def _server_with_hole(ctx, msg):
    """Accepts kind=1 with v < 100: values in [50, 100) are Trojan."""
    kind = field_expr(msg, LAYOUT.view("kind"))
    value = field_expr(msg, LAYOUT.view("v"))
    if not ctx.branch(ast.eq(kind, ast.bv_const(1, 8))):
        ctx.reject()
    if not ctx.branch(value < 100):
        ctx.reject()
    ctx.accept()


def _exact_server(ctx, msg):
    """Accepts exactly what the client sends: no Trojans."""
    kind = field_expr(msg, LAYOUT.view("kind"))
    value = field_expr(msg, LAYOUT.view("v"))
    if not ctx.branch(ast.eq(kind, ast.bv_const(1, 8))):
        ctx.reject()
    if not ctx.branch(value < 50):
        ctx.reject()
    ctx.accept()


@pytest.fixture(scope="module")
def clients():
    predicates, stats = extract_client_predicates({"c": _client}, LAYOUT)
    return preprocess(predicates, LAYOUT, MSG, stats=stats)


class TestSearch:
    def test_finds_the_hole(self, clients):
        report, _ = search_server(_server_with_hole, clients, MSG)
        assert report.trojan_count == 1
        witness = report.findings[0].witness
        assert witness[0] == 1
        assert 50 <= witness[1] < 100

    def test_tight_server_has_no_findings(self, clients):
        report, _ = search_server(_exact_server, clients, MSG)
        assert report.trojan_count == 0
        # The accepting path was pruned before acceptance.
        assert report.server_paths_pruned >= 1

    def test_pruning_disabled_still_no_false_findings(self, clients):
        report, _ = search_server(
            _exact_server, clients, MSG,
            flags=OptimizationFlags.all_off())
        assert report.trojan_count == 0
        assert report.server_paths_pruned == 0

    def test_samples_recorded_per_constraint(self, clients):
        report, _ = search_server(_server_with_hole, clients, MSG)
        assert report.predicate_samples
        lengths = [length for length, _ in report.predicate_samples]
        assert min(lengths) >= 1

    def test_live_predicates_in_findings(self, clients):
        report, _ = search_server(_server_with_hole, clients, MSG)
        assert report.findings[0].live_predicates == (0,)


class TestAPosteriori:
    def test_same_trojans_as_incremental(self, clients):
        incremental, _ = search_server(_server_with_hole, clients, MSG)
        posterior = a_posteriori_search(_server_with_hole, clients, MSG)
        assert posterior.trojan_count == incremental.trojan_count == 1
        assert posterior.findings[0].witness[0] == 1
        assert 50 <= posterior.findings[0].witness[1] < 100

    def test_no_pruning_in_a_posteriori(self, clients):
        posterior = a_posteriori_search(_exact_server, clients, MSG)
        assert posterior.trojan_count == 0
        assert posterior.server_paths_pruned == 0


class TestOptimizationFlagEquivalence:
    @pytest.mark.parametrize("flags", [
        OptimizationFlags(),
        OptimizationFlags(incremental_drop=False, use_different_from=False),
        OptimizationFlags(use_different_from=False),
        OptimizationFlags(prune_unreachable=False),
        OptimizationFlags.all_off(),
    ], ids=["all-on", "no-drop", "no-diff", "no-prune", "all-off"])
    def test_flags_do_not_change_findings(self, clients, flags):
        report, _ = search_server(_server_with_hole, clients, MSG,
                                  flags=flags)
        assert report.trojan_count == 1
        witness = report.findings[0].witness
        assert witness[0] == 1 and 50 <= witness[1] < 100
